//! The CarTel case study end to end: build a deployment, ingest GPS traces,
//! and exercise the web portal, including the security bugs that IFDB
//! prevents (Section 6.1).
//!
//! Run with: `cargo run --example cartel_portal`

use ifdb_repro::cartel::{CartelApp, CartelConfig};
use ifdb_repro::platform::Request;

fn main() {
    let app = CartelApp::build(&CartelConfig {
        users: 4,
        cars_per_user: 2,
        measurements_per_car: 60,
        ..Default::default()
    });
    let alice = app.policy.users()[0].clone();
    let bob = app.policy.users()[1].clone();

    println!("== {} views her own pages ==", alice.username);
    for script in ["cars.php", "drives.php", "drives_top.php"] {
        let resp = app.server.handle(
            &Request::new(script)
                .as_user(&alice.username)
                .param("user", &alice.username),
        );
        println!("{script}: {} line(s)", resp.body.len());
        for line in resp.body.iter().take(3) {
            println!("   {line}");
        }
    }

    println!();
    println!(
        "== URL manipulation: {} requests {}'s drives ==",
        alice.username, bob.username
    );
    let resp = app.server.handle(
        &Request::new("drives.php")
            .as_user(&alice.username)
            .param("user", &bob.username),
    );
    println!("body: {:?} (error: {:?})", resp.body, resp.error);
    assert!(resp.body.is_empty(), "non-friend drives must not leak");

    println!();
    println!(
        "== {} adds {} as a friend (delegation) ==",
        bob.username, alice.username
    );
    app.server.handle(
        &Request::new("friends.php")
            .as_user(&bob.username)
            .param("add", &alice.username),
    );
    let resp = app.server.handle(
        &Request::new("drives.php")
            .as_user(&alice.username)
            .param("user", &bob.username),
    );
    println!(
        "after delegation Alice sees {} of Bob's drives",
        resp.body.len()
    );

    println!();
    println!("== unauthenticated request (the missing-auth bug) ==");
    let resp = app.server.handle(&Request::new("cars.php"));
    println!("body: {:?} (error: {:?})", resp.body, resp.error);
    assert!(resp.body.is_empty());

    println!();
    println!(
        "audited declassifications so far: {}",
        app.db.audit().declassification_count()
    );
    println!(
        "trusted catalog objects: {}",
        app.db.trusted_component_count()
    );
}
