//! The HotCRP case study: declassifying views, per-paper decision tags, and
//! review delegation (Section 6.2).
//!
//! Run with: `cargo run --example hotcrp_reviews`

use ifdb_repro::hotcrp::{HotcrpApp, HotcrpConfig};
use ifdb_repro::platform::Request;

fn main() {
    let app = HotcrpApp::build(&HotcrpConfig::default());
    let paper = app.policy.papers()[0].clone();
    let author = app.policy.person(paper.author).unwrap().clone();
    let chair = app.policy.people()[0].clone();

    println!("== PC member list (public, via the PCMembers declassifying view) ==");
    let resp = app.server.handle(&Request::new("pc_members.php"));
    for line in &resp.body {
        println!("  {line}");
    }

    println!();
    println!("== the historical contact-info leak is blocked ==");
    let resp = app
        .server
        .handle(&Request::new("users.php").as_user(&author.username));
    println!("users.php body: {:?} (error: {:?})", resp.body, resp.error);
    assert!(resp.body.is_empty());

    println!();
    println!("== decisions are invisible before release ==");
    let status = |who: &str| {
        app.server.handle(
            &Request::new("paper_status.php")
                .as_user(who)
                .param("paper", &paper.paperid.to_string()),
        )
    };
    let resp = status(&author.username);
    println!("author before release: {:?}", resp.body);
    let resp = status(&chair.username);
    println!("chair (owns the decision tag): {:?}", resp.body);

    app.policy.release_decisions(&app.db).unwrap();
    let resp = status(&author.username);
    println!("author after release:  {:?}", resp.body);
    assert!(resp.body.iter().any(|l| l.starts_with("decision:")));

    println!();
    println!("== review visibility follows delegation ==");
    let other_pc = app.policy.people()[2].clone();
    let review = |who: &str| {
        app.server.handle(
            &Request::new("review.php")
                .as_user(who)
                .param("paper", &paper.paperid.to_string()),
        )
    };
    println!(
        "other PC member before delegation: {:?}",
        review(&other_pc.username).body
    );
    app.policy
        .delegate_reviews_to_pc(&app.db, paper.paperid)
        .unwrap();
    println!(
        "other PC member after delegation:  {:?}",
        review(&other_pc.username).body
    );
}
