//! Quickstart: the medical-records example that runs through the paper
//! (Sections 3–5) — tags, labels, Query by Label, declassification, and the
//! transaction commit-label rule.
//!
//! Run with: `cargo run --example quickstart`

use ifdb_repro::ifdb::prelude::*;
use ifdb_repro::ifdb::TableDef;

fn main() {
    // 1. Set up the database and two patients.
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let bob = db.create_principal("bob", PrincipalKind::User);
    let doctor = db.create_principal("dr_jones", PrincipalKind::User);
    let alice_medical = db.create_tag(alice, "alice_medical", &[]).unwrap();
    let bob_medical = db.create_tag(bob, "bob_medical", &[]).unwrap();

    db.create_table(
        TableDef::new("HIVPatients")
            .column("patient_name", DataType::Text)
            .column("patient_dob", DataType::Text)
            .primary_key(&["patient_name", "patient_dob"]),
    )
    .unwrap();

    // 2. Each patient's record is written under their own tag.
    let mut alice_session = db.session(alice);
    alice_session.add_secrecy(alice_medical).unwrap();
    alice_session
        .insert(&Insert::new(
            "HIVPatients",
            vec![Datum::from("Alice"), Datum::from("2/1/60")],
        ))
        .unwrap();

    let mut bob_session = db.session(bob);
    bob_session.add_secrecy(bob_medical).unwrap();
    bob_session
        .insert(&Insert::new(
            "HIVPatients",
            vec![Datum::from("Bob"), Datum::from("6/26/78")],
        ))
        .unwrap();

    // 3. Query by Label: a process sees only the tuples its label covers.
    let mut clerk = db.anonymous_session();
    let visible = clerk.select(&Select::star("HIVPatients")).unwrap();
    println!("uncontaminated clerk sees {} patients", visible.len());
    assert!(visible.is_empty());

    let mut doctor_session = db.session(doctor);
    doctor_session.add_secrecy(bob_medical).unwrap();
    let visible = doctor_session.select(&Select::star("HIVPatients")).unwrap();
    println!(
        "doctor contaminated with bob_medical sees {} patient(s)",
        visible.len()
    );
    assert_eq!(visible.len(), 1);

    // 4. The doctor cannot release what they read until Bob delegates.
    assert!(doctor_session.check_release_to_world().is_err());
    let mut bob_clean = db.session(bob);
    bob_clean.delegate(doctor, bob_medical).unwrap();
    doctor_session.declassify(bob_medical).unwrap();
    doctor_session.check_release_to_world().unwrap();
    println!("after delegation the doctor may declassify Bob's record");

    // 5. The transaction commit-label rule blocks the Section 5.1 leak.
    db.create_table(
        TableDef::new("Notes")
            .column("note", DataType::Text)
            .primary_key(&["note"]),
    )
    .unwrap();
    let mut sneaky = db.anonymous_session();
    sneaky.begin().unwrap();
    sneaky
        .insert(&Insert::new("Notes", vec![Datum::from("Alice has HIV")]))
        .unwrap();
    sneaky.add_secrecy(alice_medical).unwrap();
    let found = sneaky
        .select(
            &Select::star("HIVPatients")
                .filter(Predicate::Eq("patient_name".into(), Datum::from("Alice"))),
        )
        .unwrap();
    println!(
        "sneaky transaction observed {} secret row(s) before commit",
        found.len()
    );
    let commit = sneaky.commit();
    println!("commit attempt: {:?}", commit.err().map(|e| e.to_string()));
    assert!(db
        .anonymous_session()
        .select(&Select::star("Notes"))
        .unwrap()
        .is_empty());
    println!("the public note was never exposed — the leak is closed");
}
