//! Runs the TPC-C workload at several label sizes and prints the throughput
//! trend — a miniature of the Figure 6 experiment.
//!
//! Run with: `cargo run --release --example tpcc_labels`

use std::time::Duration;

use ifdb_repro::ifdb::{Database, DatabaseConfig};
use ifdb_repro::workloads::{TpccConfig, TpccDatabase, TpccDriver, TpccDriverConfig};

fn main() {
    println!("tags/label   NOTPM (in-memory)");
    for tags in [0usize, 1, 4, 10] {
        let db = Database::new(DatabaseConfig::in_memory().with_seed(tags as u64 + 1));
        let tpcc = TpccDatabase::load(
            db,
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 4,
                customers_per_district: 20,
                items: 60,
                initial_orders_per_district: 5,
                tags_per_label: tags,
                seed: 3,
            },
        )
        .expect("load TPC-C");
        let outcome = TpccDriver::new(&tpcc).run(&TpccDriverConfig {
            clients: 1,
            duration: Duration::from_millis(500),
            seed: 9,
        });
        println!(
            "{tags:>10}   {:>8.0}   ({} committed, {} conflicts)",
            outcome.notpm, outcome.committed, outcome.conflicts
        );
    }
}
