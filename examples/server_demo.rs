//! Start an `ifdb-server`, connect two clients as different principals, and
//! watch Query by Label return different result sets per connection label —
//! the paper's architecture end to end, over a real TCP socket.
//!
//! Run with: `cargo run --example server_demo`

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb_client::{ClientConfig, Connection};
use ifdb_platform::Authenticator;
use ifdb_server::{start, ServerConfig};

fn main() {
    // ------------------------------------------------------------------
    // Server side: a database with two users' labeled medical records.
    // ------------------------------------------------------------------
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let bob = db.create_principal("bob", PrincipalKind::User);
    let alice_medical = db.create_tag(alice, "alice_medical", &[]).unwrap();
    let bob_medical = db.create_tag(bob, "bob_medical", &[]).unwrap();
    db.create_table(
        TableDef::new("PatientRecords")
            .column("patient", DataType::Text)
            .column("diagnosis", DataType::Text)
            .primary_key(&["patient"]),
    )
    .unwrap();
    for (principal, tag, patient, diagnosis) in [
        (alice, alice_medical, "alice", "flu"),
        (bob, bob_medical, "bob", "sprained ankle"),
    ] {
        let mut s = db.session(principal);
        s.add_secrecy(tag).unwrap();
        s.insert(&Insert::new(
            "PatientRecords",
            vec![Datum::from(patient), Datum::from(diagnosis)],
        ))
        .unwrap();
    }

    let auth = Arc::new(Authenticator::new());
    auth.register("alice", "alice-pw", alice);
    auth.register("bob", "bob-pw", bob);

    let server = start(db, auth, ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    println!("ifdb-server listening on {addr}");

    // ------------------------------------------------------------------
    // Client side: two connections, two principals, two labels — the same
    // SELECT * returns a different result set on each connection.
    // ------------------------------------------------------------------
    let everything = Select::star("PatientRecords");

    let mut alice_conn = Connection::connect(
        &ClientConfig::anonymous(&addr)
            .with_user("alice", "alice-pw")
            .with_label(&[alice_medical]),
    )
    .expect("alice connects");
    let rows = alice_conn.select(&everything).unwrap();
    println!(
        "\nalice's connection (label {{alice_medical}}) sees {} row(s):",
        rows.len()
    );
    for r in rows.iter() {
        println!(
            "  {} -> {}",
            r.get_text("patient").unwrap_or(""),
            r.get_text("diagnosis").unwrap_or("")
        );
    }
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.first().unwrap().get_text("patient"), Some("alice"));

    let mut bob_conn = Connection::connect(
        &ClientConfig::anonymous(&addr)
            .with_user("bob", "bob-pw")
            .with_label(&[bob_medical]),
    )
    .expect("bob connects");
    let rows = bob_conn.select(&everything).unwrap();
    println!(
        "\nbob's connection (label {{bob_medical}}) sees {} row(s):",
        rows.len()
    );
    for r in rows.iter() {
        println!(
            "  {} -> {}",
            r.get_text("patient").unwrap_or(""),
            r.get_text("diagnosis").unwrap_or("")
        );
    }
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.first().unwrap().get_text("patient"), Some("bob"));

    // An anonymous, uncontaminated connection sees nothing at all.
    let mut anon = Connection::connect(&ClientConfig::anonymous(&addr)).unwrap();
    let rows = anon.select(&everything).unwrap();
    println!(
        "\nanonymous connection (empty label) sees {} row(s)",
        rows.len()
    );
    assert!(rows.is_empty());

    // Labels gate output, too: alice is contaminated until she declassifies
    // her own tag (which she has the authority to do).
    assert!(alice_conn.check_release_to_world().is_err());
    alice_conn.declassify(alice_medical).unwrap();
    alice_conn.check_release_to_world().unwrap();
    println!("\nalice declassified her tag and may release output again");

    let stats = server.stats();
    println!(
        "\nserver stats: {} connections, {} statements, cache hit rate {:.0}%",
        stats.connections_accepted,
        stats.statements,
        stats.stmt_cache_hit_rate() * 100.0
    );

    alice_conn.close().unwrap();
    bob_conn.close().unwrap();
    anon.close().unwrap();
    server.shutdown();
    println!("server drained and shut down cleanly");
}
