//! Start a primary `ifdb-server`, attach a log-shipping read replica, and
//! route a client's traffic through the topology: writes to the primary,
//! labeled reads to the replica, with read-your-writes waiting on the
//! replica's applied-seq watermark. The replica enforces Query by Label
//! exactly as the primary does — a contaminated-label row never leaks to an
//! under-labeled reader, on either node.
//!
//! Run with: `cargo run --example replica_demo`

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb_client::{ClientConfig, RoutedConnection, RouterConfig};
use ifdb_platform::Authenticator;
use ifdb_server::{start, start_replica, ReplicaConfig, ServerConfig};

const SEED: u64 = 0xD1F0;
const REPL_SECRET: &str = "demo-replication-secret";

/// The code-not-data DIFC state. It is re-created on the replica with the
/// same authority seed and in the same order, so the numeric principal and
/// tag ids embedded in replicated tuples line up — the same contract as
/// recovering a database after a crash.
fn setup_difc(db: &Database) -> (PrincipalId, TagId) {
    let alice = db.create_principal("alice", PrincipalKind::User);
    let tag = db.create_tag(alice, "alice_notes", &[]).unwrap();
    (alice, tag)
}

fn main() {
    // Primary: a labeled notes table served with replication enabled.
    let db = Database::new(DatabaseConfig::in_memory().with_seed(SEED));
    let (alice, tag) = setup_difc(&db);
    db.create_table(
        TableDef::new("notes")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key(&["id"]),
    )
    .unwrap();
    let auth = Arc::new(Authenticator::new());
    auth.register("alice", "pw", alice);
    let primary = start(
        db.clone(),
        auth,
        ServerConfig {
            replication_secret: Some(REPL_SECRET.into()),
            ..ServerConfig::default()
        },
    )
    .expect("start primary");
    println!("primary listening on {}", primary.addr());

    // Replica: bootstraps the checkpoint-anchored snapshot, then tails the
    // primary's log. Its front end is read-only.
    let replica_auth = Arc::new(Authenticator::new());
    let replica = {
        let replica_auth = replica_auth.clone();
        start_replica(
            ReplicaConfig::new(&primary.addr().to_string(), REPL_SECRET, SEED),
            replica_auth.clone(),
            move |db| {
                let (alice, _) = setup_difc(db);
                replica_auth.register("alice", "pw", alice);
                Ok(())
            },
        )
        .expect("start replica")
    };
    println!("replica  listening on {} (read-only)", replica.addr());

    // A topology-aware client: writes go to the primary, reads round-robin
    // to the replica, read-your-writes bridges the replication lag.
    let primary_cfg = ClientConfig::anonymous(&primary.addr().to_string())
        .with_user("alice", "pw")
        .with_label(&[tag]);
    let replica_cfg = ClientConfig::anonymous(&replica.addr().to_string())
        .with_user("alice", "pw")
        .with_label(&[tag]);
    let mut conn =
        RoutedConnection::connect(&RouterConfig::new(primary_cfg, vec![replica_cfg])).unwrap();

    for i in 0..5 {
        conn.insert(&Insert::new(
            "notes",
            vec![Datum::Int(i), Datum::Text(format!("note {i}"))],
        ))
        .unwrap();
        let rows = conn
            .select(&Select::star("notes").filter(Predicate::Eq("id".into(), Datum::Int(i))))
            .unwrap();
        println!(
            "wrote note {i} on the primary; read it back through the topology: {:?}",
            rows.rows[0].values
        );
    }
    let stats = conn.stats();
    println!(
        "router stats: {} reads on the replica, {} on the primary, {} RYW waits",
        stats.reads_on_replica, stats.reads_on_primary, stats.ryw_waits
    );
    println!(
        "replica applied {} log records (watermark seq {})",
        replica.stats().records_applied,
        replica.stats().applied_seq
    );

    // Writes to the replica are refused — it is a faithful follower.
    let denied = conn_to_replica_insert(&replica.addr().to_string());
    println!("direct write to the replica: {denied}");

    conn.close().unwrap();
    replica.shutdown();
    primary.shutdown();
    println!("clean shutdown");
}

fn conn_to_replica_insert(addr: &str) -> String {
    use ifdb::SessionApi;
    let mut direct =
        ifdb_client::Connection::connect(&ClientConfig::anonymous(addr).with_user("alice", "pw"))
            .unwrap();
    let err = direct
        .insert(&Insert::new(
            "notes",
            vec![Datum::Int(999), Datum::from("nope")],
        ))
        .expect_err("replicas refuse writes");
    let _ = direct.close();
    err.to_string()
}
