//! Start two primary shard servers, split an `accounts` table between them
//! by key range, and drive a shard-aware router through the full
//! distributed-transaction repertoire: the single-shard fast path (plain
//! `Begin`/`Commit`, no coordination), an atomic cross-shard transfer via
//! two-phase commit, a commit-label violation on one shard vetoing the
//! transaction on *both*, and a simulated coordinator crash resolved by a
//! successor through the in-doubt protocol.
//!
//! Run with: `cargo run --example shard_demo`

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb::{TriggerDef, TriggerEvent, TriggerTiming};
use ifdb_client::shard::ShardMap;
use ifdb_client::{ClientConfig, Connection, RoutedConnection, RouterConfig};
use ifdb_platform::Authenticator;
use ifdb_server::{start, ServerConfig, ServerHandle};

const SEED: u64 = 0x54A2;

/// Account ids 0..=99 live on shard 0, 100..=199 on shard 1. The map is
/// plain data shared by servers and clients, so both route by the same
/// rule.
fn shard_map() -> Arc<ShardMap> {
    Arc::new(ShardMap::new(2).shard_table(
        "accounts",
        "id",
        0,
        ShardMap::contiguous_ranges(0, 199, 2),
    ))
}

/// One shard's database: the `accounts` slice plus the DIFC state. The
/// authority state is code, not data — every shard re-creates it with the
/// same seed and in the same order, so the numeric tag ids line up across
/// the cluster (the same contract replicas and crash recovery rely on).
fn shard_db() -> (Database, TagId) {
    let db = Database::new(DatabaseConfig::in_memory().with_seed(SEED));
    let auditor = db.create_principal("auditor", PrincipalKind::User);
    let audit = db.create_tag(auditor, "audit", &[]).unwrap();
    db.create_table(
        TableDef::new("accounts")
            .column("id", DataType::Int)
            .column("balance", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    (db, audit)
}

fn start_shard(db: Database) -> ServerHandle {
    start(db, Arc::new(Authenticator::new()), ServerConfig::default()).expect("start shard")
}

fn router_over(shards: &[&ServerHandle]) -> RoutedConnection {
    let nodes = shards
        .iter()
        .map(|s| ClientConfig::anonymous(&s.addr().to_string()))
        .collect();
    RoutedConnection::connect(&RouterConfig::sharded(shard_map(), nodes)).unwrap()
}

fn deposit(id: i64, amount: i64) -> Insert {
    Insert::new("accounts", vec![Datum::Int(id), Datum::Int(amount)])
}

fn count_rows(server: &ServerHandle) -> usize {
    let mut c = Connection::connect(&ClientConfig::anonymous(&server.addr().to_string())).unwrap();
    let n = c.select(&Select::star("accounts")).unwrap().len();
    c.close().unwrap();
    n
}

fn main() {
    let (db0, _) = shard_db();
    let (db1, audit) = shard_db();
    // Shard 1 audits large deposits by contaminating the writing session
    // with the `audit` tag — which will make a cross-shard commit carrying
    // one fail the commit-label rule on this shard only.
    db1.create_trigger(TriggerDef {
        name: "audit_large_deposits".into(),
        table: "accounts".into(),
        events: vec![TriggerEvent::Insert],
        timing: TriggerTiming::Immediate,
        authority: None,
        body: Arc::new(move |session, inv| {
            if matches!(inv.new.as_deref(), Some([_, Datum::Int(b)]) if *b >= 1_000) {
                session.add_secrecy(audit)?;
            }
            Ok(())
        }),
    })
    .unwrap();
    let s0 = start_shard(db0);
    let s1 = start_shard(db1);
    println!("shard 0 (ids 0..=99)    listening on {}", s0.addr());
    println!("shard 1 (ids 100..=199) listening on {}", s1.addr());

    let mut router = router_over(&[&s0, &s1]);

    // Single-shard transaction: both statements route to shard 0, so the
    // router commits with a plain Begin/Commit — no coordination at all.
    router.begin().unwrap();
    router.insert(&deposit(1, 500)).unwrap();
    router.insert(&deposit(2, 250)).unwrap();
    router.commit().unwrap();
    println!(
        "single-shard txn: {} fast-path commit(s), {} distributed",
        router.stats().single_shard_commits,
        router.stats().distributed_commits
    );

    // Cross-shard transfer: the transaction touches both shards, so the
    // router escalates to presumed-abort two-phase commit — both effects
    // land atomically or not at all.
    router.begin().unwrap();
    router.insert(&deposit(3, 100)).unwrap();
    router.insert(&deposit(103, 100)).unwrap();
    router.commit().unwrap();
    println!(
        "cross-shard txn: {} distributed commit(s); shard 0 has {} rows, shard 1 has {}",
        router.stats().distributed_commits,
        count_rows(&s0),
        count_rows(&s1)
    );

    // Commit-label veto: the large deposit trips shard 1's audit trigger,
    // contaminating the inserting session there, so that participant's
    // prepare fails the IFDB commit-label rule and votes no — and the one
    // no vote aborts the transaction on *every* shard. The contamination
    // still reaches the coordinator's label mirror: release through the
    // merged output gate is now gated.
    let rows_before = (count_rows(&s0), count_rows(&s1));
    router.begin().unwrap();
    router.insert(&deposit(4, 9_000)).unwrap();
    router.insert(&deposit(104, 9_000)).unwrap();
    let veto = router.commit().unwrap_err();
    println!("label veto: commit refused with {veto}");
    println!(
        "  rows unchanged everywhere: shard 0 {} -> {}, shard 1 {} -> {}",
        rows_before.0,
        count_rows(&s0),
        rows_before.1,
        count_rows(&s1)
    );
    println!(
        "  coordinator label now carries the audit tag: {}",
        router.current_label().contains(audit)
    );

    // Coordinator crash, simulated: a raw client prepares a cross-shard
    // transaction on both participants, delivers the commit decision to
    // only one, and disappears. Shard 1 is left *in doubt*: the prepared
    // transaction's writes are durable but invisible, its locks held.
    let gid = 0xD0_D0;
    let mut c0 = Connection::connect(&ClientConfig::anonymous(&s0.addr().to_string())).unwrap();
    let mut c1 = Connection::connect(&ClientConfig::anonymous(&s1.addr().to_string())).unwrap();
    c0.begin().unwrap();
    c0.insert(&deposit(5, 42)).unwrap();
    c1.begin().unwrap();
    c1.insert(&deposit(105, 42)).unwrap();
    c0.txn_prepare(gid).unwrap();
    c1.txn_prepare(gid).unwrap();
    c0.txn_decide(gid, true).unwrap();
    drop(c0);
    drop(c1); // the "crash": shard 1 never hears the decision
    let mut c1 = Connection::connect(&ClientConfig::anonymous(&s1.addr().to_string())).unwrap();
    println!(
        "after coordinator crash: shard 1 in doubt on gids {:?}",
        c1.txn_recover().unwrap()
    );
    c1.close().unwrap();

    // A successor coordinator resolves by the presumed-abort rule: shard 0
    // remembers the commit, so the decision was commit — the acked
    // transfer is not lost.
    let mut successor = router_over(&[&s0, &s1]);
    let resolved = successor.resolve_in_doubt().unwrap();
    println!(
        "successor resolved {resolved:?}; shard 1 now has {} rows",
        count_rows(&s1)
    );

    router.close().unwrap();
    successor.close().unwrap();
    s0.shutdown();
    s1.shutdown();
    println!("clean shutdown");
}
