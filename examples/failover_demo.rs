//! High-availability failover, end to end: a primary with a log-shipping
//! replica, a caught-up replica *promoted* to primary under a bumped
//! promotion generation, the old primary *fenced* (refusing requests so a
//! zombie can never split the brain), and a routing client that fails its
//! writes over to the successor without the application noticing.
//!
//! Run with: `cargo run --example failover_demo`

use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::prelude::*;
use ifdb_client::{ClientConfig, Connection, RoutedConnection, RouterConfig};
use ifdb_platform::Authenticator;
use ifdb_server::{start, start_replica, ReplicaConfig, ServerConfig};

const SEED: u64 = 0xFA11;
const REPL_SECRET: &str = "demo-replication-secret";

fn notes_table() -> TableDef {
    TableDef::new("notes")
        .column("id", DataType::Int)
        .column("body", DataType::Text)
        .primary_key(&["id"])
}

/// The code-not-data DIFC state, re-created identically on every node (same
/// seed, same order) so the ids embedded in replicated tuples line up.
fn setup_difc(db: &Database) -> (PrincipalId, TagId) {
    let alice = db.create_principal("alice", PrincipalKind::User);
    let tag = db.create_tag(alice, "alice_notes", &[]).unwrap();
    (alice, tag)
}

fn main() {
    // Primary: a labeled notes table served with replication enabled.
    let db = Database::new(DatabaseConfig::in_memory().with_seed(SEED));
    let (alice, tag) = setup_difc(&db);
    db.create_table(notes_table()).unwrap();
    let auth = Arc::new(Authenticator::new());
    auth.register("alice", "pw", alice);
    let primary = start(
        db.clone(),
        auth,
        ServerConfig {
            replication_secret: Some(REPL_SECRET.into()),
            ..ServerConfig::default()
        },
    )
    .expect("start primary");
    println!("primary listening on {}", primary.addr());

    // Replica: tails the primary's log. `with_first_boot_tables` hands it
    // the first-boot DDL — constraints are code, not logged data, so a
    // promoted replica re-runs the DDL to re-attach them and lift the
    // conservative read-only protection on replicated tables.
    let replica_auth = Arc::new(Authenticator::new());
    let replica = {
        let replica_auth = replica_auth.clone();
        start_replica(
            ReplicaConfig::new(&primary.addr().to_string(), REPL_SECRET, SEED)
                .with_first_boot_tables(vec![notes_table()]),
            replica_auth.clone(),
            move |db| {
                let (alice, _) = setup_difc(db);
                replica_auth.register("alice", "pw", alice);
                Ok(())
            },
        )
        .expect("start replica")
    };
    println!("replica  listening on {} (read-only)", replica.addr());

    let client_cfg = |addr: &str| {
        ClientConfig::anonymous(addr)
            .with_user("alice", "pw")
            .with_label(&[tag])
    };
    let mut router = RoutedConnection::connect(&RouterConfig::new(
        client_cfg(&primary.addr().to_string()),
        vec![client_cfg(&replica.addr().to_string())],
    ))
    .unwrap();

    for i in 0..3 {
        router
            .insert(&Insert::new(
                "notes",
                vec![Datum::Int(i), Datum::Text(format!("note {i}"))],
            ))
            .unwrap();
    }
    let target = db.engine().wal().last_seq();
    assert!(
        replica.wait_for_seq(target, Duration::from_secs(5)),
        "replica catches up"
    );
    println!("wrote 3 notes; replica caught up to seq {target}");

    // Failover drill: promote the replica while the old primary is still
    // up. The promotion bumps the generation, re-anchors the successor's
    // log, re-runs the first-boot DDL — and fences the old primary, which
    // from now on refuses every request with `FENCED`.
    let t0 = Instant::now();
    let generation = replica.promote().expect("promotion");
    println!(
        "promoted the replica in {:?}: generation {generation}, role {:?}",
        t0.elapsed(),
        Connection::connect(&client_cfg(&replica.addr().to_string()))
            .unwrap()
            .ha_status()
            .unwrap()
            .role
    );

    // A zombie client talking straight to the deposed primary is refused.
    let mut zombie = Connection::connect(&client_cfg(&primary.addr().to_string())).unwrap();
    let err = zombie
        .insert(&Insert::new(
            "notes",
            vec![Datum::Int(999), Datum::from("split brain?")],
        ))
        .expect_err("the deposed primary is fenced");
    println!(
        "direct write to the old primary: {err} (fenced: {})",
        ifdb_client::is_fenced_error(&err)
    );

    // The router's next write hits the fence, probes for the promoted
    // successor, adopts it, and — because a fenced refusal proves the
    // attempt had no effect — retries transparently.
    router
        .insert(&Insert::new(
            "notes",
            vec![Datum::Int(100), Datum::from("after failover")],
        ))
        .unwrap();
    let rows = router.select(&Select::star("notes")).unwrap();
    println!(
        "write after failover succeeded; {} rows on the successor, {} failover(s)",
        rows.rows.len(),
        router.stats().failovers
    );

    router.close().unwrap();
    replica.shutdown();
    primary.shutdown();
    println!("clean shutdown");
}
