//! Cross-crate integration tests: the DIFC model, the storage engine, the
//! query engine, the platform, and the applications working together.

use ifdb_repro::cartel::{CartelApp, CartelConfig};
use ifdb_repro::hotcrp::{HotcrpApp, HotcrpConfig};
use ifdb_repro::ifdb::prelude::*;
use ifdb_repro::ifdb::TableDef;
use ifdb_repro::platform::Request;
use ifdb_repro::workloads::{TpccConfig, TpccDatabase, TpccTransaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cartel_end_to_end_confidentiality() {
    let app = CartelApp::build(&CartelConfig {
        users: 4,
        cars_per_user: 2,
        measurements_per_car: 25,
        ..Default::default()
    });
    let alice = &app.policy.users()[0];
    let bob = &app.policy.users()[1];

    // The owner sees their car locations; other users and anonymous clients
    // see nothing.
    let own = app
        .server
        .handle(&Request::new("cars.php").as_user(&alice.username));
    assert!(own.is_ok());
    assert!(!own.body.is_empty());

    let foreign = app.server.handle(
        &Request::new("drives.php")
            .as_user(&bob.username)
            .param("user", &alice.username),
    );
    assert!(foreign.body.is_empty());

    let anon = app.server.handle(&Request::new("cars.php"));
    assert!(anon.body.is_empty());

    // The database-level audit shows that only authorized declassifications
    // happened.
    assert!(app.db.audit().declassification_count() > 0);
}

#[test]
fn hotcrp_end_to_end_review_and_decision_protection() {
    let app = HotcrpApp::build(&HotcrpConfig::default());
    let paper = &app.policy.papers()[0];
    let author = app.policy.person(paper.author).unwrap();

    // Decisions stay hidden until release, then become visible to authors.
    let before = app.server.handle(
        &Request::new("paper_status.php")
            .as_user(&author.username)
            .param("paper", &paper.paperid.to_string()),
    );
    assert!(!before.body.iter().any(|l| l.starts_with("decision:")));
    app.policy.release_decisions(&app.db).unwrap();
    let after = app.server.handle(
        &Request::new("paper_status.php")
            .as_user(&author.username)
            .param("paper", &paper.paperid.to_string()),
    );
    assert!(after.body.iter().any(|l| l.starts_with("decision:")));
}

#[test]
fn tpcc_runs_with_and_without_difc() {
    for difc in [true, false] {
        let db = ifdb_repro::ifdb::Database::new(
            ifdb_repro::ifdb::DatabaseConfig::in_memory()
                .with_difc(difc)
                .with_seed(99),
        );
        let tpcc = TpccDatabase::load(
            db,
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 2,
                customers_per_district: 8,
                items: 30,
                initial_orders_per_district: 3,
                tags_per_label: if difc { 3 } else { 0 },
                seed: 2,
            },
        )
        .unwrap();
        let mut session = tpcc.session().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut committed = 0;
        for _ in 0..20 {
            let kind = TpccTransaction::draw(&mut rng);
            if tpcc.run_transaction(&mut session, &mut rng, kind).unwrap() {
                committed += 1;
            }
        }
        assert!(committed >= 15, "difc={difc}: most transactions commit");
    }
}

#[test]
fn labels_survive_the_full_stack() {
    // A small scenario crossing all layers: DIFC model objects, the storage
    // engine's tuple headers, the query engine's confinement, and the
    // platform's output gate.
    let db = Database::in_memory();
    let user = db.create_principal("user", PrincipalKind::User);
    let tag = db.create_tag(user, "user_data", &[]).unwrap();
    db.create_table(
        TableDef::new("Items")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key(&["id"]),
    )
    .unwrap();

    let mut s = db.session(user);
    s.add_secrecy(tag).unwrap();
    for i in 0..50 {
        s.insert(&Insert::new(
            "Items",
            vec![Datum::Int(i), Datum::Text(format!("item {i}"))],
        ))
        .unwrap();
    }
    // Storage-level: every tuple header carries exactly one tag.
    let stats = db.engine().stats();
    assert_eq!(stats.tuples_inserted, 50);

    // Query-level: an empty-labeled session sees nothing; the owner's
    // contaminated session sees everything with the right label.
    assert!(db
        .anonymous_session()
        .select(&Select::star("Items"))
        .unwrap()
        .is_empty());
    let rows = s.select(&Select::star("Items")).unwrap();
    assert_eq!(rows.len(), 50);
    assert!(rows.iter().all(|r| r.label == Label::singleton(tag)));

    // Platform-level: the contaminated session cannot release; after
    // declassifying it can.
    assert!(s.check_release_to_world().is_err());
    s.declassify(tag).unwrap();
    assert!(s.check_release_to_world().is_ok());
}
