//! Smoke test for the `ifdb_repro` facade re-exports.
//!
//! Every member crate is reached *through* its facade path
//! (`ifdb_repro::difc`, `::storage`, `::cartel`, …), so a renamed or dropped
//! re-export in `src/lib.rs` fails tier-1 here rather than silently breaking
//! downstream users of the facade.

use ifdb_repro::cartel::{CartelApp, CartelConfig, TraceGenerator};
use ifdb_repro::difc::{AuthorityState, Label, PrincipalKind, ProcessState};
use ifdb_repro::hotcrp::{HotcrpApp, HotcrpConfig};
use ifdb_repro::ifdb::prelude::*;
use ifdb_repro::ifdb::TableDef;
use ifdb_repro::platform::Request;
use ifdb_repro::storage::{ColumnDef, DataType, Datum, StorageEngine, TableSchema};
use ifdb_repro::workloads::{TpccConfig, TpccDatabase, TpccTransaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `ifdb_repro::difc`: the DIFC model objects work through the facade.
#[test]
fn difc_path_label_and_declassification() {
    let mut auth = AuthorityState::with_seed(7);
    let owner = auth.create_principal("owner", PrincipalKind::User);
    let tag = auth.create_tag(owner, "secret", &[]).unwrap();

    let mut proc = ProcessState::new(owner);
    proc.add_secrecy(tag).unwrap();
    assert_eq!(proc.label(), &Label::singleton(tag));
    assert!(proc.check_release_to_world().is_err());
    proc.declassify(tag, &auth).unwrap();
    assert!(proc.check_release_to_world().is_ok());
}

/// `ifdb_repro::storage`: the raw engine inserts and scans through the
/// facade, independent of the DIFC layer above it.
#[test]
fn storage_path_insert_and_scan() {
    let engine = StorageEngine::in_memory();
    let table = engine
        .create_table(TableSchema::new(
            "kv",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Text),
            ],
        ))
        .unwrap();

    let txn = engine.begin().unwrap();
    engine
        .insert(
            txn,
            table,
            vec![42],
            vec![Datum::Int(1), Datum::from("one")],
        )
        .unwrap();
    engine.commit(txn).unwrap();

    let reader = engine.begin().unwrap();
    let snapshot = engine.snapshot(reader);
    let mut rows = Vec::new();
    engine
        .scan_visible(&snapshot, table, |row, version| {
            rows.push((row, version));
            true
        })
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1.header.label, vec![42]);
    engine.commit(reader).unwrap();
}

/// `ifdb_repro::ifdb`: Query by Label through the facade — an
/// uncontaminated session must not see labeled rows.
#[test]
fn core_path_query_by_label() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    let tag = db.create_tag(user, "t", &[]).unwrap();
    db.create_table(
        TableDef::new("notes")
            .column("body", DataType::Text)
            .primary_key(&["body"]),
    )
    .unwrap();

    let mut session = db.session(user);
    session.add_secrecy(tag).unwrap();
    session
        .insert(&Insert::new("notes", vec![Datum::from("classified")]))
        .unwrap();

    assert_eq!(session.select(&Select::star("notes")).unwrap().len(), 1);
    let mut public = db.anonymous_session();
    assert!(public.select(&Select::star("notes")).unwrap().is_empty());
}

/// `ifdb_repro::cartel` + `::platform`: the ported application serves a
/// request through the facade, and its trace generator is deterministic.
#[test]
fn cartel_and_platform_paths() {
    let mut gen_a = TraceGenerator::new(5);
    let mut gen_b = TraceGenerator::new(5);
    assert_eq!(gen_a.trace(1, 1, 4), gen_b.trace(1, 1, 4));

    let app = CartelApp::build(&CartelConfig {
        users: 2,
        cars_per_user: 1,
        measurements_per_car: 5,
        ..Default::default()
    });
    let alice = &app.policy.users()[0];
    let own = app
        .server
        .handle(&Request::new("cars.php").as_user(&alice.username));
    assert!(own.is_ok());
    assert!(!own.body.is_empty());
}

/// `ifdb_repro::hotcrp`: the conference-review port builds and answers a
/// request through the facade; the decision stays behind the gate until the
/// chair releases it.
#[test]
fn hotcrp_path_serves_requests() {
    let app = HotcrpApp::build(&HotcrpConfig::default());
    let paper = &app.policy.papers()[0];
    let author = app.policy.person(paper.author).unwrap();
    let request = Request::new("paper_status.php")
        .as_user(&author.username)
        .param("paper", &paper.paperid.to_string());

    let before = app.server.handle(&request);
    assert!(!before.body.iter().any(|l| l.starts_with("decision:")));

    app.policy.release_decisions(&app.db).unwrap();
    let after = app.server.handle(&request);
    assert!(after.is_ok());
    assert!(after.body.iter().any(|l| l.starts_with("decision:")));
}

/// `ifdb_repro::workloads`: a TPC-C transaction runs through the facade.
#[test]
fn workloads_path_runs_new_order() {
    let db = Database::in_memory();
    let tpcc = TpccDatabase::load(
        db,
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 1,
            customers_per_district: 3,
            items: 10,
            initial_orders_per_district: 1,
            tags_per_label: 1,
            seed: 3,
        },
    )
    .unwrap();
    let mut session = tpcc.session().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    tpcc.run_transaction(&mut session, &mut rng, TpccTransaction::NewOrder)
        .unwrap();
}
