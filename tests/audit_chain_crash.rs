//! Audit-chain crash test: the tamper-evident chain must replay exactly
//! the committed history after a `SIGABRT` — no destructors, no flushes.
//!
//! The child process (this test binary re-executed, same pattern as
//! `ifdb-chaos`) runs an on-disk database and loops
//! `add_secrecy → declassify → insert` so every committed row is preceded
//! in the WAL by exactly one `LabelRaise` and one `Declassify` link. The
//! parent kills it mid-loop, recovers the directory with the same seed,
//! and checks the chain verifies and the replayed event counts bracket the
//! number of rows that actually committed.
//!
//! The audit links are appended to the WAL *before* the insert's commit,
//! and the commit's flush is what makes them durable. So with `k`
//! committed rows the recovered log must hold at least `k` of each event —
//! and at most `k + 1`, because the crash can land after the next
//! iteration's links reached the device but before its insert committed.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ifdb_repro::difc::audit::AuditEvent;
use ifdb_repro::ifdb::prelude::*;
use ifdb_repro::storage::{DataType, DurabilityConfig};

/// Directory the child database lives in; set only in the child.
const ENV_DIR: &str = "IFDB_AUDIT_CRASH_DIR";
/// File the child publishes its committed-iteration count to.
const ENV_PROGRESS: &str = "IFDB_AUDIT_CRASH_PROGRESS";

const SEED: u64 = 0xA0D17C4A;

fn ledger() -> TableDef {
    TableDef::new("ledger")
        .column("id", DataType::Int)
        .column("body", DataType::Text)
        .primary_key(&["id"])
}

/// The one construction path both processes share: same directory, same
/// authority seed, same sync-per-commit durability. Only `recover` differs.
fn build_db(dir: &Path, recover: bool) -> Database {
    let mut b = Database::builder()
        .on_disk(dir.to_path_buf(), 256)
        .seed(SEED)
        .durability(DurabilityConfig::SYNC_EACH)
        .first_boot_ddl([ledger()]);
    if recover {
        b = b.recover();
    }
    b.build().unwrap()
}

/// Child entry point: a no-op on a normal test run, an infinite
/// raise/declassify/insert loop when spawned by the parent. Runs until
/// `SIGABRT` arrives — it never exits on its own.
#[test]
fn audit_crash_child_main() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let progress = std::env::var(ENV_PROGRESS).expect("child needs a progress file");
    let db = build_db(Path::new(&dir), false);
    let worker = db.create_principal("worker", PrincipalKind::User);
    let tag = db.create_tag(worker, "secret", &[]).unwrap();

    let mut s = db.session(worker);
    for i in 0i64.. {
        // Both links enter the WAL before the insert; the insert's commit
        // flush is the durability point for all three.
        s.add_secrecy(tag).unwrap();
        s.declassify(tag).unwrap();
        s.insert(&Insert::new(
            "ledger",
            vec![Datum::Int(i), Datum::Text(format!("entry {i}"))],
        ))
        .unwrap();
        // Write-then-rename so the parent never reads a torn count.
        let tmp = format!("{progress}.tmp");
        std::fs::write(&tmp, (i + 1).to_string()).unwrap();
        std::fs::rename(&tmp, &progress).unwrap();
    }
}

#[test]
fn audit_chain_matches_committed_history_after_sigabrt() {
    let dir = std::env::temp_dir().join(format!(
        "ifdb-audit-crash-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or_default()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let progress: PathBuf = dir.join("progress");

    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args([
            "--exact",
            "audit_crash_child_main",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(ENV_DIR, &dir)
        .env(ENV_PROGRESS, &progress)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Let it commit a meaningful amount of history before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    let acked = loop {
        let count: u64 = std::fs::read_to_string(&progress)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        if count >= 20 {
            break count;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("audit crash child exited early: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "audit crash child made no progress"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // SIGABRT: the process dies mid-whatever with no cleanup. Fall back to
    // SIGKILL where there is no `kill` binary — even less polite.
    let pid = child.id().to_string();
    let aborted = Command::new("kill")
        .args(["-ABRT", &pid])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !aborted {
        let _ = child.kill();
    }
    let _ = child.wait();

    // Recover with the same seed and the same first-boot DDL; recreating
    // the principal and tag in the same order lines the ids up with the
    // events in the recovered chain.
    let db = build_db(&dir, true);
    let worker = db.create_principal("worker", PrincipalKind::User);
    let _tag = db.create_tag(worker, "secret", &[]).unwrap();

    // The chain survived the crash intact, link by link.
    db.verify_audit_chain().unwrap();

    let mut s = db.session(worker);
    let committed = s.select(&Select::star("ledger")).unwrap().len() as u64;
    // Progress is published only after the commit it reports, so every
    // acked iteration must have survived.
    assert!(
        committed >= acked,
        "acked commit lost: saw {committed} rows, child acked {acked}"
    );

    // Replay ≡ committed history: exactly one raise and one declassify per
    // committed row, plus at most one in-flight pair from the iteration the
    // crash interrupted.
    let events = db.replay_audit();
    let raises = events
        .iter()
        .filter(|e| matches!(e, AuditEvent::LabelRaise { .. }))
        .count() as u64;
    let declassifies = events
        .iter()
        .filter(|e| matches!(e, AuditEvent::Declassify { .. }))
        .count() as u64;
    assert_eq!(
        events.len() as u64,
        raises + declassifies,
        "unexpected event kinds in the recovered chain"
    );
    for (reached, name) in [(raises, "raises"), (declassifies, "declassifies")] {
        assert!(
            (committed..=committed + 1).contains(&reached),
            "{name} out of range: {reached} events for {committed} committed rows"
        );
    }
    assert!(declassifies <= raises, "a declassify outran its raise");

    // The recovered database keeps chaining: new events extend the same
    // chain and it still verifies end to end.
    let tag2 = s.create_tag("post-crash", &[]).unwrap();
    s.add_secrecy(tag2).unwrap();
    s.declassify(tag2).unwrap();
    db.verify_audit_chain().unwrap();
    assert!(db.replay_audit().len() as u64 >= raises + declassifies + 2);

    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
