//! Concurrent smoke test: N threads of labeled reads, writes and
//! declassifying-view queries against one shared `Database`.
//!
//! The streaming executor takes the authority lock only to build a scan's
//! declassify cover, never across the scan, so concurrent sessions must not
//! deadlock even while some of them mutate the authority state. Each thread
//! asserts its own reads are correct under Query by Label, and an explicit
//! transaction checks snapshot consistency while the other threads write.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ifdb_repro::difc::Label;
use ifdb_repro::ifdb::prelude::*;
use ifdb_repro::ifdb::{TableDef, ViewSource};

const THREADS: usize = 6;
const ITERS: i64 = 40;

struct Fixture {
    db: Database,
    users: Vec<(PrincipalId, TagId)>,
}

fn fixture() -> Fixture {
    let db = Database::in_memory();
    let service = db.create_principal("service", PrincipalKind::Service);
    let all_events = db.create_compound_tag(service, "all_events", &[]).unwrap();
    let users: Vec<(PrincipalId, TagId)> = (0..THREADS)
        .map(|i| {
            let p = db.create_principal(&format!("user{i}"), PrincipalKind::User);
            let t = db
                .create_tag(p, &format!("user{i}_events"), &[all_events])
                .unwrap();
            (p, t)
        })
        .collect();
    db.create_table(
        TableDef::new("Events")
            .column("id", DataType::Int)
            .column("owner", DataType::Int)
            .column("v", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    // The service owns the compound enclosing every per-user tag, so it can
    // create a view that declassifies all of them at once.
    db.create_declassifying_view(
        service,
        "PublicEvents",
        ViewSource::Select(Select::star("Events").project(&["id", "owner"])),
        Label::singleton(all_events),
    )
    .unwrap();
    Fixture { db, users }
}

fn worker(fx: Arc<Fixture>, me: usize) {
    let (principal, tag) = fx.users[me];
    let my_label = Label::singleton(tag);
    for i in 0..ITERS {
        let id = (me as i64) * 1_000_000 + i;
        // Write under this thread's label.
        let mut w = fx.db.session(principal);
        w.add_secrecy(tag).unwrap();
        w.insert(&Insert::new(
            "Events",
            vec![Datum::Int(id), Datum::Int(me as i64), Datum::Int(i)],
        ))
        .unwrap();

        // Read back own rows: Query by Label admits exactly this thread's
        // population for a {tag}-labeled reader.
        let mut r = fx.db.session(principal);
        r.add_secrecy(tag).unwrap();
        let mine = r
            .select(
                &Select::star("Events")
                    .filter(Predicate::Eq("owner".into(), Datum::Int(me as i64))),
            )
            .unwrap();
        assert_eq!(
            mine.len(),
            (i + 1) as usize,
            "thread {me} sees exactly its own inserts so far"
        );
        for row in mine.iter() {
            assert_eq!(row.label, my_label);
        }
        // A PK point read must find the row just written.
        let point = r
            .select(&Select::star("Events").filter(Predicate::Eq("id".into(), Datum::Int(id))))
            .unwrap();
        assert_eq!(point.len(), 1);

        // The declassifying view exposes stripped rows to an uncontaminated
        // session; it must see at least this thread's committed rows.
        if i % 8 == 3 {
            let mut anon = fx.db.anonymous_session();
            let public = anon
                .select(
                    &Select::star("PublicEvents")
                        .filter(Predicate::Eq("owner".into(), Datum::Int(me as i64))),
                )
                .unwrap();
            assert!(public.len() >= (i + 1) as usize);
            for row in public.iter() {
                assert!(row.label.is_empty(), "view strips every member tag");
            }
            assert!(anon.check_release_to_world().is_ok());
        }

        // Snapshot consistency: inside one explicit transaction, repeated
        // aggregate counts agree even while other threads commit inserts.
        if i % 8 == 6 {
            let mut t = fx.db.session(principal);
            t.add_secrecy(tag).unwrap();
            t.begin().unwrap();
            let count =
                |s: &mut Session| -> usize { s.select(&Select::star("Events")).unwrap().len() };
            let first = count(&mut t);
            thread::sleep(Duration::from_millis(1));
            let second = count(&mut t);
            assert_eq!(first, second, "snapshot must not move inside a txn");
            t.commit().unwrap();
        }
    }
}

#[test]
fn concurrent_sessions_do_not_deadlock_and_stay_consistent() {
    let fx = Arc::new(fixture());
    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for me in 0..THREADS {
        let fx = fx.clone();
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            worker(fx, me);
            tx.send(me).unwrap();
        }));
    }
    drop(tx);
    // Watchdog: a deadlocked executor shows up as a receive timeout instead
    // of a hung test suite.
    for _ in 0..THREADS {
        rx.recv_timeout(Duration::from_secs(120))
            .expect("a worker thread deadlocked or panicked");
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    // Final state: every thread's full population, visible to an all-seeing
    // reader through the declassifying view.
    let mut anon = fx.db.anonymous_session();
    let all = anon.select(&Select::star("PublicEvents")).unwrap();
    assert_eq!(all.len(), THREADS * ITERS as usize);
}
