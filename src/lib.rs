//! Facade crate for the IFDB reproduction workspace.
//!
//! Re-exports the individual crates under short names so examples and
//! integration tests can use a single dependency.

pub use ifdb;
pub use ifdb_cartel as cartel;
pub use ifdb_client as client;
pub use ifdb_difc as difc;
pub use ifdb_hotcrp as hotcrp;
pub use ifdb_platform as platform;
pub use ifdb_server as server;
pub use ifdb_storage as storage;
pub use ifdb_workloads as workloads;
