//! A hand-rolled epoll wrapper: the readiness layer under the IFDB reactor.
//!
//! The build environment has no crates.io access, so this crate plays the
//! role `mio`/`polling` would: a thin, safe-ish abstraction over Linux
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` plus an `eventfd`-based waker,
//! issued as **direct syscalls** (inline `syscall` instructions on
//! x86-64/aarch64; the platform libc's C entry points elsewhere, which std
//! links anyway).
//!
//! The model is deliberately tiny:
//!
//! * a [`Poller`] owns one epoll instance and one eventfd waker;
//! * file descriptors are registered with a `usize` **key** and an
//!   [`Interest`] (readable and/or writable) in either [`Mode::Level`] or
//!   [`Mode::Edge`];
//! * [`Poller::wait`] fills an [`Events`] buffer; each [`Event`] reports the
//!   key plus readable/writable/closed flags;
//! * [`Poller::notify`] wakes a concurrent `wait` from any thread (the waker
//!   event is consumed internally and surfaces as [`Event::is_waker`]).
//!
//! Nothing here spawns threads or owns sockets: the caller keeps ownership
//! of its fds and must `delete` them before closing (epoll auto-deregisters
//! on close, but only once every duplicate of the fd is gone).

#![deny(missing_docs)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw syscalls
// ---------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Direct syscalls on x86-64 Linux: numbers from `asm/unistd_64.h`.
    pub const SYS_READ: usize = 0;
    pub const SYS_WRITE: usize = 1;
    pub const SYS_CLOSE: usize = 3;
    pub const SYS_FCNTL: usize = 72;
    pub const SYS_EPOLL_WAIT: usize = 232;
    pub const SYS_EPOLL_CTL: usize = 233;
    pub const SYS_EVENTFD2: usize = 290;
    pub const SYS_EPOLL_CREATE1: usize = 291;

    /// One `syscall` instruction; returns the raw kernel result (negative
    /// errno on failure).
    pub unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub unsafe fn epoll_wait(epfd: usize, events: usize, max: usize, timeout_ms: isize) -> isize {
        syscall4(SYS_EPOLL_WAIT, epfd, events, max, timeout_ms as usize)
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    //! Direct syscalls on aarch64 Linux: numbers from `asm-generic/unistd.h`.
    //! aarch64 has no `epoll_wait`; `epoll_pwait` with a null sigmask is the
    //! same call.
    pub const SYS_READ: usize = 63;
    pub const SYS_WRITE: usize = 64;
    pub const SYS_CLOSE: usize = 57;
    pub const SYS_FCNTL: usize = 25;
    pub const SYS_EPOLL_PWAIT: usize = 22;
    pub const SYS_EPOLL_CTL: usize = 21;
    pub const SYS_EVENTFD2: usize = 19;
    pub const SYS_EPOLL_CREATE1: usize = 20;

    pub unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        syscall6(n, a, b, c, d, 0, 0)
    }

    /// One `svc 0` instruction; returns the raw kernel result.
    pub unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    pub unsafe fn epoll_wait(epfd: usize, events: usize, max: usize, timeout_ms: isize) -> isize {
        // sigmask = NULL, sigsetsize = 8 (ignored with a null mask).
        syscall6(
            SYS_EPOLL_PWAIT,
            epfd,
            events,
            max,
            timeout_ms as usize,
            0,
            8,
        )
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Fallback for other Linux targets: the libc entry points (std links
    //! libc, so these symbols are always present) — same kernel calls, one
    //! C shim deep.
    use std::os::raw::{c_int, c_uint, c_void};

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut c_void) -> c_int;
        #[link_name = "epoll_wait"]
        fn c_epoll_wait(
            epfd: c_int,
            events: *mut c_void,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub const SYS_READ: usize = 0;
    pub const SYS_WRITE: usize = 1;
    pub const SYS_CLOSE: usize = 2;
    pub const SYS_FCNTL: usize = 3;
    pub const SYS_EPOLL_CTL: usize = 4;
    pub const SYS_EVENTFD2: usize = 5;
    pub const SYS_EPOLL_CREATE1: usize = 6;

    fn errno_result(r: isize) -> isize {
        if r < 0 {
            -(std::io::Error::last_os_error().raw_os_error().unwrap_or(5) as isize)
        } else {
            r
        }
    }

    pub unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let r = match n {
            SYS_READ => read(a as c_int, b as *mut c_void, c),
            SYS_WRITE => write(a as c_int, b as *const c_void, c),
            SYS_CLOSE => close(a as c_int) as isize,
            SYS_FCNTL => fcntl(a as c_int, b as c_int, c as c_int) as isize,
            SYS_EPOLL_CTL => {
                epoll_ctl(a as c_int, b as c_int, c as c_int, d as *mut c_void) as isize
            }
            SYS_EVENTFD2 => eventfd(a as c_uint, b as c_int) as isize,
            SYS_EPOLL_CREATE1 => epoll_create1(a as c_int) as isize,
            _ => -38, // ENOSYS
        };
        errno_result(r)
    }

    pub unsafe fn epoll_wait(epfd: usize, events: usize, max: usize, timeout_ms: isize) -> isize {
        errno_result(c_epoll_wait(
            epfd as c_int,
            events as *mut c_void,
            max as c_int,
            timeout_ms as c_int,
        ) as isize)
    }
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// epoll constants (uapi/linux/eventpoll.h).
const EPOLL_CLOEXEC: usize = 0o2000000;
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

// eventfd / fcntl constants.
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;
const F_GETFL: usize = 3;
const F_SETFL: usize = 4;
const O_NONBLOCK: usize = 0o4000;

/// The kernel's `struct epoll_event`. The layout is **target-conditional**:
/// only the x86-64 ABI packs it to 12 bytes; every other architecture
/// (aarch64 included) uses the natural 16-byte layout with `data` at offset
/// 8. A packed struct elsewhere would under-size the `epoll_wait` buffer by
/// 4 bytes per event (the kernel writes 16-byte records → heap overflow)
/// and read `data` from the wrong offset.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// Pin the kernel ABI at compile time: 12 bytes packed on x86-64, 16 bytes
// naturally aligned everywhere else.
#[cfg(target_arch = "x86_64")]
const _: () = assert!(std::mem::size_of::<EpollEvent>() == 12);
#[cfg(not(target_arch = "x86_64"))]
const _: () =
    assert!(std::mem::size_of::<EpollEvent>() == 16 && std::mem::align_of::<EpollEvent>() == 8);

/// The key [`Poller::notify`] events surface under; never use it for a
/// registered fd.
pub const WAKER_KEY: usize = usize::MAX;

/// What to watch a registration for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (useful to keep the fd known while paused —
    /// e.g. backpressure that stops reading a connection).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// Level- or edge-triggered delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Level-triggered (default): the event repeats every `wait` while the
    /// condition holds.
    #[default]
    Level,
    /// Edge-triggered: the event fires once per readiness *transition*; the
    /// caller must drain until `WouldBlock` or it will stall.
    Edge,
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the fd was registered under ([`WAKER_KEY`] for notify).
    pub key: usize,
    /// The fd is readable (includes peer-closed: read to find out).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed or the fd errored (`EPOLLHUP`/`EPOLLERR`/
    /// `EPOLLRDHUP`); treat the connection as finished after draining.
    pub closed: bool,
}

impl Event {
    /// `true` when this event came from [`Poller::notify`].
    pub fn is_waker(&self) -> bool {
        self.key == WAKER_KEY
    }
}

/// A reusable buffer of readiness events for [`Poller::wait`].
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            let bits = e.events;
            Event {
                key: e.data as usize,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn event_bits(interest: Interest, mode: Mode) -> u32 {
    let mut bits = EPOLLRDHUP;
    if interest.readable {
        bits |= EPOLLIN;
    }
    if interest.writable {
        bits |= EPOLLOUT;
    }
    if mode == Mode::Edge {
        bits |= EPOLLET;
    }
    bits
}

/// One epoll instance plus an eventfd waker.
pub struct Poller {
    epfd: RawFd,
    waker_fd: RawFd,
    notified: AtomicBool,
}

// The epoll fd and eventfd are plain kernel handles; every operation here is
// thread-safe at the kernel level.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates an epoll instance with its waker registered.
    pub fn new() -> io::Result<Poller> {
        let epfd = check(unsafe { sys::syscall4(sys::SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?
            as RawFd;
        let waker_fd = match check(unsafe {
            sys::syscall4(sys::SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0)
        }) {
            Ok(fd) => fd as RawFd,
            Err(e) => {
                let _ = unsafe { sys::syscall4(sys::SYS_CLOSE, epfd as usize, 0, 0, 0) };
                return Err(e);
            }
        };
        let poller = Poller {
            epfd,
            waker_fd,
            notified: AtomicBool::new(false),
        };
        poller.ctl(EPOLL_CTL_ADD, waker_fd, EPOLLIN, WAKER_KEY as u64)?;
        Ok(poller)
    }

    fn ctl(&self, op: usize, fd: RawFd, bits: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: bits, data };
        check(unsafe {
            sys::syscall4(
                sys::SYS_EPOLL_CTL,
                self.epfd as usize,
                op,
                fd as usize,
                (&mut ev as *mut EpollEvent) as usize,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` under `key`.
    pub fn add(
        &self,
        fd: &impl AsRawFd,
        key: usize,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            event_bits(interest, mode),
            key as u64,
        )
    }

    /// Changes the interest or mode of a registered fd.
    pub fn modify(
        &self,
        fd: &impl AsRawFd,
        key: usize,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            event_bits(interest, mode),
            key as u64,
        )
    }

    /// Deregisters a fd.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Waits for events, filling `events`. `None` blocks indefinitely;
    /// `Some(d)` wakes after `d` even if nothing is ready. Returns the
    /// number of events delivered (0 on timeout). Waker notifications are
    /// consumed (the eventfd counter is reset) but still surface as events
    /// so callers can distinguish "woken" from "timed out".
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: isize = match timeout {
            None => -1,
            // Round up so a 1ns timeout does not busy-spin at 0ms.
            Some(d) => {
                d.as_millis().min(isize::MAX as u128) as isize
                    + if d.subsec_nanos() % 1_000_000 != 0 {
                        1
                    } else {
                        0
                    }
            }
        };
        let n = loop {
            let r = unsafe {
                sys::epoll_wait(
                    self.epfd as usize,
                    events.raw.as_mut_ptr() as usize,
                    events.raw.len(),
                    timeout_ms,
                )
            };
            if r == -4 {
                // EINTR: retry. (A timed wait may now over-wait; callers of
                // this reactor poll in a loop, so precision is not needed.)
                continue;
            }
            break check(r)?;
        };
        events.len = n;
        // Drain the waker so it is level-quiet until the next notify.
        for e in &events.raw[..n] {
            if e.data as usize == WAKER_KEY {
                let mut buf = [0u8; 8];
                let _ = unsafe {
                    sys::syscall4(
                        sys::SYS_READ,
                        self.waker_fd as usize,
                        buf.as_mut_ptr() as usize,
                        8,
                        0,
                    )
                };
                self.notified.store(false, Ordering::Release);
            }
        }
        Ok(n)
    }

    /// Wakes a concurrent [`Poller::wait`] from any thread. Coalesced: many
    /// notifies between waits cost one eventfd write.
    pub fn notify(&self) -> io::Result<()> {
        if self
            .notified
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Ok(()); // already pending
        }
        let one: u64 = 1;
        check(unsafe {
            sys::syscall4(
                sys::SYS_WRITE,
                self.waker_fd as usize,
                (&one as *const u64) as usize,
                8,
                0,
            )
        })
        .map(|_| ())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::syscall4(sys::SYS_CLOSE, self.waker_fd as usize, 0, 0, 0);
            let _ = sys::syscall4(sys::SYS_CLOSE, self.epfd as usize, 0, 0, 0);
        }
    }
}

/// Switches a fd's `O_NONBLOCK` flag via `fcntl` — the reactor's sockets
/// must never block the event loop.
pub fn set_nonblocking(fd: &impl AsRawFd, nonblocking: bool) -> io::Result<()> {
    let fd = fd.as_raw_fd() as usize;
    let flags = check(unsafe { sys::syscall4(sys::SYS_FCNTL, fd, F_GETFL, 0, 0) })?;
    let flags = if nonblocking {
        flags | O_NONBLOCK
    } else {
        flags & !O_NONBLOCK
    };
    check(unsafe { sys::syscall4(sys::SYS_FCNTL, fd, F_SETFL, flags, 0) }).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn level_triggered_read_repeats_until_drained() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 7, Interest::READ, Mode::Level).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing ready: timeout.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        a.write_all(b"hi").unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        let ev = events.iter().find(|e| e.key == 7).expect("event for key 7");
        assert!(ev.readable && !ev.closed);

        // Level-triggered: without reading, the event fires again.
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        assert!(events.iter().any(|e| e.key == 7 && e.readable));

        // Drain, then quiet.
        let mut buf = [0u8; 8];
        let mut b2 = &b;
        let n = b2.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        poller.delete(&b).unwrap();
    }

    #[test]
    fn edge_triggered_fires_once_per_transition() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 3, Interest::READ, Mode::Edge).unwrap();
        let mut events = Events::with_capacity(8);

        a.write_all(b"x").unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
        // Edge-triggered and undrained: no repeat.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
        // A new byte is a new edge.
        a.write_all(b"y").unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn writable_and_peer_close_events() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 9, Interest::BOTH, Mode::Level).unwrap();
        let mut events = Events::with_capacity(8);

        // A fresh socket is writable.
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        assert!(events.iter().any(|e| e.key == 9 && e.writable));

        drop(a);
        // Peer close surfaces as a readable+closed event (EOF on read).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.key == 9 && e.closed) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no close event");
        }
    }

    #[test]
    fn interest_modify_pauses_and_resumes() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&b, 1, Interest::READ, Mode::Level).unwrap();
        let mut events = Events::with_capacity(8);
        a.write_all(b"z").unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );

        // Pause: dormant interest silences the pending readable byte —
        // exactly the backpressure move the reactor makes.
        poller.modify(&b, 1, Interest::NONE, Mode::Level).unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
        // Resume: the byte is still there, the event comes back.
        poller.modify(&b, 1, Interest::READ, Mode::Level).unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        assert!(events.iter().any(|e| e.key == 1 && e.readable));
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(n >= 1, "notify must deliver an event");
        assert!(events.iter().any(|e| e.is_waker()));
        assert!(start.elapsed() < Duration::from_secs(5));
        // Consumed: the next wait times out instead of spinning.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        // Coalescing: two notifies, one wake.
        poller.notify().unwrap();
        poller.notify().unwrap();
        assert!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap()
                >= 1
        );
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        t.join().unwrap();
    }

    #[test]
    fn set_nonblocking_round_trips() {
        let (_a, b) = pair();
        set_nonblocking(&b, true).unwrap();
        let mut buf = [0u8; 1];
        let mut b2 = &b;
        let err = b2.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        set_nonblocking(&b, false).unwrap();
    }
}
