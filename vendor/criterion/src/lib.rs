//! Minimal in-tree stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_with_input`/`bench_function`, `BenchmarkId`, and
//! `Bencher::iter` — with a simple wall-clock measurement loop: per sample,
//! the closure is run for a calibrated iteration count and the median
//! nanoseconds-per-iteration across samples is reported to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target measurement time per benchmark, split across samples.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let samples = self.sample_size;
        let measurement = self.measurement;
        run_benchmark(&id.0, samples, measurement, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.measurement, |b| f(b, input));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.measurement, |b| f(b));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    recorded: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut total = Duration::ZERO;
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        total += start.elapsed();
        self.samples
            .push(total.as_nanos() as f64 / self.iters_per_sample as f64);
        self.recorded = true;
    }
}

fn run_benchmark(
    label: &str,
    samples: usize,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: find an iteration count that makes one sample take
    // roughly measurement/samples, so fast and slow benchmarks both finish.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        recorded: false,
    };
    f(&mut calib);
    if !calib.recorded {
        println!("  {label:<40} (no measurement recorded)");
        return;
    }
    let per_iter_ns = calib.samples[0].max(1.0);
    let target_ns = (measurement.as_nanos() as f64 / samples as f64).max(1.0);
    let iters = ((target_ns / per_iter_ns) as u64).clamp(1, 10_000_000);

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        recorded: false,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mut times = bencher.samples;
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "  {label:<40} median {} / iter (range {} .. {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi),
        times.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
