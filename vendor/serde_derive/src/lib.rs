//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Generates field-aware `serde::Serialize` impls (and marker
//! `serde::Deserialize` impls) for the shapes the workspace actually uses:
//! structs with named fields, tuple/unit structs, and enums with unit, tuple
//! and struct variants. Parsing is done directly on the `proc_macro` token
//! stream — `syn`/`quote` are unavailable offline. Generics are not
//! supported (no workspace type needs them); deriving on a generic type
//! panics with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, parsed) = parse(input);
    let body = match parsed {
        Input::Struct(shape) => struct_body(&shape, "self."),
        Input::Enum(variants) => enum_body(&name, &variants),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl failed to parse")
}

fn struct_body(shape: &Shape, access: &str) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        // Newtype structs serialize transparently, as real serde does.
        Shape::Tuple(1) => format!("::serde::Serialize::to_json_value(&{access}0)"),
        Shape::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&{access}{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Named(fields) => {
            let items = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&{access}{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{items}])")
        }
    }
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    // Externally tagged, serde's default: "Var", {"Var": x}, {"Var": [..]},
    // {"Var": {..}}.
    let arms = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                ),
                Shape::Tuple(n) => {
                    let binds = (0..*n)
                        .map(|i| format!("__f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_json_value(__f0)".to_string()
                    } else {
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_json_value(__f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("::serde::Value::Array(::std::vec![{items}])")
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})]),"
                    )
                }
                Shape::Named(fields) => {
                    let binds = fields.join(", ");
                    let items = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_json_value({f}))"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Object(::std::vec![{items}]))]),"
                    )
                }
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!("match self {{\n{arms}\n}}")
}

// --------------------------------------------------------------------------
// Token-stream parsing
// --------------------------------------------------------------------------

fn parse(input: TokenStream) -> (String, Input) {
    let mut tokens = input.into_iter().peekable();
    let mut kind = None;
    while let Some(tt) = tokens.next() {
        match tt {
            // Outer attribute or doc comment: `#` followed by a [...] group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // `pub(crate)` and friends carry a parenthesized group.
                if matches!(tokens.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                break;
            }
            _ => {}
        }
    }
    let kind = kind.expect("serde_derive: expected `struct` or `enum`");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (in-tree stand-in): generic types are not supported");
    }
    let parsed = if kind == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Input::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::Struct(Shape::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Input::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        }
    };
    (name, parsed)
}

/// Parses `[attrs] [vis] name: Type, ...`, returning the field names. Commas
/// inside angle brackets (e.g. `HashMap<String, u64>`) are not separators.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&mut tokens);
    }
    fields
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut tokens);
    }
    count
}

/// Parses `[attrs] Name [(..) | {..}] [, ...]` enum variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                tokens.next();
                s
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type(&mut tokens);
        variants.push(Variant { name, shape });
    }
    variants
}

/// Skips `#[...]` attributes (including doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => break,
        }
    }
}

/// Consumes tokens up to and including the next comma at angle-bracket depth
/// zero (the end of a type or discriminant expression).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth: i64 = 0;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}
