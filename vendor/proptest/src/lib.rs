//! Minimal in-tree stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over functions with `arg in strategy` bindings, integer-range
//! strategies, `proptest::collection::vec`, `Strategy::prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Each property runs a fixed
//! number of deterministic random cases (no shrinking); a failing case
//! panics with the ordinary assert message.

pub mod strategy {
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of `Value` from a random source.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Number of random cases each property runs.
    pub const CASES: u64 = 256;
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `fn name(arg in strategy, ...) { body }` as a test
/// over [`test_runner::CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // Deterministic but distinct per property: seed from the name.
            let seed = $crate::seed_from_name(stringify!($name));
            let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
            for __case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)+
                $body
            }
        }
    )*};
}

/// FNV-1a hash of the property name, used as its RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 0u64..32, v in collection::vec(0u64..32, 0..8)) {
            prop_assert!(x < 32);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 32));
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| "x".repeat(n))) {
            prop_assert!((1..5).contains(&s.len()));
        }
    }

    #[test]
    fn deterministic_seed_per_name() {
        assert_eq!(
            crate::seed_from_name("prop_a"),
            crate::seed_from_name("prop_a")
        );
        assert_ne!(
            crate::seed_from_name("prop_a"),
            crate::seed_from_name("prop_b")
        );
    }
}
