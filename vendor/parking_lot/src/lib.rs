//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the `parking_lot` API the workspace uses — `Mutex` and
//! `RwLock` with non-poisoning guards — implemented over `std::sync`.
//! A poisoned std lock (a panic while held) is recovered transparently,
//! matching `parking_lot`'s semantics of never poisoning.

use std::fmt;
use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive; `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_from_panic() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
