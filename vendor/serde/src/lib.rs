//! Minimal in-tree stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace only ever
//! serializes (reports written by `ifdb-bench` via `serde_json`), so this
//! stand-in collapses serde's data model to a single JSON [`Value`] tree:
//! [`Serialize`] renders a value into a [`Value`], and `Deserialize` exists
//! only so `#[derive(Deserialize)]` on the seed types compiles (nothing in
//! the workspace parses serialized data back yet).
//!
//! `serde_derive` generates field-aware impls for structs and enums using the
//! same externally-tagged encoding real serde defaults to.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the entire data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object, matching struct field declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys (e.g. `"lag.mean_records"`).
    pub fn path(&self, path: &str) -> Option<&Value> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// Numeric view: `Int`, `UInt` and `Float` all convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned view of `Int`/`UInt` values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Render `self` as a [`Value`].
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Marker so `#[derive(Deserialize)]` compiles; no workspace code
/// deserializes yet.
pub trait Deserialize<'de>: Sized {}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json_value(&self) -> Value {
        // Hash iteration order is nondeterministic; render as-is (callers
        // needing stable output should use ordered containers).
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
