//! Minimal in-tree stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `rand` API the workspace uses: `StdRng` (xoshiro256++),
//! `SeedableRng::seed_from_u64` (SplitMix64 expansion, as in `rand_core`),
//! `thread_rng`, the `Rng` extension methods `gen`, `gen_range`, `gen_bool`,
//! and `distributions::{Distribution, Uniform}`.
//!
//! Streams are deterministic per seed but do **not** bit-match upstream
//! `rand`; all workspace uses only need determinism, not compatibility.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the same scheme rand_core uses to turn a
            // u64 into a full seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro requires a non-zero state; SplitMix64 of any input makes
            // an all-zero state astronomically unlikely, but guard anyway.
            if s == [0; 4] {
                StdRng {
                    s: [0xDEAD_BEEF, 1, 2, 3],
                }
            } else {
                StdRng { s }
            }
        }
    }

    /// A per-call RNG seeded from process entropy sources.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl crate::RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Source of raw random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform integer in `[0, span)` via Lemire-style rejection on the low
/// 64 bits (span always fits in u64 for the workspace's ranges).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Accept only draws below the largest multiple of `span`, so every
    // residue class is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Returns an RNG seeded from OS entropy-ish process state.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let addr = &nanos as *const u64 as u64;
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ addr.rotate_left(32) ^ std::process::id() as u64,
    ))
}

pub mod distributions {
    use super::{Rng, RngCore, SampleRange};

    /// Types that can be sampled to produce values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(self.low..self.high)
        }
    }

    macro_rules! uniform_int_distribution {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    (self.low..self.high).sample_single(rng)
                }
            }
        )*};
    }

    uniform_int_distribution!(i32, i64, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(1..=10u64);
            assert!((1..=10).contains(&v));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_distribution_samples() {
        use distributions::{Distribution, Uniform};
        let d = Uniform::new(0.0f64, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
