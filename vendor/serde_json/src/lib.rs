//! Minimal in-tree stand-in for `serde_json`.
//!
//! Renders the in-tree `serde` stand-in's [`Value`] tree as real JSON text
//! (with string escaping and two-space pretty printing), and parses JSON
//! text back into a [`Value`] tree with [`from_str`] — enough for the
//! bench-regression gate to read `BENCH_*.json` reports and their committed
//! baselines. There is no typed `Deserialize`; consumers walk the tree via
//! [`Value::path`]/[`Value::as_f64`].

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`] tree. Rejects trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the gate's
                            // ASCII metric names; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` directly to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always render with a decimal point
                // or exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, items.len(), '[', ']', |out, i, lvl| {
                write_value(out, &items[i], indent, lvl)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            indent,
            level,
            entries.len(),
            '{',
            '}',
            |out, i, lvl| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, lvl)
            },
        ),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":-3,"b":[true,null],"c":1.5,"d":2.0}"#
        );
    }

    #[test]
    fn pretty_rendering() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::UInt(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"x\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            to_string(&"a\"b\\c\nd\u{1}").unwrap(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("wal \"ship\"\n".into())),
            ("n".into(), Value::UInt(12)),
            ("neg".into(), Value::Int(-7)),
            ("rate".into(), Value::Float(0.925)),
            ("big".into(), Value::Float(1.5e9)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parse_walks_paths() {
        let v = from_str(r#"{"lag": {"mean_records": 12.5, "samples": [1, 2]}}"#).unwrap();
        assert_eq!(v.path("lag.mean_records").unwrap().as_f64(), Some(12.5));
        assert_eq!(v.path("lag.samples").unwrap().as_array().unwrap().len(), 2);
        assert!(v.path("lag.missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\": 1} trailing").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("12..5").is_err());
    }
}
