//! Minimal in-tree stand-in for `serde_json`.
//!
//! Renders the in-tree `serde` stand-in's [`Value`] tree as real JSON text
//! (with string escaping and two-space pretty printing). Only serialization
//! is provided — nothing in the workspace deserializes JSON yet.

use std::fmt;

pub use serde::Value;
use serde::Serialize;

/// Error type for API parity; serialization of a `Value` tree cannot fail.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` directly to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always render with a decimal point
                // or exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, items.len(), '[', ']', |out, i, lvl| {
                write_value(out, &items[i], indent, lvl)
            })
        }
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, i, lvl| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, lvl)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":-3,"b":[true,null],"c":1.5,"d":2.0}"#
        );
    }

    #[test]
    fn pretty_rendering() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::UInt(1)]))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"x\": [\n    1\n  ]\n}");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            to_string(&"a\"b\\c\nd\u{1}").unwrap(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(
            to_string_pretty(&Value::Array(vec![])).unwrap(),
            "[]"
        );
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
