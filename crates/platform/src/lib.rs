//! The application platform: a stand-in for PHP-IF / Python-IF.
//!
//! In the paper, IFDB only accepts connections from applications running in a
//! trusted runtime that tracks labels at process granularity and interposes
//! on output (Section 2, Section 7.2). This crate reproduces that runtime for
//! Rust applications:
//!
//! * [`auth`] — the trusted authentication component that maps external users
//!   to principals.
//! * [`gate`] — the output gate: every byte sent to the web client passes a
//!   release check against the process label.
//! * [`webserver`] — a simulated web/application server hosting request
//!   scripts, with a configurable per-request CPU cost so the benchmarks can
//!   reproduce the web-server-bound configuration of Figure 4.
//! * [`httpsim`] — a TPC-W-style closed-loop client driver: sessions with
//!   truncated-negative-exponential think times, a request mix, throughput
//!   and latency percentiles.

pub mod auth;
pub mod gate;
pub mod httpsim;
pub mod webserver;

pub use auth::Authenticator;
pub use gate::ResponseWriter;
pub use httpsim::{ClosedLoopDriver, DriverConfig, DriverReport, LatencyStats};
pub use webserver::{AppServer, Request, Response, Script, ServerConfig};
