//! The output gate: interposition on everything sent to the client.
//!
//! PHP-IF and Python-IF "interpose on output, so programs that are too
//! contaminated can't release information" (Section 7.2). The
//! [`ResponseWriter`] is the only way request scripts can produce output, and
//! every write is checked against the process label; a contaminated process
//! produces no output regardless of what it read.

use ifdb::{IfdbResult, SessionApi};

/// Collects the output of one request, enforcing the release check on every
/// write.
///
/// The gate is transport-independent: it takes any [`SessionApi`], so it
/// interposes identically whether the session is in-process or a remote
/// `ifdb-client` connection (whose label mirror makes the check local, as
/// PHP-IF tracks the label in the runtime).
#[derive(Debug, Default)]
pub struct ResponseWriter {
    lines: Vec<String>,
    blocked_writes: usize,
}

impl ResponseWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits a line of output on behalf of `session`. Fails (and records a
    /// blocked write) if the session's label is not empty.
    pub fn emit(&mut self, session: &dyn SessionApi, line: impl Into<String>) -> IfdbResult<()> {
        match session.check_release_to_world() {
            Ok(()) => {
                self.lines.push(line.into());
                Ok(())
            }
            Err(e) => {
                self.blocked_writes += 1;
                Err(e)
            }
        }
    }

    /// Emits a line, swallowing a blocked-release error (the paper's
    /// behaviour: the contaminated script simply produces no output). Returns
    /// `true` if the line was delivered.
    pub fn emit_or_drop(&mut self, session: &dyn SessionApi, line: impl Into<String>) -> bool {
        self.emit(session, line).is_ok()
    }

    /// The delivered output lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of writes that were blocked by the gate.
    pub fn blocked_writes(&self) -> usize {
        self.blocked_writes
    }

    /// Total number of delivered lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb::prelude::*;

    #[test]
    fn gate_blocks_contaminated_output() {
        let db = Database::in_memory();
        let alice = db.create_principal("alice", PrincipalKind::User);
        let tag = db.create_tag(alice, "alice_secret", &[]).unwrap();

        let mut session = db.session(alice);
        let mut out = ResponseWriter::new();
        out.emit(&session, "public greeting").unwrap();

        session.add_secrecy(tag).unwrap();
        assert!(out.emit(&session, "secret detail").is_err());
        assert!(!out.emit_or_drop(&session, "secret detail"));

        session.declassify(tag).unwrap();
        out.emit(&session, "released detail").unwrap();

        assert_eq!(out.lines(), &["public greeting", "released detail"]);
        assert_eq!(out.blocked_writes(), 2);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
    }
}
