//! The simulated web/application server.
//!
//! The server hosts named request scripts (the `*.php` files of CarTel and
//! HotCRP). For every request it opens a database session — the per-process
//! label tracking of the platform — authenticates the user through the
//! trusted [`crate::auth::Authenticator`], charges a configurable
//! per-request CPU cost (so benchmarks can reproduce the web-server-bound
//! configuration of Figure 4, where the interpreted PHP-IF layer is the
//! bottleneck), runs the script, and returns whatever output made it through
//! the output gate.
//!
//! Scripts are written against `&mut dyn SessionApi`, so the server runs
//! them over either backend:
//!
//! * **in-process** ([`AppServer::new`]) — each request gets a fresh
//!   [`ifdb::Session`], the seed deployment;
//! * **networked** ([`AppServer::networked`]) — the server keeps a pool of
//!   `ifdb-client` connections to a real `ifdb-server` and re-authenticates
//!   one per request (the paper's architecture: the web server is a trusted
//!   platform process speaking the DBMS wire protocol).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::{Database, IfdbResult, SessionApi};
use ifdb_client::{ClientConfig, Connection};
use parking_lot::{Mutex, RwLock};

use crate::auth::Authenticator;
use crate::gate::ResponseWriter;

/// An incoming HTTP-like request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// The script to run, e.g. `"drives.php"`.
    pub script: String,
    /// Credentials, if the client is logging in or re-authenticating.
    pub credentials: Option<(String, String)>,
    /// The already-authenticated user, if any (models a session cookie).
    pub user: Option<String>,
    /// Query-string style parameters.
    pub params: HashMap<String, String>,
}

impl Request {
    /// Builds a request for `script` with no user and no parameters.
    pub fn new(script: &str) -> Self {
        Request {
            script: script.to_string(),
            ..Default::default()
        }
    }

    /// Sets the authenticated user (session cookie).
    pub fn as_user(mut self, user: &str) -> Self {
        self.user = Some(user.to_string());
        self
    }

    /// Adds a parameter.
    pub fn param(mut self, key: &str, value: &str) -> Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Supplies login credentials.
    pub fn with_credentials(mut self, user: &str, password: &str) -> Self {
        self.credentials = Some((user.to_string(), password.to_string()));
        self
    }
}

/// The outcome of handling a request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Output lines that made it through the gate.
    pub body: Vec<String>,
    /// Number of writes blocked by the output gate.
    pub blocked_writes: usize,
    /// An error message, if the script failed.
    pub error: Option<String>,
    /// Wall-clock time spent handling the request.
    pub elapsed: Duration,
}

impl Response {
    /// Returns `true` if the script ran without error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// A request script: the application code run for one request. Scripts are
/// untrusted: they receive a session already bound to the requesting
/// principal and can only emit output through the gate. The session is a
/// `dyn SessionApi`, so the same script body runs in-process or over the
/// wire protocol.
pub type Script =
    Arc<dyn Fn(&mut dyn SessionApi, &Request, &mut ResponseWriter) -> IfdbResult<()> + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated per-request CPU cost of the platform itself (parsing,
    /// templating, session handling). This is the knob that makes the
    /// web-server-bound configuration of Figure 4 possible.
    pub base_request_cost: Duration,
    /// Additional per-request cost when information flow tracking is enabled
    /// (the PHP-IF label bookkeeping, authority cache lookups and release
    /// checks that the paper measures at roughly +24% per request).
    pub ifc_request_cost: Duration,
    /// Whether the platform information-flow layer is enabled. Disabled for
    /// the "PostgreSQL + PHP" baseline.
    pub ifc_enabled: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            base_request_cost: Duration::from_micros(0),
            ifc_request_cost: Duration::from_micros(0),
            ifc_enabled: true,
        }
    }
}

/// How the application server reaches the database.
enum Backend {
    /// Open a fresh in-process [`ifdb::Session`] per request.
    InProcess,
    /// Speak the wire protocol to an `ifdb-server`, reusing pooled
    /// [`Connection`]s across requests (one login per request).
    Remote {
        /// The `ifdb-server` address.
        addr: String,
        /// The platform secret that lets pooled connections switch users on
        /// the session-cookie path without a password.
        platform_secret: String,
        /// Idle connections ready for the next request.
        pool: Mutex<Vec<Connection>>,
    },
}

/// The application server.
pub struct AppServer {
    db: Database,
    auth: Arc<Authenticator>,
    backend: Backend,
    scripts: RwLock<HashMap<String, Script>>,
    config: ServerConfig,
    requests_handled: AtomicU64,
    requests_failed: AtomicU64,
}

impl std::fmt::Debug for AppServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppServer")
            .field("scripts", &self.scripts.read().len())
            .field(
                "requests_handled",
                &self.requests_handled.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl AppServer {
    /// Creates a server for `db` with the given authenticator and config,
    /// running every request against an in-process session.
    pub fn new(db: Database, auth: Arc<Authenticator>, config: ServerConfig) -> Self {
        AppServer {
            db,
            auth,
            backend: Backend::InProcess,
            scripts: RwLock::new(HashMap::new()),
            config,
            requests_handled: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
        }
    }

    /// Creates a server that runs every request over the wire protocol
    /// against the `ifdb-server` at `addr`, authenticating pooled
    /// connections with `platform_secret` (which must match the
    /// `ifdb-server`'s configured secret). `db` is the same database the
    /// `ifdb-server` fronts; the handle is kept for script registration
    /// (views, stored procedures) and statistics — request execution goes
    /// through the network.
    pub fn networked(
        db: Database,
        auth: Arc<Authenticator>,
        config: ServerConfig,
        addr: &str,
        platform_secret: &str,
    ) -> Self {
        AppServer {
            db,
            auth,
            backend: Backend::Remote {
                addr: addr.to_string(),
                platform_secret: platform_secret.to_string(),
                pool: Mutex::new(Vec::new()),
            },
            scripts: RwLock::new(HashMap::new()),
            config,
            requests_handled: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
        }
    }

    /// Returns `true` if requests go over the wire protocol.
    pub fn is_networked(&self) -> bool {
        matches!(self.backend, Backend::Remote { .. })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The authenticator.
    pub fn authenticator(&self) -> &Authenticator {
        &self.auth
    }

    /// A shared handle to the authenticator — hand this to
    /// `ifdb_server::start` so the network service authenticates the same
    /// users the platform registered.
    pub fn auth_handle(&self) -> Arc<Authenticator> {
        self.auth.clone()
    }

    /// Registers a script under the given name.
    pub fn register_script(&self, name: &str, script: Script) {
        self.scripts.write().insert(name.to_string(), script);
    }

    /// Names of the registered scripts.
    pub fn script_names(&self) -> Vec<String> {
        self.scripts.read().keys().cloned().collect()
    }

    /// Total requests handled.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled.load(Ordering::Relaxed)
    }

    /// Requests whose script returned an error.
    pub fn requests_failed(&self) -> u64 {
        self.requests_failed.load(Ordering::Relaxed)
    }

    fn burn_cpu(&self, cost: Duration) {
        if cost.is_zero() {
            return;
        }
        let start = Instant::now();
        // Busy loop: the benchmark harnesses use this to model the
        // interpreted platform's CPU consumption; sleeping would not consume
        // a worker.
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }

    /// Handles one request end to end.
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        self.burn_cpu(self.config.base_request_cost);
        if self.config.ifc_enabled {
            self.burn_cpu(self.config.ifc_request_cost);
        }

        let (error, writer) = match &self.backend {
            Backend::InProcess => self.handle_in_process(request),
            Backend::Remote {
                addr,
                platform_secret,
                pool,
            } => self.handle_remote(request, addr, platform_secret, pool),
        };
        self.requests_handled.fetch_add(1, Ordering::Relaxed);
        if error.is_some() {
            self.requests_failed.fetch_add(1, Ordering::Relaxed);
        }
        Response {
            body: writer.lines().to_vec(),
            blocked_writes: writer.blocked_writes(),
            error,
            elapsed: start.elapsed(),
        }
    }

    fn handle_in_process(&self, request: &Request) -> (Option<String>, ResponseWriter) {
        // Resolve the acting principal through the trusted authenticator.
        let principal = request
            .credentials
            .as_ref()
            .and_then(|(u, p)| self.auth.authenticate(u, p))
            .or_else(|| {
                request
                    .user
                    .as_ref()
                    .and_then(|u| self.auth.principal_of(u))
            });
        let mut session = match principal {
            Some(p) => self.db.session(p),
            None => self.db.anonymous_session(),
        };
        let mut writer = ResponseWriter::new();
        let error = self.run_script(&mut session, request, &mut writer);
        (error.map(|e| e.to_string()), writer)
    }

    fn handle_remote(
        &self,
        request: &Request,
        addr: &str,
        platform_secret: &str,
        pool: &Mutex<Vec<Connection>>,
    ) -> (Option<String>, ResponseWriter) {
        let mut writer = ResponseWriter::new();
        // Reuse a pooled trusted connection or dial a new one.
        let conn = pool.lock().pop();
        let mut conn = match conn {
            Some(c) => c,
            None => {
                let config = ClientConfig::anonymous(addr).with_platform_secret(platform_secret);
                match Connection::connect(&config) {
                    Ok(c) => c,
                    Err(e) => return (Some(format!("db connect: {e}")), writer),
                }
            }
        };
        // Authenticate this request on the connection. Failed credentials
        // and unknown cookies degrade to the anonymous principal, exactly
        // like the in-process path.
        let login = match (&request.credentials, &request.user) {
            (Some((u, p)), _) => conn.login(u, p).or_else(|_| conn.login_as("")),
            (None, Some(u)) => conn.login_as(u).or_else(|_| conn.login_as("")),
            (None, None) => conn.login_as(""),
        };
        if let Err(e) = login {
            return (Some(format!("db login: {e}")), writer);
        }
        let error = self.run_script(&mut conn, request, &mut writer);
        // Return the connection to the pool unless the transport itself
        // broke (protocol-level failure: dead socket, corrupt frame).
        let transport_broken = matches!(
            &error,
            Some(ifdb::IfdbError::Remote { code, .. })
                if *code == ifdb_client::protocol::code::PROTOCOL as u16
        );
        if !transport_broken {
            if conn.in_transaction() {
                let _ = conn.abort();
            }
            pool.lock().push(conn);
        }
        (error.map(|e| e.to_string()), writer)
    }

    fn run_script(
        &self,
        session: &mut dyn SessionApi,
        request: &Request,
        writer: &mut ResponseWriter,
    ) -> Option<ifdb::IfdbError> {
        let script = self.scripts.read().get(&request.script).cloned();
        match script {
            None => Some(ifdb::IfdbError::InvalidStatement(format!(
                "no such script {:?}",
                request.script
            ))),
            Some(script) => script(session, request, writer).err(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb::prelude::*;

    fn demo_server() -> (Arc<AppServer>, TagId) {
        let db = Database::in_memory();
        let alice = db.create_principal("alice", PrincipalKind::User);
        let secret = db.create_tag(alice, "alice_secret", &[]).unwrap();
        db.create_table(
            TableDef::new("Notes")
                .column("owner", DataType::Text)
                .column("body", DataType::Text)
                .primary_key(&["owner"]),
        )
        .unwrap();
        let mut s = db.session(alice);
        s.add_secrecy(secret).unwrap();
        s.insert(&Insert::new(
            "Notes",
            vec![Datum::from("alice"), Datum::from("my diary")],
        ))
        .unwrap();

        let auth = Arc::new(Authenticator::new());
        auth.register("alice", "pw", alice);
        let server = Arc::new(AppServer::new(db, auth, ServerConfig::default()));

        // A script that reads the user's note and prints it after
        // declassifying (only the owner has the authority to do so).
        let tag = secret;
        server.register_script(
            "note.php",
            Arc::new(move |session, _req, out| {
                session.add_secrecy(tag)?;
                let rows = session.select(&Select::star("Notes"))?;
                session.declassify(tag)?;
                for r in rows.iter() {
                    out.emit(session, r.get_text("body").unwrap_or(""))?;
                }
                Ok(())
            }),
        );
        (server, secret)
    }

    #[test]
    fn authenticated_owner_sees_output() {
        let (server, _) = demo_server();
        let resp = server.handle(&Request::new("note.php").with_credentials("alice", "pw"));
        assert!(resp.is_ok());
        assert_eq!(resp.body, vec!["my diary".to_string()]);
        assert_eq!(server.requests_handled(), 1);
    }

    #[test]
    fn unauthenticated_request_produces_no_output() {
        let (server, _) = demo_server();
        // No credentials: the script runs as the anonymous principal, which
        // cannot declassify, so it fails before any output is emitted.
        let resp = server.handle(&Request::new("note.php"));
        assert!(resp.body.is_empty());
        assert!(!resp.is_ok());
        assert_eq!(server.requests_failed(), 1);
    }

    #[test]
    fn wrong_password_is_anonymous() {
        let (server, _) = demo_server();
        let resp = server.handle(&Request::new("note.php").with_credentials("alice", "nope"));
        assert!(resp.body.is_empty());
    }

    #[test]
    fn unknown_script_reports_error() {
        let (server, _) = demo_server();
        let resp = server.handle(&Request::new("missing.php"));
        assert!(!resp.is_ok());
    }
}
