//! The trusted authentication component.
//!
//! Authentication is part of the trusted base (Figure 1): it is the code that
//! decides which principal a request acts for. Everything downstream of it —
//! the request scripts themselves — is untrusted, which is exactly why the
//! missing-authentication bugs found in CarTel were harmless once the
//! application ran on the platform: an unauthenticated script acts as the
//! anonymous principal and can never declassify or release anything.

use std::collections::HashMap;

use ifdb_difc::PrincipalId;
use parking_lot::RwLock;

/// Maps external credentials to principals.
#[derive(Debug, Default)]
pub struct Authenticator {
    users: RwLock<HashMap<String, (String, PrincipalId)>>,
}

impl Authenticator {
    /// Creates an empty authenticator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user with a password and the principal it acts as.
    pub fn register(&self, username: &str, password: &str, principal: PrincipalId) {
        self.users
            .write()
            .insert(username.to_string(), (password.to_string(), principal));
    }

    /// Verifies credentials, returning the principal on success.
    pub fn authenticate(&self, username: &str, password: &str) -> Option<PrincipalId> {
        let users = self.users.read();
        match users.get(username) {
            Some((stored, principal)) if stored == password => Some(*principal),
            _ => None,
        }
    }

    /// Looks up a user's principal without checking a password (used by
    /// benchmark drivers that simulate already-authenticated sessions).
    pub fn principal_of(&self, username: &str) -> Option<PrincipalId> {
        self.users.read().get(username).map(|(_, p)| *p)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authenticates_only_with_correct_password() {
        let auth = Authenticator::new();
        auth.register("alice", "hunter2", PrincipalId(7));
        assert_eq!(auth.authenticate("alice", "hunter2"), Some(PrincipalId(7)));
        assert_eq!(auth.authenticate("alice", "wrong"), None);
        assert_eq!(auth.authenticate("bob", "hunter2"), None);
        assert_eq!(auth.principal_of("alice"), Some(PrincipalId(7)));
        assert_eq!(auth.user_count(), 1);
    }
}
