//! A TPC-W-style closed-loop client driver.
//!
//! Section 8.2.1 measures maximum sustained throughput using simulated
//! clients that log in as a random user, issue a random sequence of requests
//! drawn from the Figure 3 mix with truncated-negative-exponential think
//! times, and end their sessions, subject to a 90th-percentile response-time
//! limit. This module provides that driver, scaled down so a benchmark run
//! fits in seconds rather than the paper's two-hour trials.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::webserver::{AppServer, Request};

/// Latency statistics in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 90th percentile latency (the TPC-W response-time criterion).
    pub p90_us: f64,
    /// 99th percentile latency.
    pub p99_us: f64,
}

impl LatencyStats {
    /// Computes statistics from raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64
        };
        LatencyStats {
            count,
            mean_us: samples.iter().sum::<u64>() as f64 / count as f64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
        }
    }
}

/// A weighted request mix: (probability, request generator name).
pub type RequestMix = Vec<(f64, String)>;

/// Configuration of a closed-loop run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of concurrent simulated clients.
    pub clients: usize,
    /// How long to run.
    pub duration: Duration,
    /// Mean think time between requests (0 disables thinking). The actual
    /// delay is drawn from a truncated exponential distribution, as in
    /// TPC-W.
    pub mean_think_time: Duration,
    /// Maximum think time (the truncation point).
    pub max_think_time: Duration,
    /// The request mix (probabilities should sum to 1).
    pub mix: RequestMix,
    /// Users to impersonate (each client picks one at random per session).
    pub users: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

/// The result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Completed web interactions per second.
    pub throughput: f64,
    /// Total completed requests.
    pub completed: u64,
    /// Requests that returned an error.
    pub failed: u64,
    /// Latency statistics over all requests.
    pub latency: LatencyStats,
    /// Per-script latency statistics.
    pub per_script: Vec<(String, LatencyStats)>,
}

/// Builds a concrete request given (script, user, rng).
pub type RequestBuilderFn = Arc<dyn Fn(&str, &str, &mut StdRng) -> Request + Send + Sync>;

/// The closed-loop driver.
pub struct ClosedLoopDriver {
    server: Arc<AppServer>,
    /// Builds a concrete request given (script, user).
    request_builder: RequestBuilderFn,
}

impl ClosedLoopDriver {
    /// Creates a driver for `server` with a request builder that turns a
    /// (script, user) pair into a full request (choosing parameters, e.g.
    /// which friend's drives to view).
    pub fn new(
        server: Arc<AppServer>,
        request_builder: impl Fn(&str, &str, &mut StdRng) -> Request + Send + Sync + 'static,
    ) -> Self {
        ClosedLoopDriver {
            server,
            request_builder: Arc::new(request_builder),
        }
    }

    /// Runs the closed loop and reports throughput and latency.
    pub fn run(&self, config: &DriverConfig) -> DriverReport {
        let stop = Arc::new(AtomicBool::new(false));
        let samples: Arc<Mutex<Vec<(String, u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let started = Instant::now();

        std::thread::scope(|scope| {
            for client_id in 0..config.clients {
                let stop = stop.clone();
                let samples = samples.clone();
                let server = self.server.clone();
                let builder = self.request_builder.clone();
                let config = config.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(config.seed ^ (client_id as u64 * 7919));
                    let mut local: Vec<(String, u64, bool)> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let user = if config.users.is_empty() {
                            String::new()
                        } else {
                            config.users[rng.gen_range(0..config.users.len())].clone()
                        };
                        let script = pick_from_mix(&config.mix, &mut rng);
                        let request = builder(&script, &user, &mut rng);
                        let t0 = Instant::now();
                        let resp = server.handle(&request);
                        let us = t0.elapsed().as_micros() as u64;
                        local.push((script, us, resp.is_ok()));
                        let think = sample_think_time(
                            config.mean_think_time,
                            config.max_think_time,
                            &mut rng,
                        );
                        if !think.is_zero() {
                            std::thread::sleep(think);
                        }
                    }
                    samples.lock().extend(local);
                });
            }
            std::thread::sleep(config.duration);
            stop.store(true, Ordering::Relaxed);
        });

        let elapsed = started.elapsed();
        let samples = Arc::try_unwrap(samples)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        let completed = samples.len() as u64;
        let failed = samples.iter().filter(|(_, _, ok)| !ok).count() as u64;
        let latency = LatencyStats::from_samples(samples.iter().map(|(_, us, _)| *us).collect());
        let mut scripts: Vec<String> = samples.iter().map(|(s, _, _)| s.clone()).collect();
        scripts.sort();
        scripts.dedup();
        let per_script = scripts
            .into_iter()
            .map(|s| {
                let lat = LatencyStats::from_samples(
                    samples
                        .iter()
                        .filter(|(name, _, _)| name == &s)
                        .map(|(_, us, _)| *us)
                        .collect(),
                );
                (s, lat)
            })
            .collect();
        DriverReport {
            throughput: completed as f64 / elapsed.as_secs_f64(),
            completed,
            failed,
            latency,
            per_script,
        }
    }
}

/// Picks a script name from a weighted mix.
pub fn pick_from_mix(mix: &RequestMix, rng: &mut StdRng) -> String {
    let total: f64 = mix.iter().map(|(w, _)| *w).sum();
    let mut x: f64 = rng.gen::<f64>() * total;
    for (w, name) in mix {
        if x < *w {
            return name.clone();
        }
        x -= w;
    }
    mix.last().map(|(_, n)| n.clone()).unwrap_or_default()
}

/// Draws a think time from a truncated exponential distribution, as TPC-W
/// prescribes: most think times are near zero, a few approach the maximum.
pub fn sample_think_time(mean: Duration, max: Duration, rng: &mut StdRng) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let lambda = 1.0 / mean.as_secs_f64();
    let exp = rand::distributions::Uniform::new(0.0f64, 1.0);
    let u: f64 = exp.sample(rng).max(1e-12);
    let t = -u.ln() / lambda;
    Duration::from_secs_f64(t.min(max.as_secs_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::Authenticator;
    use crate::webserver::ServerConfig;
    use ifdb::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert!((stats.mean_us - 50.5).abs() < 1e-9);
        assert!(stats.p90_us >= 89.0 && stats.p90_us <= 91.0);
        assert!(stats.p99_us >= 98.0);
        assert_eq!(LatencyStats::from_samples(vec![]).count, 0);
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let mix: RequestMix = vec![(0.9, "a".into()), (0.1, "b".into())];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = HashMap::new();
        for _ in 0..1000 {
            *counts.entry(pick_from_mix(&mix, &mut rng)).or_insert(0) += 1;
        }
        assert!(counts["a"] > 800);
        assert!(counts["b"] > 20);
    }

    #[test]
    fn think_times_truncated() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let t = sample_think_time(
                Duration::from_millis(5),
                Duration::from_millis(20),
                &mut rng,
            );
            assert!(t <= Duration::from_millis(20));
        }
        assert_eq!(
            sample_think_time(Duration::ZERO, Duration::ZERO, &mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn closed_loop_run_produces_throughput() {
        let db = Database::in_memory();
        let auth = Arc::new(Authenticator::new());
        let server = Arc::new(AppServer::new(db, auth, ServerConfig::default()));
        server.register_script(
            "ping.php",
            Arc::new(|session, _req, out| {
                out.emit(session, "pong")?;
                Ok(())
            }),
        );
        let driver =
            ClosedLoopDriver::new(server.clone(), |script, _user, _rng| Request::new(script));
        let report = driver.run(&DriverConfig {
            clients: 2,
            duration: Duration::from_millis(200),
            mean_think_time: Duration::ZERO,
            max_think_time: Duration::ZERO,
            mix: vec![(1.0, "ping.php".into())],
            users: vec![],
            seed: 42,
        });
        assert!(report.completed > 10);
        assert_eq!(report.failed, 0);
        assert!(report.throughput > 10.0);
        assert_eq!(report.per_script.len(), 1);
    }
}
