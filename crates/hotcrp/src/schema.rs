//! The HotCRP database schema.

use ifdb::prelude::*;
use ifdb::{IfdbResult, TableDef};

/// Creates the HotCRP tables.
///
/// Labeling strategy (Section 6.2): `ContactInfo` tuples carry the owning
/// user's contact tag; `PaperReview` tuples carry a per-review tag;
/// `Decisions` tuples carry a per-paper decision tag; `Papers` metadata
/// (title, author link) is public in this deployment.
pub fn create_schema(db: &Database) -> IfdbResult<()> {
    db.create_table(
        TableDef::new("ContactInfo")
            .column("contactId", DataType::Int)
            .column("firstName", DataType::Text)
            .column("lastName", DataType::Text)
            .column("email", DataType::Text)
            .column("affiliation", DataType::Text)
            .column("isPCMember", DataType::Bool)
            .primary_key(&["contactId"]),
    )?;
    db.create_table(
        TableDef::new("Papers")
            .column("paperId", DataType::Int)
            .column("title", DataType::Text)
            .column("authorContactId", DataType::Int)
            .primary_key(&["paperId"]),
    )?;
    db.create_table(
        TableDef::new("PaperReview")
            .column("reviewId", DataType::Int)
            .column("paperId", DataType::Int)
            .column("reviewerContactId", DataType::Int)
            .column("score", DataType::Int)
            .column("comments", DataType::Text)
            .primary_key(&["reviewId"]),
    )?;
    db.create_table(
        TableDef::new("Decisions")
            .column("paperId", DataType::Int)
            .column("outcome", DataType::Text)
            .primary_key(&["paperId"]),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_tables() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let mut names = db.engine().table_names();
        names.sort();
        assert_eq!(
            names,
            vec!["ContactInfo", "Decisions", "PaperReview", "Papers"]
        );
    }
}
