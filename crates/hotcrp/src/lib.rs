//! HotCRP: the conference-management case study (Section 6.2).
//!
//! Authors submit papers, reviewers enter evaluations, and the program
//! committee records acceptance decisions. The IFDB port protects contact
//! information, reviews and decisions with tags:
//!
//! * each user's `ContactInfo` tuple carries `<user>_contact`, a member of
//!   the `all_contacts` compound tag;
//! * the `PCMembers` declassifying view (authority: the chair, who owns
//!   `all_contacts`) distills the public list of PC members from the
//!   sensitive table;
//! * each acceptance decision carries a per-paper tag owned by the chair and
//!   is released by delegating that tag to the authors when results go out;
//! * each review carries a per-review tag that only the review author and the
//!   chair control; a chair closure later delegates it to non-conflicted PC
//!   members.

pub mod policy;
pub mod schema;
pub mod scripts;

use std::sync::Arc;
use std::time::Duration;

use ifdb::{Database, DatabaseConfig};
use ifdb_platform::{AppServer, Authenticator, ServerConfig};

pub use policy::{HotcrpPolicy, PaperHandle, PersonHandle};

/// Configuration for building a HotCRP deployment.
#[derive(Debug, Clone)]
pub struct HotcrpConfig {
    /// Number of registered users (the first `pc_members` of them are on the
    /// program committee; user 0 is the chair).
    pub users: usize,
    /// Number of PC members.
    pub pc_members: usize,
    /// Number of submitted papers.
    pub papers: usize,
    /// Whether DIFC is enabled.
    pub difc: bool,
    /// RNG / authority seed.
    pub seed: u64,
}

impl Default for HotcrpConfig {
    fn default() -> Self {
        HotcrpConfig {
            users: 8,
            pc_members: 3,
            papers: 4,
            difc: true,
            seed: 0xC0FFEE,
        }
    }
}

/// A complete HotCRP deployment.
pub struct HotcrpApp {
    /// The database.
    pub db: Database,
    /// Principals, tags and delegations.
    pub policy: Arc<HotcrpPolicy>,
    /// The web application server.
    pub server: Arc<AppServer>,
}

impl HotcrpApp {
    /// Builds a deployment with synthetic users, papers and reviews.
    pub fn build(config: &HotcrpConfig) -> Self {
        let db = Database::new(
            DatabaseConfig::in_memory()
                .with_difc(config.difc)
                .with_seed(config.seed),
        );
        schema::create_schema(&db).expect("schema");
        let policy = Arc::new(HotcrpPolicy::bootstrap(&db, config));
        let auth = Arc::new(Authenticator::new());
        for person in policy.people() {
            auth.register(&person.username, &person.password, person.principal);
        }
        let server = Arc::new(AppServer::new(
            db.clone(),
            auth,
            ServerConfig {
                base_request_cost: Duration::ZERO,
                ifc_request_cost: Duration::ZERO,
                ifc_enabled: config.difc,
            },
        ));
        scripts::register_scripts(&server, policy.clone());
        HotcrpApp { db, policy, server }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb_platform::Request;

    fn app() -> HotcrpApp {
        HotcrpApp::build(&HotcrpConfig::default())
    }

    #[test]
    fn pc_member_list_is_public_via_declassifying_view() {
        let app = app();
        // Even an unauthenticated client may see who is on the PC.
        let resp = app.server.handle(&Request::new("pc_members.php"));
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        assert_eq!(resp.body.len(), 3, "three PC members are listed");
    }

    #[test]
    fn contact_info_leak_is_blocked() {
        // The historical bug: a script that dumped full contact information
        // for every registered user. Under IFDB the script contaminates
        // itself with tags it cannot declassify and produces nothing.
        let app = app();
        let outsider = &app.policy.people()[5];
        let resp = app
            .server
            .handle(&Request::new("users.php").as_user(&outsider.username));
        assert!(
            resp.body.is_empty(),
            "full contact info must never be released"
        );
    }

    #[test]
    fn decisions_hidden_until_released_even_via_search() {
        let app = app();
        let paper = &app.policy.papers()[0];
        let author = app.policy.person(paper.author).unwrap();
        // The chair has recorded a decision, but results are not released:
        // the author's search/status pages show no decision tuples at all
        // (the premature-visibility bugs of Section 6.2).
        for script in ["paper_status.php", "search.php"] {
            let resp = app.server.handle(
                &Request::new(script)
                    .as_user(&author.username)
                    .param("paper", &paper.paperid.to_string())
                    .param("q", "accept"),
            );
            assert!(
                !resp
                    .body
                    .iter()
                    .any(|l| l.contains("accept") || l.contains("reject")),
                "{script} leaked a decision: {:?}",
                resp.body
            );
        }
        // After the chair releases decisions, the author sees the outcome.
        app.policy.release_decisions(&app.db).unwrap();
        let resp = app.server.handle(
            &Request::new("paper_status.php")
                .as_user(&author.username)
                .param("paper", &paper.paperid.to_string()),
        );
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        assert!(resp
            .body
            .iter()
            .any(|l| l.contains("accept") || l.contains("reject")));
    }

    #[test]
    fn reviews_visible_only_to_chair_and_review_author_before_delegation() {
        let app = app();
        let paper = &app.policy.papers()[0];
        let reviewer = app.policy.person(paper.reviewer).unwrap();
        let chair = &app.policy.people()[0];
        let other_pc = &app.policy.people()[2];

        // The review author and the chair can read the review.
        for user in [reviewer, chair] {
            let resp = app.server.handle(
                &Request::new("review.php")
                    .as_user(&user.username)
                    .param("paper", &paper.paperid.to_string()),
            );
            assert!(
                !resp.body.is_empty(),
                "{} should see the review",
                user.username
            );
        }
        // Another PC member cannot, until the chair's closure delegates the
        // review tag to eligible members.
        let resp = app.server.handle(
            &Request::new("review.php")
                .as_user(&other_pc.username)
                .param("paper", &paper.paperid.to_string()),
        );
        assert!(resp.body.is_empty());

        app.policy
            .delegate_reviews_to_pc(&app.db, paper.paperid)
            .unwrap();
        let resp = app.server.handle(
            &Request::new("review.php")
                .as_user(&other_pc.username)
                .param("paper", &paper.paperid.to_string()),
        );
        assert!(!resp.body.is_empty());
    }

    #[test]
    fn trusted_base_is_small() {
        let app = app();
        // Exactly the declassifying view plus the authority-bearing closures
        // count as trusted catalog objects.
        assert!(app.db.trusted_component_count() >= 1);
        assert!(app.db.trusted_component_count() <= 5);
    }
}
