//! The HotCRP confidentiality policy: principals, tags, views and
//! delegations.

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb::{Database, IfdbResult, ViewSource};

use crate::HotcrpConfig;

/// A registered user (author, reviewer or chair).
#[derive(Debug, Clone)]
pub struct PersonHandle {
    /// The contactId in the ContactInfo table.
    pub id: i64,
    /// Login name.
    pub username: String,
    /// Password registered with the authenticator.
    pub password: String,
    /// The principal requests act as.
    pub principal: PrincipalId,
    /// Tag protecting the person's ContactInfo tuple.
    pub contact_tag: TagId,
    /// Whether the person is on the program committee.
    pub is_pc: bool,
}

/// A submitted paper, its review, and its protected decision.
#[derive(Debug, Clone)]
pub struct PaperHandle {
    /// Paper id.
    pub paperid: i64,
    /// Title.
    pub title: String,
    /// contactId of the author.
    pub author: i64,
    /// contactId of the assigned reviewer (a PC member).
    pub reviewer: i64,
    /// Tag protecting the acceptance decision (owned by the chair).
    pub decision_tag: TagId,
    /// Tag protecting the review (owned by the reviewer, delegated to the
    /// chair).
    pub review_tag: TagId,
}

/// The instantiated authority schema plus loaded sample data.
pub struct HotcrpPolicy {
    people: Vec<PersonHandle>,
    papers: Vec<PaperHandle>,
    /// The chair's principal (person 0).
    pub chair: PrincipalId,
    /// Compound tag over every contact tag, owned by the chair.
    pub all_contacts: TagId,
}

impl std::fmt::Debug for HotcrpPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotcrpPolicy")
            .field("people", &self.people.len())
            .field("papers", &self.papers.len())
            .finish()
    }
}

impl HotcrpPolicy {
    /// Creates principals, tags, the PCMembers declassifying view, and loads
    /// contact info, papers, reviews and (unreleased) decisions.
    pub fn bootstrap(db: &Database, config: &HotcrpConfig) -> Self {
        assert!(config.pc_members >= 1 && config.users > config.pc_members);
        let mut people = Vec::new();

        // Person 0 is the chair and owns the all_contacts compound.
        let chair_principal = db.create_principal("chair", PrincipalKind::Role);
        let all_contacts = db
            .create_compound_tag(chair_principal, "all_contacts", &[])
            .expect("compound");

        for i in 0..config.users {
            let username = if i == 0 {
                "chair".to_string()
            } else {
                format!("person{i}")
            };
            let principal = if i == 0 {
                chair_principal
            } else {
                db.create_principal(&username, PrincipalKind::User)
            };
            let contact_tag = db
                .create_tag(principal, &format!("{username}_contact"), &[all_contacts])
                .expect("contact tag");
            people.push(PersonHandle {
                id: i as i64 + 1,
                username: username.clone(),
                password: format!("pw-{username}"),
                principal,
                contact_tag,
                is_pc: i < config.pc_members,
            });
        }

        // The PCMembers declassifying view: the chair owns all_contacts and
        // binds that authority into the view (Section 4.3).
        db.create_declassifying_view(
            chair_principal,
            "PCMembers",
            ViewSource::Select(
                Select::star("ContactInfo")
                    .filter(Predicate::Eq("isPCMember".into(), Datum::Bool(true)))
                    .project(&["firstName", "lastName"]),
            ),
            Label::singleton(all_contacts),
        )
        .expect("PCMembers view");

        // Load contact info: each person writes their own row under their
        // contact tag.
        for person in &people {
            let mut s = db.session(person.principal);
            s.add_secrecy(person.contact_tag)
                .expect("raise contact tag");
            s.insert(&Insert::new(
                "ContactInfo",
                vec![
                    Datum::Int(person.id),
                    Datum::Text(format!("First{}", person.id)),
                    Datum::Text(format!("Last{}", person.id)),
                    Datum::Text(format!("{}@example.org", person.username)),
                    Datum::from("Example University"),
                    Datum::Bool(person.is_pc),
                ],
            ))
            .expect("contact insert");
        }

        // Papers, reviews and decisions.
        let mut papers = Vec::new();
        let authors: Vec<&PersonHandle> = people.iter().filter(|p| !p.is_pc).collect();
        let reviewers: Vec<&PersonHandle> = people.iter().filter(|p| p.is_pc).collect();
        for i in 0..config.papers {
            let paperid = i as i64 + 1;
            let author = authors[i % authors.len()];
            let reviewer = reviewers[1 % reviewers.len().max(1)];
            let title = format!("Paper {paperid}: Information Flow for Fun and Profit");

            // Paper metadata is public; the chair records it.
            let mut chair_session = db.session(chair_principal);
            chair_session
                .insert(&Insert::new(
                    "Papers",
                    vec![
                        Datum::Int(paperid),
                        Datum::Text(title.clone()),
                        Datum::Int(author.id),
                    ],
                ))
                .expect("paper insert");

            // The decision tag is owned by the chair; the decision is entered
            // but not yet released.
            let decision_tag = db
                .create_tag(chair_principal, &format!("paper{paperid}_decision"), &[])
                .expect("decision tag");
            chair_session
                .add_secrecy(decision_tag)
                .expect("raise decision");
            chair_session
                .insert(&Insert::new(
                    "Decisions",
                    vec![
                        Datum::Int(paperid),
                        Datum::from(if paperid % 2 == 0 { "reject" } else { "accept" }),
                    ],
                ))
                .expect("decision insert");

            // The review tag is owned by the reviewer, who delegates it to
            // the chair ("only the review author and the chair are
            // authoritative for it").
            let review_tag = db
                .create_tag(reviewer.principal, &format!("paper{paperid}_review"), &[])
                .expect("review tag");
            let mut reviewer_session = db.session(reviewer.principal);
            reviewer_session
                .delegate(chair_principal, review_tag)
                .expect("delegate review tag to chair");
            reviewer_session
                .add_secrecy(review_tag)
                .expect("raise review tag");
            reviewer_session
                .insert(&Insert::new(
                    "PaperReview",
                    vec![
                        Datum::Int(paperid * 10),
                        Datum::Int(paperid),
                        Datum::Int(reviewer.id),
                        Datum::Int((paperid % 5) + 1),
                        Datum::Text(format!("Review of paper {paperid}")),
                    ],
                ))
                .expect("review insert");

            papers.push(PaperHandle {
                paperid,
                title,
                author: author.id,
                reviewer: reviewer.id,
                decision_tag,
                review_tag,
            });
        }

        HotcrpPolicy {
            people,
            papers,
            chair: chair_principal,
            all_contacts,
        }
    }

    /// Every registered person.
    pub fn people(&self) -> &[PersonHandle] {
        &self.people
    }

    /// Looks up a person by contactId.
    pub fn person(&self, id: i64) -> Option<&PersonHandle> {
        self.people.iter().find(|p| p.id == id)
    }

    /// Looks up a person by username.
    pub fn person_by_name(&self, username: &str) -> Option<&PersonHandle> {
        self.people.iter().find(|p| p.username == username)
    }

    /// Every submitted paper.
    pub fn papers(&self) -> &[PaperHandle] {
        &self.papers
    }

    /// Looks up a paper by id.
    pub fn paper(&self, paperid: i64) -> Option<&PaperHandle> {
        self.papers.iter().find(|p| p.paperid == paperid)
    }

    /// Releases decisions: the chair delegates each paper's decision tag to
    /// its author, so the author's status page can declassify the outcome.
    pub fn release_decisions(&self, db: &Database) -> IfdbResult<()> {
        let mut chair_session = db.session(self.chair);
        for paper in &self.papers {
            if let Some(author) = self.person(paper.author) {
                chair_session.delegate(author.principal, paper.decision_tag)?;
            }
        }
        Ok(())
    }

    /// The chair's authority closure that delegates a paper's review tag to
    /// every non-conflicted PC member (Section 6.2).
    pub fn delegate_reviews_to_pc(&self, db: &Database, paperid: i64) -> IfdbResult<()> {
        let Some(paper) = self.paper(paperid) else {
            return Ok(());
        };
        let mut chair_session = db.session(self.chair);
        for pc in self.people.iter().filter(|p| p.is_pc) {
            // Conflict of interest: the paper's author never receives the tag.
            if pc.id == paper.author {
                continue;
            }
            chair_session.delegate(pc.principal, paper.review_tag)?;
        }
        Ok(())
    }
}

/// Convenience alias used by scripts.
pub type SharedPolicy = Arc<HotcrpPolicy>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_schema;

    #[test]
    fn bootstrap_builds_policy_and_data() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let policy = HotcrpPolicy::bootstrap(
            &db,
            &HotcrpConfig {
                users: 6,
                pc_members: 2,
                papers: 3,
                difc: true,
                seed: 1,
            },
        );
        assert_eq!(policy.people().len(), 6);
        assert_eq!(policy.papers().len(), 3);
        let chair = &policy.people()[0];
        assert!(chair.is_pc);
        // The chair holds authority over every contact tag via the compound,
        // and over decisions; reviewers hold their review tags.
        let someone = &policy.people()[4];
        assert!(db.has_authority(policy.chair, someone.contact_tag));
        let paper = &policy.papers()[0];
        assert!(db.has_authority(policy.chair, paper.decision_tag));
        assert!(db.has_authority(policy.chair, paper.review_tag));
        let author = policy.person(paper.author).unwrap();
        assert!(!db.has_authority(author.principal, paper.decision_tag));
        policy.release_decisions(&db).unwrap();
        assert!(db.has_authority(author.principal, paper.decision_tag));
    }
}
