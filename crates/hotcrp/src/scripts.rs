//! The HotCRP web scripts.
//!
//! The original application enforced visibility with hundreds of conditionals
//! in PHP; the IFDB port relies on Query by Label to keep tuples the user may
//! not see out of query results entirely, and on explicit declassification
//! (backed by delegation) for the places where sensitive data is legitimately
//! released.

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb::IfdbError;
use ifdb_platform::AppServer;

use crate::policy::HotcrpPolicy;

fn requesting_person<'a>(
    policy: &'a HotcrpPolicy,
    session: &dyn ifdb::SessionApi,
) -> Option<&'a crate::policy::PersonHandle> {
    let principal = session.principal();
    policy.people().iter().find(|p| p.principal == principal)
}

/// Registers the HotCRP scripts on the server.
pub fn register_scripts(server: &Arc<AppServer>, policy: Arc<HotcrpPolicy>) {
    // pc_members.php — backed by the PCMembers declassifying view.
    server.register_script(
        "pc_members.php",
        Arc::new(move |session, _request, out| {
            let rows = session.select(&Select::star("PCMembers"))?;
            for r in rows.iter() {
                out.emit(
                    session,
                    format!(
                        "{} {}",
                        r.get_text("firstName").unwrap_or(""),
                        r.get_text("lastName").unwrap_or("")
                    ),
                )?;
            }
            Ok(())
        }),
    );

    // users.php — the historical leak: dump full contact information for
    // every registered user. The script deliberately raises its label to read
    // everything (as the PHP code effectively could), and is then unable to
    // release any of it.
    let p = policy.clone();
    server.register_script(
        "users.php",
        Arc::new(move |session, _request, out| {
            let every_contact = Label::from_tags(p.people().iter().map(|u| u.contact_tag));
            session.raise_label(&every_contact)?;
            let rows = session.select(&Select::star("ContactInfo"))?;
            for r in rows.iter() {
                // Blocked by the output gate: the process cannot declassify
                // the other users' contact tags.
                out.emit(
                    session,
                    format!(
                        "{} <{}>",
                        r.get_text("lastName").unwrap_or(""),
                        r.get_text("email").unwrap_or("")
                    ),
                )?;
            }
            Ok(())
        }),
    );

    // paper_status.php — the author's status page. The decision is shown only
    // if the chair has delegated the paper's decision tag (i.e. results were
    // released).
    let p = policy.clone();
    server.register_script(
        "paper_status.php",
        Arc::new(move |session, request, out| {
            let paperid: i64 = request
                .params
                .get("paper")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let Some(paper) = p.paper(paperid) else {
                return Err(IfdbError::InvalidStatement("no such paper".into()));
            };
            let papers = session.select(
                &Select::star("Papers")
                    .filter(Predicate::Eq("paperId".into(), Datum::Int(paperid))),
            )?;
            if let Some(row) = papers.first() {
                out.emit(
                    session,
                    format!("title: {}", row.get_text("title").unwrap_or("")),
                )?;
            }
            session.add_secrecy(paper.decision_tag)?;
            let decision = session.select(
                &Select::star("Decisions")
                    .filter(Predicate::Eq("paperId".into(), Datum::Int(paperid))),
            )?;
            // Releasing the decision requires authority for the decision tag,
            // which authors receive only when results are released.
            session.declassify(paper.decision_tag)?;
            for d in decision.iter() {
                out.emit(
                    session,
                    format!("decision: {}", d.get_text("outcome").unwrap_or("")),
                )?;
            }
            Ok(())
        }),
    );

    // search.php — the "sort papers by status" / search abuse: the query
    // over Decisions simply returns nothing for users who may not see them.
    server.register_script(
        "search.php",
        Arc::new(move |session, request, out| {
            let q = request.params.get("q").cloned().unwrap_or_default();
            let hits = session.select(
                &Select::star("Decisions")
                    .filter(Predicate::Eq("outcome".into(), Datum::Text(q.clone()))),
            )?;
            for h in hits.iter() {
                out.emit(
                    session,
                    format!("paper {} is {}", h.get_int("paperId").unwrap_or(0), q),
                )?;
            }
            out.emit(session, format!("{} results", hits.len()))?;
            Ok(())
        }),
    );

    // review.php — show the review for a paper. Works for the review author,
    // the chair, and PC members the chair has delegated to.
    let p = policy.clone();
    server.register_script(
        "review.php",
        Arc::new(move |session, request, out| {
            if requesting_person(&p, session).is_none() {
                return Err(IfdbError::InvalidStatement(
                    "authentication required".into(),
                ));
            }
            let paperid: i64 = request
                .params
                .get("paper")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let Some(paper) = p.paper(paperid) else {
                return Err(IfdbError::InvalidStatement("no such paper".into()));
            };
            session.add_secrecy(paper.review_tag)?;
            let reviews = session.select(
                &Select::star("PaperReview")
                    .filter(Predicate::Eq("paperId".into(), Datum::Int(paperid))),
            )?;
            session.declassify(paper.review_tag)?;
            for r in reviews.iter() {
                out.emit(
                    session,
                    format!(
                        "score {}: {}",
                        r.get_int("score").unwrap_or(0),
                        r.get_text("comments").unwrap_or("")
                    ),
                )?;
            }
            Ok(())
        }),
    );
}

#[cfg(test)]
mod tests {

    use crate::{HotcrpApp, HotcrpConfig};
    use ifdb_platform::Request as Req;

    #[test]
    fn search_counts_only_visible_decisions() {
        let app = HotcrpApp::build(&HotcrpConfig::default());
        let chair = &app.policy.people()[0];
        // Even the chair, acting through the web script without raising
        // decision tags, sees no decision rows — Query by Label hides them
        // unless the script explicitly raises and declassifies.
        let resp = app.server.handle(
            &Req::new("search.php")
                .as_user(&chair.username)
                .param("q", "accept"),
        );
        assert!(resp.is_ok());
        assert!(resp.body.iter().any(|l| l.contains("0 results")));
    }
}
