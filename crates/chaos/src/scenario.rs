//! The end-to-end kill/failover scenario: one reusable harness under the
//! property test, the scripted CI scenario, and the failover benchmark.
//!
//! Topology (the floating-VIP model):
//!
//! ```text
//!   terminals ──► FaultProxy ──► child primary (separate process, SIGABRT-able)
//!                     │                ▲ semi-sync replication
//!                     │                │
//!                     └──retarget──► replica (in-parent)
//!                                      ▲
//!                        watchdog ─────┘ (promote on primary death)
//! ```
//!
//! Clients dial the proxy; the fault schedule tortures that link and — for
//! [`Fault::KillPrimary`] — aborts the primary process. A watchdog probing
//! the primary *directly* (health checks do not ride the client VIP)
//! promotes the replica after consecutive failed probes and retargets the
//! proxy, exactly like a failover manager moving a floating IP. The replica
//! replicates from the primary directly, so client-link faults never stall
//! the semi-sync acknowledgement gate.
//!
//! Afterwards the [`crate::CommitJournal`] is verified against every surviving
//! node; all orchestration problems (watchdog never fired, promotion never
//! completed, a survivor unreachable) are reported as violations too, so
//! callers — including the shrinker — only ever look at one list.

use std::sync::Arc;
use std::time::Duration;

use ifdb_client::protocol::HaRole;
use ifdb_client::{ClientConfig, Connection};

use crate::child::ChildPrimary;
use crate::cluster::{start_replica_node_with_authority, tpcc_client, tpcc_config, Watchdog, SEED};
use crate::journal::read_journal_ids;
use crate::load::{run_chaos_load, ChaosLoadConfig, ChaosLoadOutcome};
use crate::proxy::FaultProxy;
use crate::schedule::{Fault, FaultSchedule};

/// Tuning for one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Total load wall-clock; should exceed the schedule's last event by a
    /// couple of seconds so post-failover progress is observable.
    pub load_duration: Duration,
    /// Concurrent terminals.
    pub terminals: usize,
    /// The child primary's semi-sync window (this is what makes "acked ⇒
    /// survives the kill" true — see [`crate::journal`]).
    pub sync_window: Duration,
    /// Router failover bound for the terminals.
    pub failover_timeout: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            load_duration: Duration::from_millis(4500),
            terminals: 2,
            sync_window: Duration::from_millis(400),
            failover_timeout: Duration::from_secs(5),
        }
    }
}

/// What one scenario run produced.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The load generator's tallies and journal.
    pub outcome: ChaosLoadOutcome,
    /// Every violated invariant, orchestration failures included; an empty
    /// list is a pass.
    pub violations: Vec<String>,
    /// Whether the watchdog's down action fired.
    pub watchdog_fired: bool,
    /// The nodes the journal was verified against.
    pub survivor_addrs: Vec<String>,
}

/// Runs `schedule` against a fresh child-primary cluster and verifies the
/// commit journal against the survivors. See the module docs for topology.
pub fn run_kill_failover_scenario(
    schedule: &FaultSchedule,
    config: &ScenarioConfig,
) -> std::io::Result<ScenarioReport> {
    let has_kill = schedule
        .events
        .iter()
        .any(|e| e.fault == Fault::KillPrimary);

    let child = Arc::new(ChildPrimary::spawn(SEED, Some(config.sync_window))?);
    let proxy = Arc::new(FaultProxy::start(child.addr())?);
    let (replica, authority) = start_replica_node_with_authority(child.addr(), SEED);
    let replica = Arc::new(replica);
    let replica_addr = replica.addr().to_string();

    let watchdog = {
        let proxy = proxy.clone();
        let replica = replica.clone();
        let vip_target = replica_addr.clone();
        Watchdog::spawn(
            child.addr().to_string(),
            Duration::from_millis(100),
            2,
            move || {
                if replica.promote().is_ok() {
                    proxy.retarget(&vip_target);
                }
            },
        )
    };

    let load_config = ChaosLoadConfig {
        primary_addr: proxy.addr().to_string(),
        replica_addrs: vec![replica_addr.clone()],
        terminals: config.terminals,
        duration: config.load_duration,
        seed: schedule.seed,
        tpcc: tpcc_config(SEED),
        tpcc_label: authority.tpcc_label.clone(),
        alice_tag: authority.alice_tag,
        failover_timeout: config.failover_timeout,
    };

    let outcome = std::thread::scope(|scope| {
        let kill_child = child.clone();
        let schedule_proxy = proxy.clone();
        scope.spawn(move || schedule.execute(&schedule_proxy, || kill_child.kill_abrt()));
        run_chaos_load(&load_config)
    });

    let mut violations = Vec::new();
    let mut survivor_addrs = Vec::new();
    if has_kill {
        // The primary is dead; the only survivor is the promoted replica.
        if !watchdog.wait_fired(Duration::from_secs(10)) {
            violations.push("watchdog never detected the primary's death".into());
        } else {
            // The watchdog's single promote() attempt can time out when the
            // host is CPU-oversubscribed (the apply loop gets starved past
            // the promotion rendezvous deadline). Promotion is idempotent,
            // so retry it here — and retarget the proxy, which the watchdog
            // only does when its own attempt succeeded.
            if replica.promote().is_ok() {
                proxy.retarget(&replica_addr);
            }
            if !wait_role(&replica_addr, HaRole::Primary, Duration::from_secs(10)) {
                violations.push("promotion never completed on the surviving replica".into());
            }
        }
        survivor_addrs.push(replica_addr.clone());
    } else {
        // Both nodes survived; let the replica drain the tail of the
        // stream, then hold both to the journal.
        match primary_seq(child.addr()) {
            Some(seq) if replica.wait_for_seq(seq, Duration::from_secs(10)) => {}
            Some(_) => violations.push("replica never caught up to the primary".into()),
            None => violations.push("surviving primary is unreachable".into()),
        }
        survivor_addrs.push(child.addr().to_string());
        survivor_addrs.push(replica_addr.clone());
    }

    for addr in &survivor_addrs {
        verify_node(addr, &authority, &outcome, &mut violations);
    }

    watchdog.stop();
    proxy.shutdown();
    if let Ok(replica) = Arc::try_unwrap(replica) {
        replica.shutdown();
    }
    Ok(ScenarioReport {
        outcome,
        violations,
        watchdog_fired: watchdog.fired(),
        survivor_addrs,
    })
}

/// Adapter for [`crate::schedule::check_with_shrinking`]: a run passes iff
/// its violation list is empty; infrastructure errors count as violations.
pub fn scenario_passes(
    schedule: &FaultSchedule,
    config: &ScenarioConfig,
) -> Result<(), Vec<String>> {
    match run_kill_failover_scenario(schedule, config) {
        Ok(report) if report.violations.is_empty() => Ok(()),
        Ok(report) => Err(report.violations),
        Err(e) => Err(vec![format!("scenario infrastructure failed: {e}")]),
    }
}

/// Reads one journal snapshot from `addr` under both labels and checks the
/// journal invariants against it.
fn verify_node(
    addr: &str,
    authority: &crate::cluster::ClusterAuthority,
    outcome: &ChaosLoadOutcome,
    violations: &mut Vec<String>,
) {
    let mut labeled_tags = authority.tpcc_label.clone();
    labeled_tags.push(authority.alice_tag);
    let all = read_ids_with_label(addr, &labeled_tags);
    let public = read_ids_with_label(addr, &authority.tpcc_label);
    match (all, public) {
        (Some(all), Some(public)) => {
            for violation in outcome.journal.verify_against(&all, &public) {
                violations.push(format!("[{addr}] {violation}"));
            }
        }
        _ => violations.push(format!("[{addr}] survivor refused verification reads")),
    }
}

fn read_ids_with_label(addr: &str, label: &[ifdb::prelude::TagId]) -> Option<Vec<i64>> {
    let mut conn = Connection::connect(&tpcc_client(addr, label)).ok()?;
    let ids = read_journal_ids(&mut conn).ok();
    let _ = conn.close();
    ids
}

/// Polls `addr` until its `HaStatus` role is `want`; `false` on timeout.
fn wait_role(addr: &str, want: HaRole, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if let Ok(mut conn) = Connection::connect(&ClientConfig::anonymous(addr)) {
            let role = conn.ha_status().map(|s| s.role);
            let _ = conn.close();
            if role == Ok(want) {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// The primary's current WAL sequence via `HaStatus`; `None` if down.
fn primary_seq(addr: &str) -> Option<u64> {
    let mut conn = Connection::connect(&ClientConfig::anonymous(addr)).ok()?;
    let seq = conn.ha_status().ok().map(|s| s.seq);
    let _ = conn.close();
    seq
}
