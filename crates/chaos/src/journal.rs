//! The invariant checker: a client-side journal of attempted writes and
//! the rules the surviving cluster is held to afterwards.
//!
//! Every marker write the load generator attempts is journaled with how the
//! cluster answered:
//!
//! * [`Ack::Acked`] — the cluster acknowledged the commit. **The row must
//!   exist on the post-failover primary.** With semi-synchronous
//!   replication the ack implies a replica had applied the write, so not
//!   even a `SIGABRT` of the primary may lose it.
//! * [`Ack::RefusedDeterminate`] — the cluster refused with an error that
//!   guarantees the write did not happen (fenced refusal, conflict abort,
//!   read-only replica…). **The row must not exist anywhere** — an un-acked
//!   effect that resurrects after failover is as much a lie as a lost ack.
//! * [`Ack::Indeterminate`] — the outcome is unknowable from the client:
//!   the transport died with the request in flight, or the commit was
//!   locally durable but unconfirmed by a replica within the semi-sync
//!   window ([`ifdb_client::is_indeterminate_commit_error`]). The row may
//!   exist or not; either is correct.
//!
//! Independently of existence, **label faithfulness** is checked on every
//! node: rows written under `alice`'s secrecy tag must be invisible to a
//! session that does not carry the tag, promotion or no promotion.

use std::collections::HashSet;
use std::sync::Mutex;

use ifdb::prelude::*;
use ifdb::{IfdbError, IfdbResult};
use ifdb_client::Connection;

/// How the cluster answered one journaled write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ack {
    /// Acknowledged: must survive.
    Acked,
    /// Determinately refused: must not exist.
    RefusedDeterminate,
    /// Unknown outcome: either is correct.
    Indeterminate,
}

/// One journaled write attempt.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The `chaos_journal.id` primary key the write carried.
    pub id: i64,
    /// Whether the row was written under alice's secrecy tag.
    pub labeled: bool,
    /// The acknowledgement outcome.
    pub ack: Ack,
    /// Human-readable detail (the error, for non-acked entries).
    pub detail: String,
}

/// The shared journal; terminals record into it concurrently.
#[derive(Debug, Default)]
pub struct CommitJournal {
    entries: Mutex<Vec<JournalEntry>>,
}

impl CommitJournal {
    /// Classifies a write result. Success is an ack; errors split on
    /// [`ifdb_client::is_indeterminate_commit_error`] — everything else is
    /// a determinate refusal (the server answered; the answer was no).
    pub fn classify<T>(result: &IfdbResult<T>) -> Ack {
        match result {
            Ok(_) => Ack::Acked,
            Err(e) if ifdb_client::is_indeterminate_commit_error(e) => Ack::Indeterminate,
            Err(_) => Ack::RefusedDeterminate,
        }
    }

    /// Records one attempt.
    pub fn record(&self, id: i64, labeled: bool, ack: Ack, detail: impl Into<String>) {
        self.entries.lock().expect("journal").push(JournalEntry {
            id,
            labeled,
            ack,
            detail: detail.into(),
        });
    }

    /// A snapshot of every entry.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().expect("journal").clone()
    }

    /// Counts by acknowledgement class: `(acked, refused, indeterminate)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let entries = self.entries.lock().expect("journal");
        let acked = entries.iter().filter(|e| e.ack == Ack::Acked).count();
        let refused = entries
            .iter()
            .filter(|e| e.ack == Ack::RefusedDeterminate)
            .count();
        (acked, refused, entries.len() - acked - refused)
    }

    /// Checks the journal against one node. `all` must come from a session
    /// carrying alice's tag (sees labeled and public rows), `public` from a
    /// session without it. Returns every violated invariant.
    pub fn verify_against(&self, all: &[i64], public: &[i64]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut all_set: HashSet<i64> = HashSet::with_capacity(all.len());
        for id in all {
            if !all_set.insert(*id) {
                violations.push(format!(
                    "journal id {id} appears more than once (exactly-once broken)"
                ));
            }
        }
        let public_set: HashSet<i64> = public.iter().copied().collect();

        for entry in self.entries.lock().expect("journal").iter() {
            let present = all_set.contains(&entry.id);
            match entry.ack {
                Ack::Acked if !present => violations.push(format!(
                    "ACKED COMMIT LOST: journal id {} (labeled={}) was acknowledged but is absent",
                    entry.id, entry.labeled
                )),
                Ack::RefusedDeterminate if present => violations.push(format!(
                    "REFUSED WRITE RESURRECTED: journal id {} failed determinately ({}) but exists",
                    entry.id, entry.detail
                )),
                _ => {}
            }
            // Label faithfulness holds whatever the ack outcome was: if the
            // row exists at all, only properly labeled sessions may see it.
            if present {
                let visible_public = public_set.contains(&entry.id);
                if entry.labeled && visible_public {
                    violations.push(format!(
                        "LABEL LEAK: labeled journal id {} is visible to an uncontaminated session",
                        entry.id
                    ));
                }
                if !entry.labeled && !visible_public {
                    violations.push(format!(
                        "OVER-CLASSIFIED: public journal id {} is hidden from a public session",
                        entry.id
                    ));
                }
            }
        }
        violations
    }
}

/// Reads every visible `chaos_journal.id` through `conn`.
pub fn read_journal_ids(conn: &mut Connection) -> IfdbResult<Vec<i64>> {
    let rows = conn
        .run(&Statement::Select(Select::star("chaos_journal")))?
        .into_rows();
    rows.rows
        .iter()
        .map(|row| match row.values.first() {
            Some(Datum::Int(id)) => Ok(*id),
            other => Err(IfdbError::InvalidStatement(format!(
                "chaos_journal.id is not an int: {other:?}"
            ))),
        })
        .collect()
}
