//! Deterministic, seed-logged fault schedules.
//!
//! A schedule is a list of timed fault events applied to a running cluster
//! through a [`FaultProxy`] (and, for [`Fault::KillPrimary`], a kill
//! action). Schedules are generated from a seed with a plain `StdRng`, so:
//!
//! * the CI scenario runs **pinned seeds** — the same faults, at the same
//!   offsets, every run;
//! * the property test draws fresh seeds from a base seed and **logs every
//!   one**; a failure prints a one-line replay command
//!   (`IFDB_CHAOS_SCHEDULE_SEED=0x…`) that regenerates the exact schedule;
//! * [`check_with_shrinking`] greedily minimizes a failing schedule —
//!   re-running the scenario with one event removed at a time and keeping
//!   removals that still fail — before reporting, so the reported
//!   counterexample is the smallest event set that breaks the invariant.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proxy::FaultProxy;

/// Environment variable the property test reads a replay seed from.
pub const SCHEDULE_SEED_ENV: &str = "IFDB_CHAOS_SCHEDULE_SEED";

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Kill the primary process with `SIGABRT`.
    KillPrimary,
    /// Partition the client link for `millis`, then heal.
    Partition {
        /// How long the partition lasts.
        millis: u64,
    },
    /// Delay every frame by `frame_millis` for a `millis` window.
    Delay {
        /// Added per-frame latency.
        frame_millis: u64,
        /// How long the slow window lasts.
        millis: u64,
    },
    /// Corrupt the next `n` frames (checksum-detected, connection-fatal).
    CorruptFrames {
        /// Number of frames to corrupt.
        n: u64,
    },
    /// Drop the next `n` frames (each severing its connection).
    DropFrames {
        /// Number of frames to drop.
        n: u64,
    },
    /// Duplicate the next `n` frames.
    DuplicateFrames {
        /// Number of frames to duplicate.
        n: u64,
    },
}

/// A fault at an offset from scenario start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from the start of the scenario.
    pub at_millis: u64,
    /// The fault to inject.
    pub fault: Fault,
}

/// A deterministic fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The seed this schedule was generated from (0 for hand-written ones).
    pub seed: u64,
    /// The events, in time order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generates a schedule from `seed`: one to three non-kill faults in
    /// the first 60% of `span`, plus — when `with_kill` — a primary kill in
    /// the middle third. The same seed always yields the same schedule.
    pub fn random(seed: u64, span: Duration, with_kill: bool) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let span_ms = span.as_millis() as u64;
        let mut events = Vec::new();
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let at_millis = rng.gen_range(span_ms / 10..span_ms * 6 / 10);
            let fault = match rng.gen_range(0..5) {
                0 => Fault::Partition {
                    millis: rng.gen_range(100..400),
                },
                1 => Fault::Delay {
                    frame_millis: rng.gen_range(1..8),
                    millis: rng.gen_range(100..400),
                },
                2 => Fault::CorruptFrames {
                    n: rng.gen_range(1..4),
                },
                3 => Fault::DropFrames {
                    n: rng.gen_range(1..3),
                },
                _ => Fault::DuplicateFrames {
                    n: rng.gen_range(1..4),
                },
            };
            events.push(FaultEvent { at_millis, fault });
        }
        if with_kill {
            events.push(FaultEvent {
                at_millis: rng.gen_range(span_ms / 3..span_ms * 2 / 3),
                fault: Fault::KillPrimary,
            });
        }
        events.sort_by_key(|e| e.at_millis);
        FaultSchedule { seed, events }
    }

    /// The one-liner that replays this schedule in the named test.
    pub fn replay_command(&self, test: &str) -> String {
        format!(
            "{SCHEDULE_SEED_ENV}={:#x} cargo test -p ifdb-chaos --test {test} -- --nocapture",
            self.seed
        )
    }

    /// Applies the schedule against `proxy`, calling `kill` for
    /// [`Fault::KillPrimary`]. Blocking: events are applied sequentially
    /// and window faults (partition, delay) occupy the schedule thread for
    /// their duration. Call from a dedicated thread when the test also
    /// drives load.
    pub fn execute(&self, proxy: &FaultProxy, mut kill: impl FnMut()) {
        let start = std::time::Instant::now();
        for event in &self.events {
            let at = Duration::from_millis(event.at_millis);
            if let Some(wait) = at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            match event.fault {
                Fault::KillPrimary => kill(),
                Fault::Partition { millis } => {
                    proxy.set_partitioned(true);
                    std::thread::sleep(Duration::from_millis(millis));
                    proxy.set_partitioned(false);
                }
                Fault::Delay {
                    frame_millis,
                    millis,
                } => {
                    proxy.set_delay_ms(frame_millis);
                    std::thread::sleep(Duration::from_millis(millis));
                    proxy.set_delay_ms(0);
                }
                Fault::CorruptFrames { n } => proxy.corrupt_frames(n),
                Fault::DropFrames { n } => proxy.drop_frames(n),
                Fault::DuplicateFrames { n } => proxy.duplicate_frames(n),
            }
        }
    }

    /// This schedule minus the event at `index`.
    fn without(&self, index: usize) -> FaultSchedule {
        let mut events = self.events.clone();
        events.remove(index);
        FaultSchedule {
            seed: self.seed,
            events,
        }
    }
}

/// Runs `scenario` on `schedule`; on failure, greedily shrinks the
/// schedule (dropping one event at a time, keeping removals that still
/// fail) and returns the minimal failing schedule with its violations.
/// Each shrink step re-runs the full scenario, so shrinking only costs
/// time when an invariant is actually broken.
pub fn check_with_shrinking(
    schedule: &FaultSchedule,
    mut scenario: impl FnMut(&FaultSchedule) -> Result<(), Vec<String>>,
) -> Result<(), (FaultSchedule, Vec<String>)> {
    let Err(mut violations) = scenario(schedule) else {
        return Ok(());
    };
    let mut failing = schedule.clone();
    let mut index = 0;
    while index < failing.events.len() && failing.events.len() > 1 {
        let candidate = failing.without(index);
        match scenario(&candidate) {
            Err(v) => {
                failing = candidate;
                violations = v;
                // Keep the same index: it now names the next event.
            }
            Ok(()) => index += 1,
        }
    }
    Err((failing, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let a = FaultSchedule::random(0xFEED, Duration::from_secs(3), true);
        let b = FaultSchedule::random(0xFEED, Duration::from_secs(3), true);
        assert_eq!(a, b);
        let c = FaultSchedule::random(0xFEEE, Duration::from_secs(3), true);
        assert_ne!(a, c, "a different seed should draw a different schedule");
        assert!(a.events.iter().any(|e| e.fault == Fault::KillPrimary));
        assert!(a
            .events
            .windows(2)
            .all(|w| w[0].at_millis <= w[1].at_millis));
    }

    #[test]
    fn shrinking_minimizes_to_the_guilty_event() {
        // A scenario that fails iff the schedule still contains a kill:
        // shrinking must strip everything else.
        let schedule = FaultSchedule::random(0x5EED_0001, Duration::from_secs(4), true);
        assert!(schedule.events.len() > 1, "want a multi-event schedule");
        let result = check_with_shrinking(&schedule, |s| {
            if s.events.iter().any(|e| e.fault == Fault::KillPrimary) {
                Err(vec!["kill loses data (pretend)".into()])
            } else {
                Ok(())
            }
        });
        let (minimal, violations) = result.expect_err("scenario fails");
        assert_eq!(minimal.events.len(), 1);
        assert_eq!(minimal.events[0].fault, Fault::KillPrimary);
        assert_eq!(violations.len(), 1);
        assert!(minimal
            .replay_command("fault_schedule")
            .contains("IFDB_CHAOS_SCHEDULE_SEED"));
    }

    #[test]
    fn healthy_scenarios_pass_without_shrinking_runs() {
        let schedule = FaultSchedule::random(7, Duration::from_secs(2), false);
        let mut runs = 0;
        assert!(check_with_shrinking(&schedule, |_| {
            runs += 1;
            Ok(())
        })
        .is_ok());
        assert_eq!(runs, 1);
    }
}
