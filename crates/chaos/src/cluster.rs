//! Cluster fixtures for the chaos tests.
//!
//! Every node of a replicated cluster must hold **identical authority
//! state** (principals, tags) even though authority is code-not-data and
//! never travels over the replication stream: with the same authority seed
//! and the same creation order, the ids come out identical — the recovery
//! contract documented on `Database::replica_over`. This module centralizes
//! that creation order so the primary fixture, every replica's bootstrap
//! closure, and the child-process primary all agree.
//!
//! The fixture is a deliberately tiny TPC-C database (seconds to load, real
//! multi-row transactions) plus a `chaos_journal` table the invariant
//! checker writes through, and one extra principal (`alice`) whose private
//! tag marks the labeled journal rows used to check label-faithful reads
//! across promotion.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ifdb::prelude::*;
use ifdb::TableDef;
use ifdb_client::{ClientConfig, Connection};
use ifdb_platform::Authenticator;
use ifdb_server::{start, Backend, ReplicaConfig, ReplicaHandle, ServerConfig, ServerHandle};
use ifdb_workloads::{TpccConfig, TpccDatabase};

/// The default authority seed shared by every node of a chaos cluster.
pub const SEED: u64 = 0xCAFE_F00D;
/// The replication secret shared by every node of a chaos cluster.
pub const REPL_SECRET: &str = "chaos-repl-secret";

/// The scaled-down TPC-C the chaos clusters run: small enough that a child
/// process loads it in well under a second, real enough that promotion
/// happens under multi-row read-write transactions.
pub fn tpcc_config(seed: u64) -> TpccConfig {
    TpccConfig {
        warehouses: 1,
        districts_per_warehouse: 2,
        customers_per_district: 5,
        items: 20,
        initial_orders_per_district: 2,
        tags_per_label: 1,
        seed,
    }
}

/// The journal table the invariant checker writes through. One row per
/// attempted marker write; `id` is globally unique per attempt, so the
/// primary key doubles as the exactly-once check.
pub fn journal_table_def() -> TableDef {
    TableDef::new("chaos_journal")
        .column("id", DataType::Int)
        .column("terminal", DataType::Int)
        .column("labeled", DataType::Int)
        .primary_key(&["id"])
}

/// Every table a chaos node creates on first boot — the DDL a replica
/// re-runs on promotion to re-attach the code-not-data constraints
/// ([`ReplicaConfig::first_boot_tables`]).
pub fn first_boot_tables() -> Vec<TableDef> {
    let mut defs = ifdb_workloads::table_defs();
    defs.push(journal_table_def());
    defs
}

/// A loaded primary database plus everything a test needs to talk to it.
pub struct PrimaryFixture {
    /// The database (shared with the serving node).
    pub db: Database,
    /// The authenticator registered with `tpcc`/`pw` and `alice`/`pw-a`.
    pub auth: Arc<Authenticator>,
    /// The TPC-C benchmark principal.
    pub tpcc_principal: PrincipalId,
    /// The benchmark label's tags (every TPC-C tuple carries them).
    pub tpcc_label: Vec<TagId>,
    /// The secrecy principal for labeled journal rows.
    pub alice: PrincipalId,
    /// Alice's private tag.
    pub alice_tag: TagId,
    /// The TPC-C scale the database was loaded with.
    pub tpcc: TpccConfig,
}

/// Builds the primary: TPC-C schema + data, the chaos journal table, and
/// the DIFC principals — in the one true creation order that
/// [`replica_authority`] mirrors.
pub fn build_primary_fixture(seed: u64) -> PrimaryFixture {
    let db = Database::new(DatabaseConfig::in_memory().with_seed(seed));
    let config = tpcc_config(seed);
    let loaded = TpccDatabase::load(db, config.clone()).expect("tpcc load");
    let db = loaded.db.clone();
    let (alice, alice_tag) = chaos_authority(&db);
    db.create_table(journal_table_def()).expect("journal table");
    let auth = Arc::new(Authenticator::new());
    auth.register("tpcc", "pw", loaded.principal);
    auth.register("alice", "pw-a", alice);
    PrimaryFixture {
        db,
        auth,
        tpcc_principal: loaded.principal,
        tpcc_label: loaded.label.iter().collect(),
        alice,
        alice_tag,
        tpcc: config,
    }
}

/// The authority ops [`TpccDatabase::load`] performs, replayed verbatim on
/// a replica so the ids line up (schema and data arrive via replication and
/// must **not** be re-created here).
fn tpcc_authority(db: &Database, tags_per_label: usize) -> (PrincipalId, Vec<TagId>) {
    let principal = db.create_principal("tpcc", PrincipalKind::User);
    let tags: Vec<TagId> = (0..tags_per_label)
        .map(|i| {
            db.create_tag(principal, &format!("tpcc_tag_{i}"), &[])
                .expect("tpcc tag")
        })
        .collect();
    (principal, tags)
}

/// The chaos-specific authority ops, after the TPC-C ones.
fn chaos_authority(db: &Database) -> (PrincipalId, TagId) {
    let alice = db.create_principal("alice", PrincipalKind::User);
    let alice_tag = db
        .create_tag(alice, "alice_private", &[])
        .expect("alice tag");
    (alice, alice_tag)
}

/// The replica bootstrap: re-creates the full authority sequence in the
/// primary's order and registers the users on the replica's authenticator.
/// Returns `(tpcc_principal, tpcc_tags, alice, alice_tag)`.
pub fn replica_authority(
    db: &Database,
    auth: &Authenticator,
    tags_per_label: usize,
) -> (PrincipalId, Vec<TagId>, PrincipalId, TagId) {
    let (tpcc_principal, tpcc_tags) = tpcc_authority(db, tags_per_label);
    let (alice, alice_tag) = chaos_authority(db);
    auth.register("tpcc", "pw", tpcc_principal);
    auth.register("alice", "pw-a", alice);
    (tpcc_principal, tpcc_tags, alice, alice_tag)
}

/// Starts a replica of `primary_addr` with the chaos bootstrap.
pub fn start_replica_node(primary_addr: &str, seed: u64) -> ReplicaHandle {
    start_replica_node_with_authority(primary_addr, seed).0
}

/// The authority ids a chaos node ends up with — identical on every node
/// of a cluster, by the seed-and-order contract.
#[derive(Debug, Clone)]
pub struct ClusterAuthority {
    /// The TPC-C benchmark label's tags.
    pub tpcc_label: Vec<TagId>,
    /// Alice's private tag (marks labeled journal rows).
    pub alice_tag: TagId,
}

/// Starts a replica and also returns the authority ids its bootstrap
/// created — what a parent process needs to talk to a cluster whose
/// primary lives in a *child* process (it cannot reach into that fixture).
pub fn start_replica_node_with_authority(
    primary_addr: &str,
    seed: u64,
) -> (ReplicaHandle, ClusterAuthority) {
    let auth = Arc::new(Authenticator::new());
    let tags_per_label = tpcc_config(seed).tags_per_label;
    let captured: Arc<Mutex<Option<ClusterAuthority>>> = Arc::new(Mutex::new(None));
    let slot = captured.clone();
    let handle = ifdb_server::start_replica(
        ReplicaConfig::new(primary_addr, REPL_SECRET, seed)
            .with_first_boot_tables(first_boot_tables()),
        auth.clone(),
        move |db| {
            let (_, tpcc_label, _, alice_tag) = replica_authority(db, &auth, tags_per_label);
            *slot.lock().expect("authority slot") = Some(ClusterAuthority {
                tpcc_label,
                alice_tag,
            });
            Ok(())
        },
    )
    .expect("start replica");
    let authority = captured
        .lock()
        .expect("authority slot")
        .take()
        .expect("bootstrap runs before start_replica returns");
    (handle, authority)
}

/// A `ClientConfig` for the `tpcc` user with the given label.
pub fn tpcc_client(addr: &str, label: &[TagId]) -> ClientConfig {
    ClientConfig::anonymous(addr)
        .with_user("tpcc", "pw")
        .with_label(label)
}

/// An in-parent HA cluster: one primary server, N replicas.
pub struct HaCluster {
    /// The primary's database and principals.
    pub fixture: PrimaryFixture,
    /// The primary server; `None` after [`HaCluster::stop_primary`].
    pub primary: Option<ServerHandle>,
    /// The replicas, in start order.
    pub replicas: Vec<ReplicaHandle>,
}

impl HaCluster {
    /// Builds the fixture, starts the primary (with replication enabled and
    /// the given semi-sync window) and `replicas` replicas.
    pub fn start(
        seed: u64,
        replicas: usize,
        sync_replication: Option<Duration>,
        backend: Backend,
    ) -> HaCluster {
        let fixture = build_primary_fixture(seed);
        let primary = start(
            fixture.db.clone(),
            fixture.auth.clone(),
            ServerConfig {
                backend,
                // Each replication connection occupies a worker for its
                // lifetime; size the pool so client traffic never starves.
                workers: 6 + replicas,
                replication_secret: Some(REPL_SECRET.into()),
                sync_replication,
                ..ServerConfig::default()
            },
        )
        .expect("primary server");
        let addr = primary.addr().to_string();
        let replicas = (0..replicas)
            .map(|_| start_replica_node(&addr, seed))
            .collect();
        HaCluster {
            fixture,
            primary: Some(primary),
            replicas,
        }
    }

    /// The primary's listen address.
    ///
    /// # Panics
    /// After [`HaCluster::stop_primary`].
    pub fn primary_addr(&self) -> String {
        self.primary
            .as_ref()
            .expect("primary stopped")
            .addr()
            .to_string()
    }

    /// Blocks until every replica has applied the primary's current last
    /// sequence number; `false` on timeout.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let seq = self.fixture.db.engine().wal().last_seq();
        self.replicas.iter().all(|r| r.wait_for_seq(seq, timeout))
    }

    /// Stops the primary server (the in-parent stand-in for a crash; tests
    /// that need a *real* crash use [`crate::child::ChildPrimary`]).
    pub fn stop_primary(&mut self) {
        if let Some(primary) = self.primary.take() {
            primary.shutdown();
        }
    }

    /// Shuts everything down.
    pub fn shutdown(mut self) {
        self.stop_primary();
        for replica in self.replicas.drain(..) {
            replica.shutdown();
        }
    }
}

/// A failover watchdog: probes a primary's `HaStatus` and, after
/// `down_after` consecutive failed probes, runs the `on_down` action once
/// (typically: promote a replica and retarget the client-facing proxy).
/// This is the external orchestrator role — the database deliberately does
/// not self-elect.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    /// Number of probe failures when `on_down` fired; 0 while healthy.
    fired: Arc<AtomicU32>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Watchdog {
    /// Spawns the watchdog against `primary_addr`.
    pub fn spawn(
        primary_addr: String,
        check_interval: Duration,
        down_after: u32,
        on_down: impl FnOnce() + Send + 'static,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicU32::new(0));
        let loop_stop = stop.clone();
        let loop_fired = fired.clone();
        let thread = std::thread::spawn(move || {
            let mut strikes = 0u32;
            let mut on_down = Some(on_down);
            while !loop_stop.load(Ordering::Acquire) {
                if primary_healthy(&primary_addr) {
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= down_after {
                        loop_fired.store(strikes, Ordering::Release);
                        if let Some(f) = on_down.take() {
                            f();
                        }
                        return;
                    }
                }
                std::thread::sleep(check_interval);
            }
        });
        Watchdog {
            stop,
            fired,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Whether the down action has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire) > 0
    }

    /// Blocks until the down action fires or `timeout` elapses.
    pub fn wait_fired(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.fired() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.fired()
    }

    /// Stops the watchdog (without firing the action).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().expect("watchdog thread").take() {
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One health probe: a fresh anonymous connection answering `HaStatus` with
/// a non-fenced role. A fenced node is alive but deposed — the successor is
/// already primary, so the watchdog treats it as down.
fn primary_healthy(addr: &str) -> bool {
    let Ok(mut conn) = Connection::connect(&ClientConfig::anonymous(addr)) else {
        return false;
    };
    let healthy = matches!(
        conn.ha_status(),
        Ok(status) if status.role != ifdb_client::protocol::HaRole::Fenced
    );
    let _ = conn.close();
    healthy
}
