//! A journaling load generator: live network TPC-C plus journal-marker
//! writes, driven through failover-enabled routed connections.
//!
//! Each terminal runs two [`RoutedConnection`]s against the cluster — one
//! at the plain TPC-C label ("public"), one additionally carrying alice's
//! secrecy tag ("labeled") — and interleaves TPC-C transactions with
//! single-row inserts into `chaos_journal`. Every journal insert is
//! recorded in the [`CommitJournal`] with its acknowledgement class, which
//! is what the invariant checker replays against the survivors afterwards.
//!
//! Terminals are deliberately stubborn: a dead connection is re-dialed
//! (counting a reconnect) until the run deadline, because the interesting
//! metric under failover is not "did a terminal die" but "how long was the
//! cluster unable to acknowledge any write" — tracked globally as
//! [`ChaosLoadOutcome::max_unavailability`].

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ifdb::prelude::*;
use ifdb::SessionApi;
use ifdb_client::{RoutedConnection, RouterConfig};
use ifdb_workloads::{run_transaction_on, TpccConfig, TpccTransaction};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::tpcc_client;
use crate::journal::{Ack, CommitJournal};

/// Configuration of one chaos load run.
#[derive(Debug, Clone)]
pub struct ChaosLoadConfig {
    /// What terminals dial as the primary — usually a [`crate::FaultProxy`]
    /// address, so the schedule can torture the link.
    pub primary_addr: String,
    /// Direct replica addresses; the routers probe these for a promoted
    /// successor when the primary fails.
    pub replica_addrs: Vec<String>,
    /// Concurrent terminals (each runs two connections).
    pub terminals: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Seed for the per-terminal RNGs.
    pub seed: u64,
    /// The TPC-C scale (must match what the cluster was loaded with).
    pub tpcc: TpccConfig,
    /// The TPC-C benchmark label.
    pub tpcc_label: Vec<TagId>,
    /// Alice's secrecy tag for labeled journal rows.
    pub alice_tag: TagId,
    /// Router failover bound ([`RouterConfig::failover_timeout`]).
    pub failover_timeout: Duration,
}

/// What a chaos load run observed.
#[derive(Debug)]
pub struct ChaosLoadOutcome {
    /// The journal of every marker-write attempt.
    pub journal: Arc<CommitJournal>,
    /// TPC-C transactions committed.
    pub tpcc_committed: u64,
    /// TPC-C write-conflict rollbacks (normal under contention).
    pub tpcc_conflicts: u64,
    /// Connection re-dials across all terminals.
    pub reconnects: u64,
    /// Router failovers (adoption of a promoted successor).
    pub failovers: u64,
    /// Failover probes that found no successor in time.
    pub failover_give_ups: u64,
    /// The longest wall-clock window in which **no** terminal got a write
    /// acknowledged — the observed unavailability bound.
    pub max_unavailability: Duration,
}

/// Global acknowledgement tracker behind the unavailability metric.
struct Pulse {
    last_ack: Mutex<Instant>,
    max_gap: Mutex<Duration>,
}

impl Pulse {
    fn beat(&self) {
        let now = Instant::now();
        let mut last = self.last_ack.lock().expect("pulse");
        let gap = now.duration_since(*last);
        *last = now;
        drop(last);
        let mut max = self.max_gap.lock().expect("pulse max");
        if gap > *max {
            *max = gap;
        }
    }

    /// Folds in the still-open gap at run end.
    fn finish(&self) -> Duration {
        let open = self.last_ack.lock().expect("pulse").elapsed();
        let mut max = self.max_gap.lock().expect("pulse max");
        if open > *max {
            *max = open;
        }
        *max
    }
}

/// Per-terminal tallies, merged at the end.
#[derive(Default)]
struct TerminalOutcome {
    tpcc_committed: u64,
    tpcc_conflicts: u64,
    reconnects: u64,
    failovers: u64,
    failover_give_ups: u64,
}

/// Runs the load; returns once every terminal has stopped at the deadline.
pub fn run_chaos_load(config: &ChaosLoadConfig) -> ChaosLoadOutcome {
    let journal = Arc::new(CommitJournal::default());
    let pulse = Arc::new(Pulse {
        last_ack: Mutex::new(Instant::now()),
        max_gap: Mutex::new(Duration::ZERO),
    });
    let deadline = Instant::now() + config.duration;

    let outcomes: Vec<TerminalOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.terminals)
            .map(|terminal| {
                let journal = journal.clone();
                let pulse = pulse.clone();
                scope.spawn(move || terminal_loop(terminal, config, deadline, &journal, &pulse))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("terminal"))
            .collect()
    });

    let mut merged = TerminalOutcome::default();
    for o in outcomes {
        merged.tpcc_committed += o.tpcc_committed;
        merged.tpcc_conflicts += o.tpcc_conflicts;
        merged.reconnects += o.reconnects;
        merged.failovers += o.failovers;
        merged.failover_give_ups += o.failover_give_ups;
    }
    ChaosLoadOutcome {
        journal,
        tpcc_committed: merged.tpcc_committed,
        tpcc_conflicts: merged.tpcc_conflicts,
        reconnects: merged.reconnects,
        failovers: merged.failovers,
        failover_give_ups: merged.failover_give_ups,
        max_unavailability: pulse.finish(),
    }
}

/// The two routers a terminal drives: public (TPC-C label) and labeled
/// (TPC-C label plus alice's tag).
struct TerminalConns {
    public: RoutedConnection,
    labeled: RoutedConnection,
}

fn router_config(config: &ChaosLoadConfig, label: &[TagId]) -> RouterConfig {
    let mut rc = RouterConfig::new(
        tpcc_client(&config.primary_addr, label),
        config
            .replica_addrs
            .iter()
            .map(|addr| tpcc_client(addr, label))
            .collect(),
    );
    rc.failover_timeout = config.failover_timeout;
    // Short staleness bound: under chaos a replica may be gone; reads must
    // fall back to the primary quickly instead of stalling the terminal.
    rc.staleness_timeout = Duration::from_millis(200);
    rc
}

fn connect_terminal(config: &ChaosLoadConfig, deadline: Instant) -> Option<TerminalConns> {
    let mut labeled_tags = config.tpcc_label.clone();
    labeled_tags.push(config.alice_tag);
    let public_config = router_config(config, &config.tpcc_label);
    let labeled_config = router_config(config, &labeled_tags);
    while Instant::now() < deadline {
        let Ok(public) = RoutedConnection::connect(&public_config) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        match RoutedConnection::connect(&labeled_config) {
            Ok(labeled) => return Some(TerminalConns { public, labeled }),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    None
}

/// Accumulates a dying router's counters before it is dropped.
fn absorb_stats(conns: &TerminalConns, out: &mut TerminalOutcome) {
    for conn in [&conns.public, &conns.labeled] {
        let stats = conn.stats();
        out.failovers += stats.failovers;
        out.failover_give_ups += stats.failover_give_ups;
    }
}

fn terminal_loop(
    terminal: usize,
    config: &ChaosLoadConfig,
    deadline: Instant,
    journal: &CommitJournal,
    pulse: &Pulse,
) -> TerminalOutcome {
    let mut out = TerminalOutcome::default();
    let mut rng = StdRng::seed_from_u64(config.seed ^ (terminal as u64) << 32);
    let mut counter: i64 = 0;
    let Some(mut conns) = connect_terminal(config, deadline) else {
        return out;
    };

    while Instant::now() < deadline {
        counter += 1;
        let id = (terminal as i64) * 1_000_000 + counter;
        let labeled = counter % 3 == 0;
        let row = Insert::new(
            "chaos_journal",
            vec![
                Datum::Int(id),
                Datum::Int(terminal as i64),
                Datum::Int(labeled as i64),
            ],
        );
        let conn = if labeled {
            &mut conns.labeled
        } else {
            &mut conns.public
        };
        let result = conn.insert(&row);
        let ack = CommitJournal::classify(&result);
        let detail = result
            .as_ref()
            .err()
            .map(|e| e.to_string())
            .unwrap_or_default();
        journal.record(id, labeled, ack, detail);
        if ack == Ack::Acked {
            pulse.beat();
        } else if ack == Ack::Indeterminate {
            // The transport died under this write; re-dial both routers.
            absorb_stats(&conns, &mut out);
            out.reconnects += 1;
            match connect_terminal(config, deadline) {
                Some(fresh) => conns = fresh,
                None => return out,
            }
            continue;
        }

        // Every other iteration, a real TPC-C transaction rides along so
        // promotion happens under live multi-statement load.
        if counter % 2 == 0 {
            let kind = TpccTransaction::draw(&mut rng);
            match run_transaction_on(&config.tpcc, &mut conns.public, &mut rng, kind) {
                Ok(true) => {
                    out.tpcc_committed += 1;
                    pulse.beat();
                }
                Ok(false) => out.tpcc_conflicts += 1,
                Err(_) => {
                    // An open branch may have died with the primary; drop
                    // the state and re-dial. TPC-C effects are not part of
                    // the journal invariants (the journal markers are), so
                    // classification is not needed here.
                    let _ = conns.public.abort();
                    absorb_stats(&conns, &mut out);
                    out.reconnects += 1;
                    match connect_terminal(config, deadline) {
                        Some(fresh) => conns = fresh,
                        None => return out,
                    }
                }
            }
        }
    }
    absorb_stats(&conns, &mut out);
    let _ = conns.public.close();
    let _ = conns.labeled.close();
    out
}
