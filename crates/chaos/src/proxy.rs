//! A frame-aware fault-injecting TCP proxy.
//!
//! The wire protocol frames every message as `[payload_len u32 LE]
//! [crc u32 LE] [payload]` (the payload being `req_id` plus the encoded
//! message), so the proxy can reassemble the byte stream into frames and
//! inject faults at **frame granularity** — the unit at which the protocol
//! itself detects damage:
//!
//! * **corrupt** — flip one payload byte; the receiver's checksum rejects
//!   the frame and the connection dies a protocol death.
//! * **drop** — swallow a frame and sever the connection. (On a stream
//!   transport a silently missing frame desynchronizes request/response
//!   pairing forever; severing models what a real middlebox drop does to
//!   the session — the peer sees EOF and reconnects.)
//! * **duplicate** — forward a frame twice, exercising the receiver's
//!   request-id matching.
//! * **delay** — sleep before forwarding each frame while set.
//! * **partition** — refuse new connections and sever live ones until
//!   healed.
//! * **retarget** — point the proxy at a different backend (a floating
//!   virtual IP moving to a promoted successor).
//!
//! All controls are `&self` and atomic, so an [`std::sync::Arc`]'d proxy
//! can be driven from a fault-schedule thread while terminals connect
//! through it.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counters of what the proxy has done to the traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    /// Frames forwarded unharmed.
    pub frames_forwarded: u64,
    /// Frames corrupted (one payload byte flipped).
    pub frames_corrupted: u64,
    /// Frames dropped (and the carrying connection severed).
    pub frames_dropped: u64,
    /// Frames duplicated.
    pub frames_duplicated: u64,
    /// Connections accepted and spliced to the backend.
    pub connections: u64,
    /// Connection attempts refused while partitioned.
    pub refused: u64,
}

#[derive(Default)]
struct Counters {
    frames_forwarded: AtomicU64,
    frames_corrupted: AtomicU64,
    frames_dropped: AtomicU64,
    frames_duplicated: AtomicU64,
    connections: AtomicU64,
    refused: AtomicU64,
}

struct ProxyState {
    target: Mutex<String>,
    partitioned: AtomicBool,
    delay_ms: AtomicU64,
    corrupt_next: AtomicU64,
    drop_next: AtomicU64,
    duplicate_next: AtomicU64,
    /// Clones of every live spliced stream, for severing.
    live: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
    counters: Counters,
}

impl ProxyState {
    /// Consumes one unit of a fault budget; `true` when the fault applies.
    fn take(budget: &AtomicU64) -> bool {
        budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    fn sever_all(&self) {
        let mut live = self.live.lock().expect("proxy live list");
        for stream in live.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The running proxy; see the module docs.
pub struct FaultProxy {
    addr: String,
    state: Arc<ProxyState>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to `target`.
    pub fn start(target: &str) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let state = Arc::new(ProxyState {
            target: Mutex::new(target.to_string()),
            partitioned: AtomicBool::new(false),
            delay_ms: AtomicU64::new(0),
            corrupt_next: AtomicU64::new(0),
            drop_next: AtomicU64::new(0),
            duplicate_next: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let accept_state = state.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(FaultProxy {
            addr,
            state,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Repoints the proxy at a different backend. Live connections keep
    /// their old backend until severed; new connections go to `target`.
    pub fn retarget(&self, target: &str) {
        *self.state.target.lock().expect("proxy target") = target.to_string();
    }

    /// Starts or heals a partition. Starting severs every live connection.
    pub fn set_partitioned(&self, on: bool) {
        self.state.partitioned.store(on, Ordering::Release);
        if on {
            self.state.sever_all();
        }
    }

    /// Severs every live connection without partitioning (peers can
    /// reconnect immediately).
    pub fn sever(&self) {
        self.state.sever_all();
    }

    /// Delays every forwarded frame by `millis` until cleared with 0.
    pub fn set_delay_ms(&self, millis: u64) {
        self.state.delay_ms.store(millis, Ordering::Release);
    }

    /// Corrupts the next `n` frames (one flipped payload byte each).
    pub fn corrupt_frames(&self, n: u64) {
        self.state.corrupt_next.fetch_add(n, Ordering::AcqRel);
    }

    /// Drops the next `n` frames, severing their connections.
    pub fn drop_frames(&self, n: u64) {
        self.state.drop_next.fetch_add(n, Ordering::AcqRel);
    }

    /// Duplicates the next `n` frames.
    pub fn duplicate_frames(&self, n: u64) {
        self.state.duplicate_next.fetch_add(n, Ordering::AcqRel);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.state.counters;
        ProxyStats {
            frames_forwarded: c.frames_forwarded.load(Ordering::Acquire),
            frames_corrupted: c.frames_corrupted.load(Ordering::Acquire),
            frames_dropped: c.frames_dropped.load(Ordering::Acquire),
            frames_duplicated: c.frames_duplicated.load(Ordering::Acquire),
            connections: c.connections.load(Ordering::Acquire),
            refused: c.refused.load(Ordering::Acquire),
        }
    }

    /// Stops the proxy and severs everything.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
        self.state.sever_all();
        if let Some(t) = self.accept_thread.lock().expect("proxy thread").take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ProxyState>) {
    while !state.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                if state.partitioned.load(Ordering::Acquire) {
                    state.counters.refused.fetch_add(1, Ordering::AcqRel);
                    drop(client);
                    continue;
                }
                let target = state.target.lock().expect("proxy target").clone();
                let Ok(backend) = TcpStream::connect(&target) else {
                    drop(client);
                    continue;
                };
                state.counters.connections.fetch_add(1, Ordering::AcqRel);
                splice(client, backend, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Wires `client` and `backend` together with one pump thread per
/// direction. Faults apply to both directions — at frame granularity the
/// interesting faults (corrupt, drop) are symmetric: losing a request and
/// losing its response are both "the write is now indeterminate".
fn splice(client: TcpStream, backend: TcpStream, state: &Arc<ProxyState>) {
    let _ = client.set_nodelay(true);
    let _ = backend.set_nodelay(true);
    let pairs = [
        (client.try_clone(), backend.try_clone()),
        (backend.try_clone(), client.try_clone()),
    ];
    {
        let mut live = state.live.lock().expect("proxy live list");
        live.push(client);
        live.push(backend);
    }
    for (src, dst) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            return;
        };
        let state = state.clone();
        std::thread::spawn(move || pump_frames(src, dst, state));
    }
}

/// Reassembles frames out of `src` and forwards them (modulo faults) to
/// `dst`. Returns when either side dies or the proxy stops.
fn pump_frames(mut src: TcpStream, mut dst: TcpStream, state: Arc<ProxyState>) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if state.stop.load(Ordering::Acquire) || state.partitioned.load(Ordering::Acquire) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        match src.read(&mut chunk) {
            Ok(0) => {
                // Clean EOF: flush any trailing partial frame as-is (the
                // receiver handles truncation) and mirror the close.
                let _ = dst.write_all(&buf);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(frame) = take_frame(&mut buf) {
                    if !forward_frame(frame, &mut src, &mut dst, &state) {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Splits one complete frame (`8`-byte header plus payload) off the front
/// of `buf`, or `None` when the buffer holds only part of one.
fn take_frame(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    if buf.len() < 8 {
        return None;
    }
    let payload_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let total = 8 + payload_len;
    if buf.len() < total {
        return None;
    }
    let rest = buf.split_off(total);
    Some(std::mem::replace(buf, rest))
}

/// Applies the armed faults to one frame; `false` means the connection was
/// sacrificed and the pump must exit.
fn forward_frame(
    mut frame: Vec<u8>,
    src: &mut TcpStream,
    dst: &mut TcpStream,
    state: &ProxyState,
) -> bool {
    if ProxyState::take(&state.drop_next) {
        state.counters.frames_dropped.fetch_add(1, Ordering::AcqRel);
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
        return false;
    }
    let delay = state.delay_ms.load(Ordering::Acquire);
    if delay > 0 {
        std::thread::sleep(Duration::from_millis(delay));
    }
    if ProxyState::take(&state.corrupt_next) {
        // Flip a payload byte (never the length field: mis-framing would
        // turn one bad frame into an unbounded read, which is a different
        // failure than the checksum rejection being exercised here).
        let idx = 8 + (frame.len() - 8) / 2;
        frame[idx] ^= 0x40;
        state
            .counters
            .frames_corrupted
            .fetch_add(1, Ordering::AcqRel);
    }
    let dup = ProxyState::take(&state.duplicate_next);
    if dup {
        state
            .counters
            .frames_duplicated
            .fetch_add(1, Ordering::AcqRel);
    }
    for _ in 0..if dup { 2 } else { 1 } {
        if dst.write_all(&frame).is_err() {
            let _ = src.shutdown(Shutdown::Both);
            return false;
        }
    }
    state
        .counters
        .frames_forwarded
        .fetch_add(1, Ordering::AcqRel);
    true
}
