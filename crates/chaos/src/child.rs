//! A primary server in a separate, killable process.
//!
//! Graceful shutdown is not a crash: an in-parent `ServerHandle::shutdown`
//! runs destructors, flushes buffers and closes sockets politely. The
//! durability invariant ("no acked commit is lost") is only meaningful
//! against `SIGABRT` — the process dies mid-whatever with no cleanup, and
//! whatever was acknowledged must still be on the surviving replica.
//!
//! The child is the test binary itself re-executed: [`ChildPrimary::spawn`]
//! launches `current_exe() --exact child_primary_main`, and the test file
//! must define that test as a one-liner:
//!
//! ```ignore
//! #[test]
//! fn child_primary_main() {
//!     ifdb_chaos::child::run_child_from_env();
//! }
//! ```
//!
//! Run normally (no [`ENV_ROLE`] in the environment) the test is a no-op.
//! Run as a spawned child it builds the standard chaos fixture
//! ([`crate::cluster::build_primary_fixture`]), serves it with replication
//! and the requested semi-sync window, writes its address to the
//! parent-named file, and parks forever — until the parent kills it.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ifdb_server::{start, Backend, ServerConfig};

use crate::cluster::{build_primary_fixture, REPL_SECRET};

/// Marks the process as a chaos child; value is the role (only
/// `"primary"` today).
pub const ENV_ROLE: &str = "IFDB_CHAOS_CHILD";
/// File the child writes its listen address to.
pub const ENV_ADDR_FILE: &str = "IFDB_CHAOS_ADDR_FILE";
/// The authority seed (decimal u64).
pub const ENV_SEED: &str = "IFDB_CHAOS_SEED_U64";
/// Semi-sync window in milliseconds; 0 or absent = asynchronous.
pub const ENV_SYNC_MS: &str = "IFDB_CHAOS_SYNC_MS";

/// The child-process entry point; see the module docs. Returns `false`
/// immediately when the process is not a spawned chaos child (the normal
/// test run), and never returns otherwise.
pub fn run_child_from_env() -> bool {
    let Ok(role) = std::env::var(ENV_ROLE) else {
        return false;
    };
    assert_eq!(role, "primary", "unknown chaos child role {role:?}");
    let addr_file = std::env::var(ENV_ADDR_FILE).expect("chaos child needs an address file");
    let seed: u64 = std::env::var(ENV_SEED)
        .expect("chaos child needs a seed")
        .parse()
        .expect("seed must be a u64");
    let sync_ms: u64 = std::env::var(ENV_SYNC_MS)
        .unwrap_or_default()
        .parse()
        .unwrap_or(0);

    let fixture = build_primary_fixture(seed);
    let server = start(
        fixture.db.clone(),
        fixture.auth.clone(),
        ServerConfig {
            backend: Backend::Reactor,
            workers: 8,
            replication_secret: Some(REPL_SECRET.into()),
            sync_replication: (sync_ms > 0).then(|| Duration::from_millis(sync_ms)),
            ..ServerConfig::default()
        },
    )
    .expect("chaos child server");

    // Write-then-rename so the parent never reads a half-written address.
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, server.addr().to_string()).expect("write address file");
    std::fs::rename(&tmp, &addr_file).expect("publish address file");

    loop {
        std::thread::park();
    }
}

/// A spawned child primary.
pub struct ChildPrimary {
    child: Mutex<Child>,
    killed: AtomicBool,
    addr: String,
    addr_file: PathBuf,
}

impl ChildPrimary {
    /// Spawns the current test binary as a child primary and waits for it
    /// to publish its address. `sync_replication` maps to
    /// `ServerConfig::sync_replication` in the child.
    pub fn spawn(seed: u64, sync_replication: Option<Duration>) -> std::io::Result<ChildPrimary> {
        let exe = std::env::current_exe()?;
        let addr_file = std::env::temp_dir().join(format!(
            "ifdb-chaos-addr-{}-{seed}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or_default()
        ));
        let _ = std::fs::remove_file(&addr_file);
        let mut child = Command::new(exe)
            .args([
                "--exact",
                "child_primary_main",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(ENV_ROLE, "primary")
            .env(ENV_ADDR_FILE, &addr_file)
            .env(ENV_SEED, seed.to_string())
            .env(
                ENV_SYNC_MS,
                sync_replication
                    .map_or(0, |d| d.as_millis() as u64)
                    .to_string(),
            )
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;

        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                let addr = addr.trim().to_string();
                if !addr.is_empty() {
                    break addr;
                }
            }
            if let Some(status) = child.try_wait()? {
                return Err(std::io::Error::other(format!(
                    "chaos child exited before publishing its address: {status}"
                )));
            }
            if Instant::now() >= deadline {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::other(
                    "chaos child did not publish its address in time",
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        Ok(ChildPrimary {
            child: Mutex::new(child),
            killed: AtomicBool::new(false),
            addr,
            addr_file,
        })
    }

    /// The child server's listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kills the child with `SIGABRT` — no destructors, no flushes — and
    /// reaps it. Idempotent.
    pub fn kill_abrt(&self) {
        if self.killed.swap(true, Ordering::AcqRel) {
            return;
        }
        let mut child = self.child.lock().expect("child handle");
        let pid = child.id().to_string();
        let aborted = Command::new("kill")
            .args(["-ABRT", &pid])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !aborted {
            // No `kill` binary (or it failed): fall back to SIGKILL, which
            // is an even less polite death.
            let _ = child.kill();
        }
        let _ = child.wait();
    }

    /// Whether the child process is still running.
    pub fn alive(&self) -> bool {
        if self.killed.load(Ordering::Acquire) {
            return false;
        }
        matches!(
            self.child.lock().expect("child handle").try_wait(),
            Ok(None)
        )
    }
}

impl Drop for ChildPrimary {
    fn drop(&mut self) {
        if !self.killed.swap(true, Ordering::AcqRel) {
            let mut child = self.child.lock().expect("child handle");
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.addr_file);
    }
}
