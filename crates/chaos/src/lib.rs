//! Chaos / fault-injection harness for the IFDB reproduction.
//!
//! PR 8 proves the high-availability machinery — replica promotion, write
//! failover, generation fencing — not with happy-path unit tests but by
//! torturing a live cluster and asserting invariants afterwards. This crate
//! generalizes the byte-corrupting proxy that earlier replication tests
//! hand-rolled into a reusable harness:
//!
//! * [`proxy::FaultProxy`] — a **frame-aware** TCP proxy that injects
//!   faults at wire-frame granularity: drop, delay, duplicate or corrupt
//!   individual frames, partition the link, or sever live connections.
//! * [`child::ChildPrimary`] — a primary server running in a **separate
//!   process**, killable with `SIGABRT` (no destructors, no flushes: a real
//!   crash, not a polite shutdown).
//! * [`schedule::FaultSchedule`] — deterministic, seed-logged fault
//!   scenarios. Every generated schedule prints its seed; a failing seed
//!   prints a one-line replay command, and [`schedule::check_with_shrinking`]
//!   greedily minimizes a failing schedule before reporting it.
//! * [`journal::CommitJournal`] — the invariant checker. Every write the
//!   load generator sends is journaled with its acknowledgement outcome;
//!   after the dust settles the journal is checked against the surviving
//!   nodes: **no acked commit may be lost, no determinately-refused write
//!   may resurrect, and label-filtered visibility must hold on every node**
//!   (the paper's DIFC guarantees do not get a failover exemption).
//! * [`cluster`] — fixtures: a small TPC-C database with DIFC state that
//!   primaries, replicas and child processes re-create identically, plus a
//!   watchdog that promotes a replica when the primary stops answering.
//! * [`load`] — a journaling load generator: live network TPC-C plus
//!   journal-marker writes through failover-enabled routed connections.
//! * [`scenario`] — the assembled end-to-end kill/failover scenario shared
//!   by the property test, the scripted CI scenario and the benchmark.
//!
//! The integration tests under `tests/` are the PR's acceptance proof; the
//! same scenarios run in CI with pinned seeds.

pub mod child;
pub mod cluster;
pub mod journal;
pub mod load;
pub mod proxy;
pub mod scenario;
pub mod schedule;

pub use child::ChildPrimary;
pub use cluster::{HaCluster, PrimaryFixture, Watchdog, REPL_SECRET, SEED};
pub use journal::{Ack, CommitJournal, JournalEntry};
pub use load::{run_chaos_load, ChaosLoadConfig, ChaosLoadOutcome};
pub use proxy::{FaultProxy, ProxyStats};
pub use scenario::{run_kill_failover_scenario, scenario_passes, ScenarioConfig, ScenarioReport};
pub use schedule::{check_with_shrinking, Fault, FaultEvent, FaultSchedule};
