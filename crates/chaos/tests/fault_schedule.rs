//! Satellite 3: the property test. Randomized, seed-logged fault schedules
//! run against a live cluster (child-process primary under semi-sync
//! replication, real network TPC-C load), and the commit journal is checked
//! against the survivors. A failing seed prints a one-line replay command;
//! the failing schedule is greedily shrunk to a minimal counterexample
//! first.
//!
//! Replay a failure with the printed command, e.g.:
//!
//! ```text
//! IFDB_CHAOS_SCHEDULE_SEED=0xc0ffee cargo test -p ifdb-chaos --test fault_schedule -- --nocapture
//! ```

use std::time::Duration;

use ifdb_chaos::schedule::SCHEDULE_SEED_ENV;
use ifdb_chaos::{check_with_shrinking, scenario_passes, FaultSchedule, ScenarioConfig};

/// Child-process entry point; a no-op in a normal test run (see
/// `ifdb_chaos::child`).
#[test]
fn child_primary_main() {
    ifdb_chaos::child::run_child_from_env();
}

/// The schedule window faults and kills are drawn from.
const SPAN: Duration = Duration::from_secs(3);

/// Default seeds when no replay seed is given: one schedule that kills the
/// primary mid-run, one that only tortures the wire. The kill decision is
/// derived from the seed's parity so a bare replay seed reproduces the
/// whole schedule.
const DEFAULT_SEEDS: [u64; 2] = [0x00C0_FFEE, 0x0DD_BA11];

fn schedule_for_seed(seed: u64) -> FaultSchedule {
    FaultSchedule::random(seed, SPAN, seed.is_multiple_of(2))
}

#[test]
fn randomized_fault_schedules_preserve_commit_invariants() {
    let seeds: Vec<u64> = match std::env::var(SCHEDULE_SEED_ENV) {
        Ok(raw) => {
            let raw = raw.trim();
            let seed = raw
                .strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| raw.parse())
                .unwrap_or_else(|e| panic!("bad {SCHEDULE_SEED_ENV} {raw:?}: {e}"));
            vec![seed]
        }
        Err(_) => DEFAULT_SEEDS.to_vec(),
    };

    let config = ScenarioConfig::default();
    for seed in seeds {
        let schedule = schedule_for_seed(seed);
        eprintln!("chaos schedule seed {seed:#x}: {:?}", schedule.events);
        if let Err((minimal, violations)) =
            check_with_shrinking(&schedule, |s| scenario_passes(s, &config))
        {
            panic!(
                "invariants violated under fault schedule (seed {seed:#x}).\n\
                 minimal failing schedule: {:?}\n\
                 violations:\n  {}\n\
                 replay: {}",
                minimal.events,
                violations.join("\n  "),
                minimal.replay_command("fault_schedule"),
            );
        }
    }
}
