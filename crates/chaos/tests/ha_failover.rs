//! In-parent high-availability tests: the promotion lifecycle, generation
//! fencing of deposed (and zombie) primaries, semi-synchronous commit
//! acknowledgement, and router write-failover with the read-your-writes
//! barrier across an epoch change.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::prelude::*;
use ifdb::SessionApi;
use ifdb_chaos::cluster::{start_replica_node, tpcc_client};
use ifdb_chaos::journal::read_journal_ids;
use ifdb_chaos::{FaultProxy, HaCluster, SEED};
use ifdb_client::protocol::{read_frame_id, write_frame_id, HaRole, Request, Response};
use ifdb_client::{Connection, RoutedConnection, RouterConfig};
use ifdb_server::Backend;

fn journal_insert(id: i64) -> Insert {
    Insert::new(
        "chaos_journal",
        vec![Datum::Int(id), Datum::Int(0), Datum::Int(0)],
    )
}

/// Promotion end to end: the replica leaves read-only mode under a bumped
/// generation, serves writes, reports `Primary`, and the deposed primary is
/// fenced — refusing writes with `FENCED` — while promotion stays
/// idempotent.
#[test]
fn promotion_serves_writes_and_fences_the_old_primary() {
    let cluster = HaCluster::start(SEED, 1, None, Backend::Reactor);
    let paddr = cluster.primary_addr();
    let label = cluster.fixture.tpcc_label.clone();

    let mut on_primary = Connection::connect(&tpcc_client(&paddr, &label)).unwrap();
    on_primary.insert(&journal_insert(1)).unwrap();
    assert!(cluster.wait_caught_up(Duration::from_secs(5)));

    let generation = cluster.replicas[0].promote().expect("promotion");
    assert_eq!(generation, 2, "first promotion bumps generation 1 -> 2");
    // Idempotent: a second request reports the same success.
    assert_eq!(cluster.replicas[0].promote().unwrap(), 2);

    // The promoted node serves writes and reports Primary.
    let raddr = cluster.replicas[0].addr().to_string();
    let mut on_successor = Connection::connect(&tpcc_client(&raddr, &label)).unwrap();
    let status = on_successor.ha_status().unwrap();
    assert_eq!(status.role, HaRole::Primary);
    assert_eq!(status.generation, 2);
    on_successor.insert(&journal_insert(2)).unwrap();
    let mut ids = read_journal_ids(&mut on_successor).unwrap();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2], "pre-promotion row survives, new row lands");

    // The deposed primary was fenced by the promotion and refuses writes.
    let status = on_primary.ha_status().unwrap();
    assert_eq!(status.role, HaRole::Fenced, "old primary must be fenced");
    let err = on_primary.insert(&journal_insert(3)).unwrap_err();
    assert!(
        ifdb_client::is_fenced_error(&err),
        "refusal is FENCED: {err}"
    );
    // Reads are refused too: the fenced node's unreplicated tail may
    // diverge from the successor's timeline, so nothing is served from it.
    let err = read_journal_ids(&mut on_primary).unwrap_err();
    assert!(
        ifdb_client::is_fenced_error(&err),
        "reads refuse FENCED: {err}"
    );

    on_primary.close().unwrap();
    on_successor.close().unwrap();
    cluster.shutdown();
}

/// Semi-synchronous replication: with the replica gone, a commit is
/// acknowledged only as *indeterminate* (`REPLICATION_LAG`) — durable
/// locally, unconfirmed remotely — after the configured window.
#[test]
fn semi_sync_commit_is_indeterminate_without_a_replica() {
    let window = Duration::from_millis(300);
    let mut cluster = HaCluster::start(SEED, 1, Some(window), Backend::Reactor);
    let paddr = cluster.primary_addr();
    let label = cluster.fixture.tpcc_label.clone();
    assert!(cluster.wait_caught_up(Duration::from_secs(5)));

    let mut conn = Connection::connect(&tpcc_client(&paddr, &label)).unwrap();
    // With the replica connected, acks flow.
    conn.insert(&journal_insert(1)).unwrap();

    cluster.replicas.remove(0).shutdown();
    let started = Instant::now();
    let err = conn.insert(&journal_insert(2)).unwrap_err();
    assert!(
        started.elapsed() >= window - Duration::from_millis(50),
        "the gate must wait out the window"
    );
    assert!(
        ifdb_client::is_indeterminate_commit_error(&err),
        "unconfirmed commit is indeterminate, not a plain failure: {err}"
    );
    // Indeterminate means durable-but-unconfirmed: the row exists locally.
    let mut ids = read_journal_ids(&mut conn).unwrap();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2]);

    conn.close().unwrap();
    cluster.shutdown();
}

/// A fake old primary that never fences itself: it answers every
/// `ReplPoll` with an empty batch stamped generation 1 — the divergent
/// tail of a deposed node that keeps serving. Real primaries self-fence
/// when a poll advertises a higher generation; the zombie ignores it.
struct ZombiePrimary {
    addr: String,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ZombiePrimary {
    fn start() -> ZombiePrimary {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let thread = std::thread::spawn(move || {
            while !loop_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_stop = loop_stop.clone();
                        std::thread::spawn(move || serve_zombie(stream, conn_stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        ZombiePrimary {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_zombie(mut stream: std::net::TcpStream, stop: Arc<AtomicBool>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    while !stop.load(Ordering::Acquire) {
        let (req_id, payload) = match read_frame_id(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e)
                if e.to_string().contains("timed out") || e.to_string().contains("would block") =>
            {
                continue;
            }
            Err(_) => return,
        };
        let Ok(Request::ReplPoll { from_seq, .. }) = Request::decode(&payload) else {
            return;
        };
        // A stale-generation batch claiming fresh records: the replica must
        // refuse it *before* looking at epochs or reset flags.
        let batch = Response::ReplBatch {
            epoch: 0xDEAD_BEEF,
            generation: 1,
            reset: true,
            first_seq: from_seq,
            end_seq: from_seq + 100,
            records: Vec::new(),
        };
        if write_frame_id(&mut stream, req_id, &batch.encode()).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

/// Satellite 1 (regression): a replica that has learned generation 2 must
/// reject batches from a lower-generation primary — the zombie that kept
/// serving after its successor was promoted — without resetting or
/// applying anything.
#[test]
fn zombie_primary_batches_are_rejected_after_promotion() {
    let cluster = HaCluster::start(SEED, 1, None, Backend::Reactor);
    let label = cluster.fixture.tpcc_label.clone();
    assert!(cluster.wait_caught_up(Duration::from_secs(5)));

    // Promote the replica, but aim its fence message at a dead address so
    // the old primary stays an unfenced zombie (the lost-fence scenario).
    cluster.replicas[0].set_primary("127.0.0.1:1");
    cluster.replicas[0].promote().expect("promotion");
    let successor_addr = cluster.replicas[0].addr().to_string();

    // The zombie is not fenced and still takes writes: split brain at the
    // old primary. Nothing downstream may ever apply this write.
    let paddr = cluster.primary_addr();
    let mut on_zombie = Connection::connect(&tpcc_client(&paddr, &label)).unwrap();
    on_zombie.insert(&journal_insert(901)).unwrap();
    on_zombie.close().unwrap();

    // A second-tier replica syncs from the promoted successor through a
    // retargetable proxy and learns generation 2 from the stream.
    let proxy = FaultProxy::start(&successor_addr).unwrap();
    let r2 = start_replica_node(proxy.addr(), SEED);
    let mut on_successor = Connection::connect(&tpcc_client(&successor_addr, &label)).unwrap();
    on_successor.insert(&journal_insert(902)).unwrap();
    let successor_seq = cluster.replicas[0].database().engine().wal().last_seq();
    assert!(
        r2.wait_for_seq(successor_seq, Duration::from_secs(5)),
        "r2 catch-up to seq {successor_seq}: {:?}",
        r2.stats()
    );
    let mut on_r2 = Connection::connect(&tpcc_client(&r2.addr().to_string(), &label)).unwrap();
    assert_eq!(on_r2.ha_status().unwrap().generation, 2);

    // Re-point the proxy at a mock zombie and sever: the replica reconnects
    // into stale-generation batches and must refuse every one.
    let zombie = ZombiePrimary::start();
    proxy.retarget(&zombie.addr);
    proxy.sever();
    let deadline = Instant::now() + Duration::from_secs(5);
    while r2.stats().stale_batches_rejected == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        r2.stats().stale_batches_rejected > 0,
        "the stale-generation batch must be counted as rejected: {:?}",
        r2.stats()
    );

    // The replica's data is exactly the successor's timeline: the
    // post-promotion write is there, the zombie's split-brain write is not,
    // and the zombie's `reset: true` flag wiped nothing.
    let mut ids = read_journal_ids(&mut on_r2).unwrap();
    ids.sort_unstable();
    assert_eq!(ids, vec![902], "successor timeline only, no zombie effects");

    on_r2.close().unwrap();
    on_successor.close().unwrap();
    zombie.stop();
    proxy.shutdown();
    r2.shutdown();
    cluster.shutdown();
}

/// Satellite 2 + tentpole: router write failover across a primary crash.
/// The first write after the crash adopts the promoted successor (and is
/// retried there when the old primary's refusal was provably effect-free);
/// the next write lands there. The read-your-writes barrier must not be
/// satisfied by a watermark taken under the old epoch: reads after failover
/// fall back to the new primary (returning the new write) instead of
/// trusting a stale replica, and replica reads resume once the survivor
/// re-syncs on the new timeline.
#[test]
fn router_failover_resets_the_read_your_writes_barrier() {
    let mut cluster = HaCluster::start(SEED, 2, None, Backend::Reactor);
    let paddr = cluster.primary_addr();
    let label = cluster.fixture.tpcc_label.clone();
    assert!(cluster.wait_caught_up(Duration::from_secs(5)));

    let mut config = RouterConfig::new(
        tpcc_client(&paddr, &label),
        vec![
            tpcc_client(&cluster.replicas[0].addr().to_string(), &label),
            tpcc_client(&cluster.replicas[1].addr().to_string(), &label),
        ],
    );
    // A generous staleness bound: if a stale-epoch watermark wrongly
    // satisfied the barrier, the wrong data would come back instantly; if
    // the barrier wrongly *stalled*, the read would take these full 10s.
    config.staleness_timeout = Duration::from_secs(10);
    config.failover_timeout = Duration::from_secs(5);
    let mut router = RoutedConnection::connect(&config).unwrap();

    router.insert(&journal_insert(10)).unwrap();
    assert!(cluster.wait_caught_up(Duration::from_secs(5)));

    // Crash the primary and promote replica 0; replica 1 is re-pointed at
    // the successor (the orchestrator's job, here done by hand).
    cluster.stop_primary();
    let successor_addr = cluster.replicas[0].addr().to_string();
    cluster.replicas[1].set_primary(&successor_addr);
    cluster.replicas[0].promote().expect("promotion");

    // First write after the crash: the old primary's refusal is either a
    // determinate SHUTTING_DOWN notice (graceful teardown raced the write;
    // provably no effect → the router retries it on the successor and the
    // insert just works) or a transport death (indeterminate → surfaced).
    // Both adopt the promoted successor.
    match router.insert(&journal_insert(11)) {
        Ok(_) => {}
        Err(err) => assert!(
            ifdb_client::is_indeterminate_commit_error(&err),
            "a write that died with the primary is indeterminate: {err}"
        ),
    }
    assert_eq!(router.stats().failovers, 1, "successor adopted");

    // Next write: exactly-once onto the successor.
    router.insert(&journal_insert(12)).unwrap();

    // Read immediately: the barrier now lives on the successor's timeline.
    // Replica 1 may still be on the old epoch or mid-resync; the router
    // must fall back to the new primary, not stall and not serve stale.
    let started = Instant::now();
    let rows = router
        .select(&Select::star("chaos_journal"))
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| match r.values.first() {
            Some(Datum::Int(id)) => Some(*id),
            _ => None,
        })
        .collect::<Vec<i64>>();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the old-epoch watermark must not stall the barrier"
    );
    assert!(rows.contains(&10) && rows.contains(&12), "{rows:?}");

    // Once the survivor re-syncs on the new timeline, replica reads resume
    // and stay label-correct.
    let successor_seq = cluster.replicas[0].database().engine().wal().last_seq();
    assert!(cluster.replicas[1].wait_for_seq(successor_seq, Duration::from_secs(5)));
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut served_by_replica = false;
    while Instant::now() < deadline {
        let rows = router.select(&Select::star("chaos_journal")).unwrap();
        assert!(rows.rows.len() >= 2);
        if router.stats().reads_on_replica > 0 {
            served_by_replica = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        served_by_replica,
        "replica reads resume on the new timeline"
    );

    router.close().unwrap();
    cluster.shutdown();
}
