//! The scripted failover scenario CI runs on every push: a hand-written,
//! fully deterministic fault schedule (wire corruption, a short partition,
//! then `SIGABRT` of the primary process mid-load) with hard assertions on
//! the outcome — zero invariant violations, a detected-and-promoted
//! successor, post-failover progress, and a bounded unavailability window.
//!
//! The randomized sibling (`fault_schedule`) explores; this test pins one
//! known-interesting schedule so CI failures bisect to a code change, not
//! to a seed.

use std::time::Duration;

use ifdb_chaos::{run_kill_failover_scenario, Fault, FaultEvent, FaultSchedule, ScenarioConfig};

/// Child-process entry point; a no-op in a normal test run (see
/// `ifdb_chaos::child`).
#[test]
fn child_primary_main() {
    ifdb_chaos::child::run_child_from_env();
}

#[test]
fn scripted_kill_failover_keeps_every_invariant() {
    let schedule = FaultSchedule {
        seed: 0,
        events: vec![
            // Soften the cluster up first: checksum-detected corruption and
            // a real partition, both fully healed before the kill — any
            // invariant violation is attributable to the failover itself.
            FaultEvent {
                at_millis: 500,
                fault: Fault::CorruptFrames { n: 2 },
            },
            FaultEvent {
                at_millis: 800,
                fault: Fault::Partition { millis: 250 },
            },
            FaultEvent {
                at_millis: 1500,
                fault: Fault::KillPrimary,
            },
        ],
    };
    let config = ScenarioConfig {
        load_duration: Duration::from_millis(4500),
        ..ScenarioConfig::default()
    };

    let report = run_kill_failover_scenario(&schedule, &config).expect("scenario runs");
    let (acked, refused, indeterminate) = report.outcome.journal.counts();
    eprintln!(
        "scripted failover: acked={acked} refused={refused} indeterminate={indeterminate} \
         tpcc_committed={} failovers={} reconnects={} max_unavailability={:?}",
        report.outcome.tpcc_committed,
        report.outcome.failovers,
        report.outcome.reconnects,
        report.outcome.max_unavailability,
    );

    assert!(
        report.violations.is_empty(),
        "invariant violations:\n  {}",
        report.violations.join("\n  ")
    );
    assert!(report.watchdog_fired, "the kill must be detected");
    assert_eq!(
        report.survivor_addrs.len(),
        1,
        "the promoted replica is the sole survivor"
    );
    assert!(acked > 0, "the run must make progress at all");
    assert!(
        report.outcome.failovers >= 1,
        "at least one router must adopt the promoted successor"
    );
    // Post-failover progress: the kill lands at 1.5s of a 4.5s run. If no
    // write were acknowledged after it, the open gap at run end (~3s)
    // would blow this bound.
    assert!(
        report.outcome.max_unavailability < Duration::from_millis(2500),
        "unavailability window too long: {:?}",
        report.outcome.max_unavailability
    );
}
