//! Satellite 4: the 2PC × failover matrix. A coordinator dies between
//! prepare and decide; a participant shard's primary fails over with the
//! transaction still in doubt; successor-driven resolution must reach one
//! consistent global outcome. Run for both server backends.
//!
//! * **Presumed abort** — the coordinator dies after collecting prepares
//!   but before any decide. No participant can have committed, so recovery
//!   aborts everywhere and the branches' effects never appear.
//! * **Decided commit, participant failover** — the coordinator delivered
//!   the commit decision to one shard and then died; the other shard's
//!   primary is lost and a replica is promoted. The prepared branch rides
//!   the replication stream and the promotion image, so the successor
//!   reports it in doubt; [`RoutedConnection::resolve_in_doubt`] finds the
//!   recorded commit on the surviving shard and completes the branch on the
//!   successor — the transaction commits *everywhere* even though the node
//!   that prepared it no longer exists.

use std::sync::Arc;
use std::time::Duration;

use ifdb::prelude::*;
use ifdb::SessionApi;
use ifdb_chaos::cluster::tpcc_client;
use ifdb_chaos::journal::read_journal_ids;
use ifdb_chaos::{HaCluster, SEED};
use ifdb_client::shard::ShardMap;
use ifdb_client::{Connection, RoutedConnection, RouterConfig};
use ifdb_server::Backend;

const ABORTED_GID: u64 = 42;
const COMMITTED_GID: u64 = 43;

fn journal_insert(id: i64) -> Insert {
    Insert::new(
        "chaos_journal",
        vec![Datum::Int(id), Datum::Int(0), Datum::Int(0)],
    )
}

/// Opens a session on `addr`, runs one transaction branch up to the
/// prepare, and abandons the connection — the coordinator's crash.
fn prepare_branch(addr: &str, label: &[TagId], id: i64, gid: u64) -> Connection {
    let mut conn = Connection::connect(&tpcc_client(addr, label)).unwrap();
    conn.begin().unwrap();
    conn.insert(&journal_insert(id)).unwrap();
    conn.txn_prepare(gid).unwrap();
    conn
}

fn sorted_ids(addr: &str, label: &[TagId]) -> Vec<i64> {
    let mut conn = Connection::connect(&tpcc_client(addr, label)).unwrap();
    let mut ids = read_journal_ids(&mut conn).unwrap();
    let _ = conn.close();
    ids.sort_unstable();
    ids
}

fn run_matrix(backend: Backend) {
    // Shard A gets a replica (it will fail over mid-transaction); shard B
    // is a plain primary that survives.
    let mut shard_a = HaCluster::start(SEED, 1, None, backend);
    let shard_b = HaCluster::start(SEED, 0, None, backend);
    let a_addr = shard_a.primary_addr();
    let b_addr = shard_b.primary_addr();
    let label = shard_a.fixture.tpcc_label.clone();

    // --- Variant A: coordinator dies between prepare and decide. --------
    // The branches survive the coordinator's connections: both shards
    // report the gid in doubt with no outcome.
    drop(prepare_branch(&a_addr, &label, 7001, ABORTED_GID));
    drop(prepare_branch(&b_addr, &label, 7101, ABORTED_GID));
    for addr in [&a_addr, &b_addr] {
        let mut conn = Connection::connect(&tpcc_client(addr, &label)).unwrap();
        assert_eq!(conn.txn_recover().unwrap(), vec![ABORTED_GID]);
        assert_eq!(conn.txn_outcome(ABORTED_GID).unwrap(), None);
        // No participant learned a commit: presumed abort.
        conn.txn_decide(ABORTED_GID, false).unwrap();
        assert_eq!(conn.txn_recover().unwrap(), Vec::<u64>::new());
        assert!(
            !read_journal_ids(&mut conn).unwrap().contains(&7001)
                && !read_journal_ids(&mut conn).unwrap().contains(&7101),
            "an aborted branch's effects must never appear"
        );
        conn.close().unwrap();
    }

    // --- Variant B: decided commit + participant failover. --------------
    drop(prepare_branch(&a_addr, &label, 7002, COMMITTED_GID));
    drop(prepare_branch(&b_addr, &label, 7102, COMMITTED_GID));
    // The coordinator delivered the commit decision to shard B only, then
    // died.
    {
        let mut conn = Connection::connect(&tpcc_client(&b_addr, &label)).unwrap();
        conn.txn_decide(COMMITTED_GID, true).unwrap();
        conn.close().unwrap();
    }

    // Shard A's primary dies with the branch prepared; the replica (which
    // received the prepared branch over the replication stream) is
    // promoted and must still report it in doubt.
    assert!(shard_a.wait_caught_up(Duration::from_secs(5)));
    shard_a.stop_primary();
    shard_a.replicas[0].promote().expect("promotion");
    let successor_addr = shard_a.replicas[0].addr().to_string();
    {
        let mut conn = Connection::connect(&tpcc_client(&successor_addr, &label)).unwrap();
        assert_eq!(
            conn.txn_recover().unwrap(),
            vec![COMMITTED_GID],
            "the prepared branch must survive promotion"
        );
        assert_eq!(conn.txn_outcome(COMMITTED_GID).unwrap(), None);
        conn.close().unwrap();
    }

    // Successor-driven resolution through the real client path: the
    // resolver finds shard B's recorded commit and completes the branch on
    // the promoted successor.
    let config = RouterConfig::sharded(
        Arc::new(ShardMap::new(2)),
        vec![
            tpcc_client(&successor_addr, &label),
            tpcc_client(&b_addr, &label),
        ],
    );
    let mut resolver = RoutedConnection::connect(&config).unwrap();
    assert_eq!(
        resolver.resolve_in_doubt().unwrap(),
        vec![(COMMITTED_GID, true)],
        "one consistent global outcome: commit"
    );
    assert_eq!(resolver.stats().in_doubt_resolved, 1);
    resolver.close().unwrap();

    // The committed branch is visible on both shards; nothing is in doubt
    // anywhere; the aborted branch stayed aborted across the failover.
    assert_eq!(sorted_ids(&successor_addr, &label), vec![7002]);
    assert_eq!(sorted_ids(&b_addr, &label), vec![7102]);
    for addr in [&successor_addr, &b_addr] {
        let mut conn = Connection::connect(&tpcc_client(addr, &label)).unwrap();
        assert_eq!(conn.txn_recover().unwrap(), Vec::<u64>::new());
        conn.close().unwrap();
    }

    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn two_phase_failover_matrix_reactor() {
    run_matrix(Backend::Reactor);
}

#[test]
fn two_phase_failover_matrix_thread_pool() {
    run_matrix(Backend::ThreadPool);
}
