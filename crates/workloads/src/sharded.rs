//! Sharded multi-warehouse TPC-C: the PR 7 write-scaling workload.
//!
//! The nine-table schema partitions naturally by warehouse: every table
//! except `item` carries the warehouse id as its leading column, so one
//! [`ShardMap`] entry per table (all sharing the warehouse ranges) routes
//! the whole mix, and `item` — a read-only catalog — is loaded on every
//! shard and marked replicated.
//!
//! Each terminal drives a shard-aware [`RoutedConnection`] and (when
//! pinned, the DBT-2 configuration) works a fixed home warehouse. Four of
//! the five transaction types stay within one warehouse and therefore
//! commit on the single-shard fast path (plain `Begin`/`Commit`). A configurable
//! fraction of new-order transactions orders stock from a warehouse on a
//! *different shard* — the TPC-C remote-supplier shape — and those commit
//! via two-phase commit across the two shards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::IfdbResult;
use ifdb_client::shard::ShardMap;
use ifdb_client::{ClientConfig, RoutedConnection, RouterConfig};
use ifdb_difc::TagId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tpcc::{
    run_new_order_with_supply, run_transaction_at, run_transaction_on, TpccConfig, TpccDatabase,
    TpccDeck, TpccTransaction, WarehouseRange,
};

/// The shard map for the TPC-C schema: warehouses `1..=warehouses` split
/// into contiguous ranges over `shards` nodes, every warehouse-keyed table
/// partitioned on those ranges, and the `item` catalog replicated.
pub fn tpcc_shard_map(warehouses: i64, shards: usize) -> ShardMap {
    let ranges = ShardMap::contiguous_ranges(1, warehouses, shards);
    let mut map = ShardMap::new(shards);
    for (table, column) in [
        ("warehouse", "w_id"),
        ("district", "d_w_id"),
        ("customer", "c_w_id"),
        ("history", "h_w_id"),
        ("stock", "s_w_id"),
        ("orders", "o_w_id"),
        ("new_order", "no_w_id"),
        ("order_line", "ol_w_id"),
    ] {
        map = map.shard_table(table, column, 0, ranges.clone());
    }
    map.replicate_table("item")
}

/// The warehouse slice `shard` owns under `map` (empty when the shard owns
/// no warehouses).
pub fn shard_warehouses(map: &ShardMap, shard: usize) -> WarehouseRange {
    map.table_sharding("warehouse")
        .and_then(|s| s.ranges.iter().find(|r| r.shard == shard))
        .map(|r| WarehouseRange { lo: r.lo, hi: r.hi })
        .unwrap_or(WarehouseRange { lo: 1, hi: 0 })
}

/// Loads shard `shard`'s slice of the global TPC-C database into `db`:
/// its warehouse range plus the full replicated `item` catalog.
pub fn load_shard(
    db: ifdb::Database,
    config: &TpccConfig,
    map: &ShardMap,
    shard: usize,
) -> IfdbResult<TpccDatabase> {
    TpccDatabase::load_warehouse_range(db, config.clone(), shard_warehouses(map, shard))
}

/// Configuration of a sharded network TPC-C run.
#[derive(Debug, Clone)]
pub struct ShardedTpccConfig {
    /// One `ifdb-server` address per shard, in shard-id order.
    pub addrs: Vec<String>,
    /// The benchmark principal's user name (must exist on every shard).
    pub user: String,
    /// That user's password.
    pub password: String,
    /// The label every terminal raises on every shard connection (tag ids
    /// must agree across shards — load the shards identically).
    pub label: Vec<TagId>,
    /// Scale parameters of the loaded cluster (`warehouses` is the global
    /// count across all shards).
    pub tpcc: TpccConfig,
    /// Fraction of new-order transactions supplied by a warehouse on a
    /// different shard (those commit via two-phase commit). TPC-C's remote
    /// rate is about 10%.
    pub cross_warehouse_ratio: f64,
    /// Concurrent terminals, each its own [`RoutedConnection`].
    pub connections: usize,
    /// Pin each terminal to a home warehouse (round-robin over the
    /// warehouses), as DBT-2 configures its terminals. Pinning spreads the
    /// closed-loop load evenly over the shards; unpinned terminals draw a
    /// fresh warehouse per transaction, which is what the single-server
    /// fast-path A/B wants (the same workload a plain connection runs).
    pub pin_terminals: bool,
    /// How long to run.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
}

/// The outcome of a sharded run: throughput plus the router's commit-path
/// breakdown summed over all terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardedOutcomeCounters {
    /// Transactions committed on the single-shard fast path.
    pub single_shard_commits: u64,
    /// Cross-shard transactions committed via two-phase commit.
    pub distributed_commits: u64,
    /// Cross-shard transactions aborted by a participant's no vote.
    pub distributed_aborts: u64,
}

/// The outcome of a sharded network TPC-C run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedDriverOutcome {
    /// New-order transactions committed per minute, cluster-wide.
    pub notpm: f64,
    /// Total transactions committed (all five types).
    pub committed: u64,
    /// Transactions rolled back due to write conflicts (or refused votes).
    pub conflicts: u64,
    /// Terminals that failed to connect or died mid-run.
    pub terminal_errors: u64,
    /// Router commit-path counters summed over the terminals.
    pub counters: ShardedOutcomeCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Picks a supplying warehouse on a different shard than `home_w`, or
/// `home_w` itself when no other shard owns warehouses.
fn remote_supply_warehouse(
    map: &ShardMap,
    config: &TpccConfig,
    rng: &mut StdRng,
    home_w: i64,
) -> i64 {
    let home_shard = map.shard_for_key("warehouse", home_w);
    for _ in 0..32 {
        let candidate = rng.gen_range(1..=config.warehouses);
        if map.shard_for_key("warehouse", candidate) != home_shard {
            return candidate;
        }
    }
    home_w
}

/// Runs the TPC-C mix over a sharded cluster with `connections` concurrent
/// terminals, each a shard-aware [`RoutedConnection`] coordinator.
pub fn run_sharded_tpcc(config: &ShardedTpccConfig) -> ShardedDriverOutcome {
    let shards = config.addrs.len();
    let map = Arc::new(tpcc_shard_map(config.tpcc.warehouses, shards));
    let stop = Arc::new(AtomicBool::new(false));
    let new_orders = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));
    let terminal_errors = Arc::new(AtomicU64::new(0));
    let fast_commits = Arc::new(AtomicU64::new(0));
    let two_phase_commits = Arc::new(AtomicU64::new(0));
    let two_phase_aborts = Arc::new(AtomicU64::new(0));
    let deck = Arc::new(TpccDeck::new(config.seed ^ 0xDECC));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for terminal in 0..config.connections {
            let stop = stop.clone();
            let deck = deck.clone();
            let new_orders = new_orders.clone();
            let committed = committed.clone();
            let conflicts = conflicts.clone();
            let terminal_errors = terminal_errors.clone();
            let fast_commits = fast_commits.clone();
            let two_phase_commits = two_phase_commits.clone();
            let two_phase_aborts = two_phase_aborts.clone();
            let map = map.clone();
            let config = config.clone();
            scope.spawn(move || {
                let nodes: Vec<ClientConfig> = config
                    .addrs
                    .iter()
                    .map(|a| {
                        ClientConfig::anonymous(a)
                            .with_user(&config.user, &config.password)
                            .with_label(&config.label)
                    })
                    .collect();
                let mut conn =
                    match RoutedConnection::connect(&RouterConfig::sharded(map.clone(), nodes)) {
                        Ok(c) => c,
                        Err(_) => {
                            terminal_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                let seed = config.seed ^ (terminal as u64).wrapping_mul(0x9E37_79B9);
                let mut rng = StdRng::seed_from_u64(seed);
                let home_w = (terminal as i64 % config.tpcc.warehouses) + 1;
                while !stop.load(Ordering::Relaxed) {
                    let kind = deck.deal();
                    let cross = kind == TpccTransaction::NewOrder
                        && shards > 1
                        && rng.gen::<f64>() < config.cross_warehouse_ratio;
                    // Retry a conflict-aborted transaction (as DBT-2 does)
                    // rather than dealing a new card, so the committed mix
                    // tracks the dealt mix despite per-type abort rates.
                    while !stop.load(Ordering::Relaxed) {
                        let result = if cross {
                            let w = if config.pin_terminals {
                                home_w
                            } else {
                                rng.gen_range(1..=config.tpcc.warehouses)
                            };
                            let d = rng.gen_range(1..=config.tpcc.districts_per_warehouse);
                            let supply = remote_supply_warehouse(&map, &config.tpcc, &mut rng, w);
                            run_new_order_with_supply(
                                &config.tpcc,
                                &mut conn,
                                &mut rng,
                                w,
                                d,
                                supply,
                            )
                        } else if config.pin_terminals {
                            run_transaction_at(&config.tpcc, &mut conn, &mut rng, kind, home_w)
                        } else {
                            run_transaction_on(&config.tpcc, &mut conn, &mut rng, kind)
                        };
                        match result {
                            Ok(true) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                if kind == TpccTransaction::NewOrder {
                                    new_orders.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Ok(false) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            // A dead connection would hot-spin for the rest
                            // of the run; count the terminal as lost and
                            // stop it.
                            Err(ifdb::IfdbError::Remote { code, .. })
                                if code == ifdb_client::protocol::code::PROTOCOL as u16 =>
                            {
                                terminal_errors.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                            Err(_) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                let stats = conn.stats();
                fast_commits.fetch_add(stats.single_shard_commits, Ordering::Relaxed);
                two_phase_commits.fetch_add(stats.distributed_commits, Ordering::Relaxed);
                two_phase_aborts.fetch_add(stats.distributed_aborts, Ordering::Relaxed);
                let _ = conn.close();
            });
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });

    let elapsed = start.elapsed();
    ShardedDriverOutcome {
        notpm: new_orders.load(Ordering::Relaxed) as f64 * 60.0 / elapsed.as_secs_f64(),
        committed: committed.load(Ordering::Relaxed),
        conflicts: conflicts.load(Ordering::Relaxed),
        terminal_errors: terminal_errors.load(Ordering::Relaxed),
        counters: ShardedOutcomeCounters {
            single_shard_commits: fast_commits.load(Ordering::Relaxed),
            distributed_commits: two_phase_commits.load(Ordering::Relaxed),
            distributed_aborts: two_phase_aborts.load(Ordering::Relaxed),
        },
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb::Database;
    use ifdb_platform::Authenticator;
    use ifdb_server::{start, ServerConfig, ServerHandle};

    fn tiny() -> TpccConfig {
        TpccConfig {
            warehouses: 4,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 20,
            initial_orders_per_district: 2,
            tags_per_label: 1,
            seed: 13,
        }
    }

    fn start_cluster(config: &TpccConfig, shards: usize) -> (Vec<ServerHandle>, Vec<TagId>) {
        let map = tpcc_shard_map(config.warehouses, shards);
        let mut servers = Vec::new();
        let mut label = Vec::new();
        for shard in 0..shards {
            let tpcc = load_shard(Database::in_memory(), config, &map, shard).unwrap();
            let tags: Vec<TagId> = tpcc.label.iter().collect();
            if shard == 0 {
                label = tags;
            } else {
                assert_eq!(label, tags, "identically loaded shards agree on tag ids");
            }
            let auth = Arc::new(Authenticator::new());
            auth.register("tpcc", "pw", tpcc.principal);
            servers.push(start(tpcc.db.clone(), auth, ServerConfig::default()).unwrap());
        }
        (servers, label)
    }

    #[test]
    fn map_covers_all_warehouse_tables() {
        let map = tpcc_shard_map(4, 2);
        for table in [
            "warehouse",
            "district",
            "customer",
            "history",
            "stock",
            "orders",
            "new_order",
            "order_line",
        ] {
            assert!(map.table_sharding(table).is_some(), "{table} is sharded");
        }
        assert!(map.is_replicated("item"));
        assert_eq!(map.shard_for_key("warehouse", 1), 0);
        assert_eq!(map.shard_for_key("warehouse", 4), 1);
        assert_eq!(shard_warehouses(&map, 1), WarehouseRange { lo: 3, hi: 4 });
    }

    #[test]
    fn sharded_mix_commits_on_both_paths() {
        let config = tiny();
        let (servers, label) = start_cluster(&config, 2);
        let outcome = run_sharded_tpcc(&ShardedTpccConfig {
            addrs: servers.iter().map(|s| s.addr().to_string()).collect(),
            user: "tpcc".into(),
            password: "pw".into(),
            label,
            tpcc: config,
            cross_warehouse_ratio: 0.3,
            connections: 2,
            pin_terminals: false,
            duration: Duration::from_millis(600),
            seed: 21,
        });
        assert_eq!(outcome.terminal_errors, 0);
        assert!(outcome.committed > 0, "the sharded mix makes progress");
        assert!(
            outcome.counters.single_shard_commits > 0,
            "single-warehouse transactions stay on the fast path"
        );
        assert!(
            outcome.counters.distributed_commits > 0,
            "remote-supplier new-orders commit via 2PC: {outcome:?}"
        );
        for server in servers {
            server.shutdown();
        }
    }
}
