//! The DBT-2-style transaction driver.
//!
//! DBT-2, as configured in Section 8.3, uses zero think time and a constant
//! number of warehouses, and reports NOTPM (new-order transactions per
//! minute). The driver here runs one or more client threads ("terminals")
//! in a closed loop over the standard mix for a fixed duration.
//!
//! The driver is durability-agnostic: pointed at a database configured with
//! [`ifdb::DurabilityConfig`] sync-on-commit or group commit, every
//! committed transaction in the reported throughput is also durable, and
//! the outcome carries the WAL fsync counters so harnesses can verify that
//! group commit actually batched the terminals' flushes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb_client::{ClientConfig, Connection};
use ifdb_difc::TagId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tpcc::{run_transaction_on, TpccConfig, TpccDatabase, TpccDeck, TpccTransaction};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct TpccDriverConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// How long to run.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccDriverConfig {
    fn default() -> Self {
        TpccDriverConfig {
            clients: 1,
            duration: Duration::from_millis(500),
            seed: 42,
        }
    }
}

/// The outcome of a driver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverOutcome {
    /// New-order transactions committed per minute (the Figure 6 metric).
    pub notpm: f64,
    /// Total transactions committed (all five types).
    pub committed: u64,
    /// Transactions rolled back due to write conflicts.
    pub conflicts: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// WAL fsyncs issued during the run (delta over the run).
    pub wal_fsyncs: u64,
    /// Commits that shared another terminal's fsync during the run
    /// (group-commit followers; zero unless group commit is enabled).
    pub commits_batched: u64,
}

/// Runs the TPC-C mix against a loaded database.
pub struct TpccDriver<'a> {
    tpcc: &'a TpccDatabase,
}

impl<'a> TpccDriver<'a> {
    /// Creates a driver over a loaded database.
    pub fn new(tpcc: &'a TpccDatabase) -> Self {
        TpccDriver { tpcc }
    }

    /// Runs the closed loop and reports NOTPM.
    pub fn run(&self, config: &TpccDriverConfig) -> DriverOutcome {
        let stop = Arc::new(AtomicBool::new(false));
        let new_orders = Arc::new(AtomicU64::new(0));
        let committed = Arc::new(AtomicU64::new(0));
        let conflicts = Arc::new(AtomicU64::new(0));
        let wal_before = self.tpcc.db.engine().stats();
        let start = Instant::now();

        std::thread::scope(|scope| {
            for client in 0..config.clients {
                let stop = stop.clone();
                let new_orders = new_orders.clone();
                let committed = committed.clone();
                let conflicts = conflicts.clone();
                let tpcc = self.tpcc;
                let seed = config.seed ^ (client as u64).wrapping_mul(0x9E37_79B9);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut session = match tpcc.session() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let kind = TpccTransaction::draw(&mut rng);
                        match tpcc.run_transaction(&mut session, &mut rng, kind) {
                            Ok(true) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                if kind == TpccTransaction::NewOrder {
                                    new_orders.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(false) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(config.duration);
            stop.store(true, Ordering::Relaxed);
        });

        let elapsed = start.elapsed();
        let no = new_orders.load(Ordering::Relaxed);
        let wal_after = self.tpcc.db.engine().stats();
        DriverOutcome {
            notpm: no as f64 * 60.0 / elapsed.as_secs_f64(),
            committed: committed.load(Ordering::Relaxed),
            conflicts: conflicts.load(Ordering::Relaxed),
            elapsed,
            wal_fsyncs: wal_after.wal_fsyncs - wal_before.wal_fsyncs,
            commits_batched: wal_after.commits_batched - wal_before.commits_batched,
        }
    }
}

/// Configuration of a network (multi-process-style) TPC-C run: every
/// terminal is an independent `ifdb-client` connection to a running
/// `ifdb-server`, so commits from different terminals are genuinely
/// independent committers — exactly the traffic group commit batches.
#[derive(Debug, Clone)]
pub struct NetworkTpccConfig {
    /// The `ifdb-server` address.
    pub addr: String,
    /// User to authenticate terminals as (the benchmark principal).
    pub user: String,
    /// That user's password.
    pub password: String,
    /// The label every terminal raises at handshake time (the benchmark
    /// label's tags).
    pub label: Vec<TagId>,
    /// Scale parameters of the loaded database (must match the server
    /// side).
    pub tpcc: TpccConfig,
    /// Number of concurrent connections (terminals).
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// Mean per-transaction think time (truncated-exponential, as TPC-C's
    /// remote terminal emulators prescribe). Zero disables thinking and
    /// reproduces the DBT-2 zero-think-time configuration — note that on a
    /// closed loop, zero think time saturates a terminal's round-trip
    /// budget, so connection scaling then measures server-side parallelism
    /// only.
    pub mean_think_time: Duration,
    /// Truncation point for the think-time distribution.
    pub max_think_time: Duration,
    /// RNG seed.
    pub seed: u64,
}

/// The outcome of a network TPC-C run. Engine-side counters (fsyncs, group
/// commit batching) are not visible from the client side; harnesses that
/// run the server in-process read them from the engine before and after.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkDriverOutcome {
    /// New-order transactions committed per minute.
    pub notpm: f64,
    /// Total transactions committed (all five types).
    pub committed: u64,
    /// Transactions rolled back due to write conflicts.
    pub conflicts: u64,
    /// Terminals that failed to connect or died mid-run.
    pub terminal_errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Draws a truncated-exponential think time (the TPC-C terminal emulator's
/// distribution; zero mean disables thinking).
fn sample_think_time(mean: Duration, max: Duration, rng: &mut StdRng) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let u: f64 = rand::Rng::gen::<f64>(rng).max(1e-12);
    let t = -u.ln() * mean.as_secs_f64();
    Duration::from_secs_f64(t.min(max.as_secs_f64()))
}

/// Runs the TPC-C mix over the network with `connections` concurrent
/// terminals, each an independent [`Connection`].
pub fn run_network_tpcc(config: &NetworkTpccConfig) -> NetworkDriverOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let new_orders = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));
    let terminal_errors = Arc::new(AtomicU64::new(0));
    let deck = Arc::new(TpccDeck::new(config.seed ^ 0xDECC));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for terminal in 0..config.connections {
            let stop = stop.clone();
            let deck = deck.clone();
            let new_orders = new_orders.clone();
            let committed = committed.clone();
            let conflicts = conflicts.clone();
            let terminal_errors = terminal_errors.clone();
            let config = config.clone();
            scope.spawn(move || {
                let client = ClientConfig::anonymous(&config.addr)
                    .with_user(&config.user, &config.password)
                    .with_label(&config.label);
                let mut conn = match Connection::connect(&client) {
                    Ok(c) => c,
                    Err(_) => {
                        terminal_errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let seed = config.seed ^ (terminal as u64).wrapping_mul(0x9E37_79B9);
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    let think =
                        sample_think_time(config.mean_think_time, config.max_think_time, &mut rng);
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    let kind = deck.deal();
                    // A transaction rolled back by a write conflict is
                    // retried (as DBT-2 retries it) rather than replaced by
                    // a fresh card: abort rates differ across the five
                    // types, and dealing past an abort would skew the
                    // committed mix away from the dealt one.
                    while !stop.load(Ordering::Relaxed) {
                        match run_transaction_on(&config.tpcc, &mut conn, &mut rng, kind) {
                            Ok(true) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                if kind == TpccTransaction::NewOrder {
                                    new_orders.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Ok(false) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            // A transport-level failure means the connection
                            // is dead: retrying would hot-spin for the rest
                            // of the run, inflating the conflict count.
                            // Count the terminal as lost and stop it.
                            Err(ifdb::IfdbError::Remote { code, .. })
                                if code == ifdb_client::protocol::code::PROTOCOL as u16 =>
                            {
                                terminal_errors.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                            Err(_) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                let _ = conn.close();
            });
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });

    let elapsed = start.elapsed();
    NetworkDriverOutcome {
        notpm: new_orders.load(Ordering::Relaxed) as f64 * 60.0 / elapsed.as_secs_f64(),
        committed: committed.load(Ordering::Relaxed),
        conflicts: conflicts.load(Ordering::Relaxed),
        terminal_errors: terminal_errors.load(Ordering::Relaxed),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::TpccConfig;
    use ifdb::Database;

    #[test]
    fn driver_reports_nonzero_throughput() {
        let db = Database::in_memory();
        let tpcc = TpccDatabase::load(
            db,
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 2,
                customers_per_district: 5,
                items: 20,
                initial_orders_per_district: 2,
                tags_per_label: 1,
                seed: 7,
            },
        )
        .unwrap();
        let outcome = TpccDriver::new(&tpcc).run(&TpccDriverConfig {
            clients: 1,
            duration: Duration::from_millis(300),
            seed: 1,
        });
        assert!(outcome.committed > 0);
        assert!(outcome.notpm > 0.0);
    }

    #[test]
    fn multi_terminal_durable_run_batches_fsyncs() {
        use ifdb::{DatabaseConfig, DurabilityConfig};

        let dir = std::env::temp_dir().join(format!("ifdb-tpcc-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = DatabaseConfig::on_disk(dir.clone(), 256)
            .with_seed(0x79CC)
            .with_durability(DurabilityConfig::GROUP_COMMIT);
        let db = Database::new(config.clone());
        let tpcc = TpccDatabase::load(
            db,
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 2,
                customers_per_district: 5,
                items: 20,
                initial_orders_per_district: 2,
                tags_per_label: 2,
                seed: 11,
            },
        )
        .unwrap();
        let outcome = TpccDriver::new(&tpcc).run(&TpccDriverConfig {
            clients: 4,
            duration: Duration::from_millis(400),
            seed: 3,
        });
        assert!(outcome.committed > 0, "durable terminals make progress");
        assert!(outcome.wal_fsyncs > 0, "sync-on-commit must fsync");
        // Group-commit invariant: every commit either led a flush or rode
        // one. (Strict batching — fsyncs < commits — is timing-dependent
        // and not asserted; the identity is not.)
        assert_eq!(
            outcome.wal_fsyncs + outcome.commits_batched,
            outcome.committed,
            "each commit leads or follows exactly one flush"
        );
        // Every committed transaction is durable: reopening the database
        // replays the full run and recovers the TPC-C tables.
        drop(tpcc);
        let reopened = ifdb::Database::open(config).unwrap();
        assert!(reopened.engine().stats().recovery_replayed_records > 0);
        assert!(reopened.engine().table_by_name("warehouse").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_clients_make_progress_despite_conflicts() {
        let db = Database::in_memory();
        let tpcc = TpccDatabase::load(
            db,
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 2,
                customers_per_district: 5,
                items: 20,
                initial_orders_per_district: 2,
                tags_per_label: 1,
                seed: 8,
            },
        )
        .unwrap();
        let outcome = TpccDriver::new(&tpcc).run(&TpccDriverConfig {
            clients: 3,
            duration: Duration::from_millis(300),
            seed: 2,
        });
        assert!(outcome.committed > 0);
    }
}
