//! A scaled-down TPC-C / DBT-2 implementation.
//!
//! Section 8.3 measures IFDB with DBT-2, a TPC-C derivative, with zero think
//! time and a fixed number of warehouses, while varying the number of tags in
//! every tuple's label from 0 to 10. This module provides the nine-table
//! schema, a loader, and the five transaction profiles. The scale factors
//! (items, customers per district) are reduced so that a benchmark run takes
//! seconds, but the transaction logic follows the TPC-C profiles: the same
//! reads, writes, and index usage per transaction.

use std::sync::Mutex;

use ifdb::prelude::*;
use ifdb::{IfdbResult, TableDef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rng::{last_name, nurand, random_string, NURAND_A_C_ID, NURAND_A_OL_I_ID};

/// Scale configuration.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: i64,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: i64,
    /// Customers per district (TPC-C: 3000; scaled down by default).
    pub customers_per_district: i64,
    /// Number of items (TPC-C: 100 000; scaled down by default).
    pub items: i64,
    /// Initial orders per district.
    pub initial_orders_per_district: i64,
    /// Number of tags in every tuple's label (the Figure 6 x-axis).
    pub tags_per_label: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 100,
            initial_orders_per_district: 10,
            tags_per_label: 1,
            seed: 0x7ACC,
        }
    }
}

/// The five TPC-C transaction types and their standard mix weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTransaction {
    /// New-order (45%): the throughput metric (NOTPM) counts these.
    NewOrder,
    /// Payment (43%).
    Payment,
    /// Order-status (4%).
    OrderStatus,
    /// Delivery (4%).
    Delivery,
    /// Stock-level (4%).
    StockLevel,
}

impl TpccTransaction {
    /// Draws a transaction type from the standard mix.
    pub fn draw(rng: &mut StdRng) -> Self {
        let x: f64 = rng.gen();
        if x < 0.45 {
            TpccTransaction::NewOrder
        } else if x < 0.88 {
            TpccTransaction::Payment
        } else if x < 0.92 {
            TpccTransaction::OrderStatus
        } else if x < 0.96 {
            TpccTransaction::Delivery
        } else {
            TpccTransaction::StockLevel
        }
    }
}

/// A shuffled card deck over the standard mix, shared by the terminals of
/// one run: 100 cards (45 new-order, 43 payment, 4 each of the rest),
/// dealt one per transaction and reshuffled when exhausted.
///
/// Dealing from a deck is how real TPC-C drivers meet the mix requirement,
/// and it matters for measurement: each full deck realizes the mix
/// *exactly*, so a run's NOTPM varies with throughput alone instead of
/// with binomial mix-sampling noise. A short run commits a few hundred
/// transactions; drawn i.i.d., the new-order count then swings by ~10%,
/// which is fatal when the ratio of two such runs is gated against a
/// scaling floor.
pub struct TpccDeck {
    inner: Mutex<(Vec<TpccTransaction>, StdRng)>,
}

impl TpccDeck {
    /// Cards per deck: the standard mix in whole cards.
    const DECK: [(TpccTransaction, usize); 5] = [
        (TpccTransaction::NewOrder, 45),
        (TpccTransaction::Payment, 43),
        (TpccTransaction::OrderStatus, 4),
        (TpccTransaction::Delivery, 4),
        (TpccTransaction::StockLevel, 4),
    ];

    /// Creates an empty deck; the first deal shuffles.
    pub fn new(seed: u64) -> Self {
        TpccDeck {
            inner: Mutex::new((Vec::new(), StdRng::seed_from_u64(seed))),
        }
    }

    /// Deals the next card, reshuffling a fresh deck when this one runs out.
    pub fn deal(&self) -> TpccTransaction {
        let mut inner = self.inner.lock().expect("deck poisoned");
        let (cards, rng) = &mut *inner;
        if cards.is_empty() {
            for (kind, count) in Self::DECK {
                cards.extend(std::iter::repeat_n(kind, count));
            }
            // Fisher-Yates.
            for i in (1..cards.len()).rev() {
                cards.swap(i, rng.gen_range(0..=i));
            }
        }
        cards.pop().expect("deck refilled above")
    }
}

/// The warehouse range a loader populates: `lo..=hi` of the global
/// warehouse id space. A sharded deployment loads each shard's database
/// with its own slice (plus the full `item` catalog, which is replicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarehouseRange {
    /// First warehouse id (inclusive).
    pub lo: i64,
    /// Last warehouse id (inclusive).
    pub hi: i64,
}

/// A loaded TPC-C database plus the label every tuple carries.
pub struct TpccDatabase {
    /// The database.
    pub db: Database,
    /// The benchmark principal (owns the label tags and runs transactions).
    pub principal: PrincipalId,
    /// The label applied to every tuple (0–10 tags).
    pub label: Label,
    /// The configuration the database was loaded with.
    pub config: TpccConfig,
}

impl TpccDatabase {
    /// Creates the schema and loads initial data into `db`.
    pub fn load(db: Database, config: TpccConfig) -> IfdbResult<Self> {
        let range = WarehouseRange {
            lo: 1,
            hi: config.warehouses,
        };
        Self::load_warehouse_range(db, config, range)
    }

    /// Creates the schema and loads only the warehouses in `range` (the
    /// full `item` catalog is always loaded — it is replicated on every
    /// shard of a sharded deployment). `config.warehouses` stays the
    /// *global* warehouse count, so transaction profiles generated against
    /// the whole cluster stay valid.
    pub fn load_warehouse_range(
        db: Database,
        config: TpccConfig,
        range: WarehouseRange,
    ) -> IfdbResult<Self> {
        create_schema(&db)?;
        let principal = db.create_principal("tpcc", PrincipalKind::User);
        let mut tags = Vec::new();
        for i in 0..config.tags_per_label {
            tags.push(db.create_tag(principal, &format!("tpcc_tag_{i}"), &[])?);
        }
        let label = Label::from_tags(tags);
        let loaded = TpccDatabase {
            db,
            principal,
            label,
            config,
        };
        loaded.populate(range)?;
        Ok(loaded)
    }

    /// Opens a session with the benchmark label already applied.
    pub fn session(&self) -> IfdbResult<Session> {
        let mut s = self.db.session(self.principal);
        s.raise_label(&self.label)?;
        Ok(s)
    }

    fn populate(&self, range: WarehouseRange) -> IfdbResult<()> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut s = self.session()?;
        let c = &self.config;

        s.begin()?;
        for i in 1..=c.items {
            s.insert(&Insert::new(
                "item",
                vec![
                    Datum::Int(i),
                    Datum::Text(random_string(&mut rng, 14, 24)),
                    Datum::Float(rng.gen_range(1.0..100.0)),
                ],
            ))?;
        }
        self.finish_load_txn(&mut s)?;

        for w in range.lo..=range.hi {
            s.begin()?;
            s.insert(&Insert::new(
                "warehouse",
                vec![
                    Datum::Int(w),
                    Datum::Text(format!("W{w}")),
                    Datum::Float(0.1),
                    Datum::Float(300_000.0),
                ],
            ))?;
            for i in 1..=c.items {
                s.insert(&Insert::new(
                    "stock",
                    vec![
                        Datum::Int(w),
                        Datum::Int(i),
                        Datum::Int(rng.gen_range(10..100)),
                        Datum::Int(0),
                        Datum::Int(0),
                    ],
                ))?;
            }
            self.finish_load_txn(&mut s)?;

            for d in 1..=c.districts_per_warehouse {
                s.begin()?;
                s.insert(&Insert::new(
                    "district",
                    vec![
                        Datum::Int(w),
                        Datum::Int(d),
                        Datum::Text(format!("D{w}-{d}")),
                        Datum::Float(0.1),
                        Datum::Float(30_000.0),
                        Datum::Int(c.initial_orders_per_district + 1),
                    ],
                ))?;
                for cu in 1..=c.customers_per_district {
                    s.insert(&Insert::new(
                        "customer",
                        vec![
                            Datum::Int(w),
                            Datum::Int(d),
                            Datum::Int(cu),
                            Datum::Text(last_name((cu % 1000) as u64)),
                            Datum::Text(random_string(&mut rng, 8, 16)),
                            Datum::Float(-10.0),
                            Datum::Float(10.0),
                            Datum::Int(1),
                        ],
                    ))?;
                }
                // A few initial orders so order-status and delivery have work.
                for o in 1..=c.initial_orders_per_district {
                    let customer = rng.gen_range(1..=c.customers_per_district);
                    let lines = rng.gen_range(5..=15i64);
                    s.insert(&Insert::new(
                        "orders",
                        vec![
                            Datum::Int(w),
                            Datum::Int(d),
                            Datum::Int(o),
                            Datum::Int(customer),
                            Datum::Timestamp(o * 1_000_000),
                            Datum::Int(lines),
                            Datum::Null,
                        ],
                    ))?;
                    s.insert(&Insert::new(
                        "new_order",
                        vec![Datum::Int(w), Datum::Int(d), Datum::Int(o)],
                    ))?;
                    for l in 1..=lines {
                        s.insert(&Insert::new(
                            "order_line",
                            vec![
                                Datum::Int(w),
                                Datum::Int(d),
                                Datum::Int(o),
                                Datum::Int(l),
                                Datum::Int(rng.gen_range(1..=c.items)),
                                Datum::Int(5),
                                Datum::Float(rng.gen_range(1.0..100.0)),
                                Datum::Null,
                            ],
                        ))?;
                    }
                }
                self.finish_load_txn(&mut s)?;
            }
        }
        Ok(())
    }

    /// Commits a load transaction: the loader must declassify before the
    /// commit point (commit label rule), then re-raise for the next batch.
    fn finish_load_txn(&self, s: &mut Session) -> IfdbResult<()> {
        if !self.label.is_empty() {
            s.declassify_all(&self.label)?;
        }
        s.commit()?;
        if !self.label.is_empty() {
            s.raise_label(&self.label)?;
        }
        Ok(())
    }

    /// Runs one transaction of the given type. Returns `true` if it committed
    /// (write conflicts roll back and report `false`, as DBT-2 counts
    /// rollbacks separately). Generic over [`SessionApi`], so the same
    /// transaction logic drives an in-process session or a network
    /// connection.
    pub fn run_transaction<S: SessionApi>(
        &self,
        session: &mut S,
        rng: &mut StdRng,
        kind: TpccTransaction,
    ) -> IfdbResult<bool> {
        run_transaction_on(&self.config, session, rng, kind)
    }
}

/// Runs one TPC-C transaction against any [`SessionApi`] — the transport-
/// independent transaction logic, shared by [`TpccDatabase::run_transaction`]
/// and the network driver. Returns `true` if it committed; a
/// snapshot-isolation write conflict rolls back and reports `false`.
pub fn run_transaction_on<S: SessionApi>(
    config: &TpccConfig,
    session: &mut S,
    rng: &mut StdRng,
    kind: TpccTransaction,
) -> IfdbResult<bool> {
    let w = rng.gen_range(1..=config.warehouses);
    run_transaction_at(config, session, rng, kind, w)
}

/// [`run_transaction_on`] with the home warehouse chosen by the caller:
/// TPC-C terminals are pinned to a warehouse, and a sharded driver that
/// pins its terminals spreads load evenly over the shards instead of
/// letting the per-transaction warehouse draw bunch up on one node.
pub fn run_transaction_at<S: SessionApi>(
    config: &TpccConfig,
    session: &mut S,
    rng: &mut StdRng,
    kind: TpccTransaction,
    w: i64,
) -> IfdbResult<bool> {
    let result = match kind {
        TpccTransaction::NewOrder => new_order(config, session, rng, w),
        TpccTransaction::Payment => payment(config, session, rng, w),
        TpccTransaction::OrderStatus => order_status(config, session, rng, w),
        TpccTransaction::Delivery => delivery(config, session, rng, w),
        TpccTransaction::StockLevel => stock_level(config, session, rng, w),
    };
    match result {
        Ok(()) => Ok(true),
        Err(IfdbError::Storage(ifdb::StorageError::WriteConflict { .. })) => {
            if session.in_transaction() {
                let _ = session.abort();
            }
            Ok(false)
        }
        Err(e) => {
            if session.in_transaction() {
                let _ = session.abort();
            }
            Err(e)
        }
    }
}

fn pick_d(config: &TpccConfig, rng: &mut StdRng) -> i64 {
    rng.gen_range(1..=config.districts_per_warehouse)
}

fn new_order<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
) -> IfdbResult<()> {
    let d = pick_d(config, rng);
    new_order_at(config, s, rng, w, d, w)
}

/// Runs one new-order transaction for district `(w, d)` whose stock is
/// supplied by `supply_w` — the TPC-C remote-warehouse shape. With
/// `supply_w != w` the stock reads and updates land on the supplying
/// warehouse while the order itself lands on the home warehouse; over a
/// sharded topology that makes the transaction cross-shard whenever the
/// two warehouses live on different shards. Returns `true` on commit,
/// `false` on a write-conflict rollback.
pub fn run_new_order_with_supply<S: SessionApi>(
    config: &TpccConfig,
    session: &mut S,
    rng: &mut StdRng,
    w: i64,
    d: i64,
    supply_w: i64,
) -> IfdbResult<bool> {
    match new_order_at(config, session, rng, w, d, supply_w) {
        Ok(()) => Ok(true),
        Err(IfdbError::Storage(ifdb::StorageError::WriteConflict { .. })) => {
            if session.in_transaction() {
                let _ = session.abort();
            }
            Ok(false)
        }
        Err(e) => {
            if session.in_transaction() {
                let _ = session.abort();
            }
            Err(e)
        }
    }
}

fn new_order_at<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
    d: i64,
    supply_w: i64,
) -> IfdbResult<()> {
    let customer = nurand(rng, NURAND_A_C_ID, 1, config.customers_per_district as u64) as i64;
    let line_count = rng.gen_range(5..=15i64);

    s.begin()?;
    let district = s.select(
        &Select::star("district").filter(
            Predicate::Eq("d_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("d_id".into(), Datum::Int(d))),
        ),
    )?;
    let o_id = district
        .first()
        .and_then(|r| r.get_int("d_next_o_id"))
        .unwrap_or(1);
    // Everything after the district read depends only on `o_id`, so the
    // order header goes out as one batch — over the network transport that
    // is a single pipelined flush instead of four round trips.
    for r in s.execute_batch(&[
        Statement::Update(Update::new(
            "district",
            Predicate::Eq("d_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("d_id".into(), Datum::Int(d))),
            vec![("d_next_o_id", Datum::Int(o_id + 1))],
        )),
        Statement::Select(
            Select::star("customer").filter(
                Predicate::Eq("c_w_id".into(), Datum::Int(w))
                    .and(Predicate::Eq("c_d_id".into(), Datum::Int(d)))
                    .and(Predicate::Eq("c_id".into(), Datum::Int(customer))),
            ),
        ),
        Statement::Insert(Insert::new(
            "orders",
            vec![
                Datum::Int(w),
                Datum::Int(d),
                Datum::Int(o_id),
                Datum::Int(customer),
                Datum::Timestamp(o_id * 1_000),
                Datum::Int(line_count),
                Datum::Null,
            ],
        )),
        Statement::Insert(Insert::new(
            "new_order",
            vec![Datum::Int(w), Datum::Int(d), Datum::Int(o_id)],
        )),
    ]) {
        r?;
    }

    // Per-line phase 1: the item and stock reads of every line are
    // independent of each other — one batch of 2×lines selects.
    let mut lines: Vec<(i64, i64)> = Vec::with_capacity(line_count as usize);
    let mut reads: Vec<Statement> = Vec::with_capacity(2 * line_count as usize);
    for _ in 1..=line_count {
        let item = nurand(rng, NURAND_A_OL_I_ID, 1, config.items as u64) as i64;
        let qty = rng.gen_range(1..=10i64);
        lines.push((item, qty));
        reads.push(Statement::Select(
            Select::star("item").filter(Predicate::Eq("i_id".into(), Datum::Int(item))),
        ));
        reads.push(Statement::Select(
            Select::star("stock").filter(
                Predicate::Eq("s_w_id".into(), Datum::Int(supply_w))
                    .and(Predicate::Eq("s_i_id".into(), Datum::Int(item))),
            ),
        ));
    }
    let mut read_results = s.execute_batch(&reads).into_iter();

    // Per-line phase 2: compute the new stock level and total from the
    // batched reads, emitting every stock update and order-line insert as
    // one more batch.
    let mut total = 0.0;
    let mut writes: Vec<Statement> = Vec::with_capacity(2 * line_count as usize);
    for (l, (item, qty)) in (1..=line_count).zip(&lines) {
        let (item, qty) = (*item, *qty);
        let item_row = rows(read_results.next().expect("item read"))?;
        let price = item_row
            .first()
            .and_then(|r| r.get_float("i_price"))
            .unwrap_or(1.0);
        let stock = rows(read_results.next().expect("stock read"))?;
        let s_qty = stock
            .first()
            .and_then(|r| r.get_int("s_quantity"))
            .unwrap_or(50);
        let new_qty = if s_qty > qty + 10 {
            s_qty - qty
        } else {
            s_qty - qty + 91
        };
        writes.push(Statement::Update(Update::new(
            "stock",
            Predicate::Eq("s_w_id".into(), Datum::Int(supply_w))
                .and(Predicate::Eq("s_i_id".into(), Datum::Int(item))),
            vec![("s_quantity", Datum::Int(new_qty))],
        )));
        total += price * qty as f64;
        writes.push(Statement::Insert(Insert::new(
            "order_line",
            vec![
                Datum::Int(w),
                Datum::Int(d),
                Datum::Int(o_id),
                Datum::Int(l),
                Datum::Int(item),
                Datum::Int(qty),
                Datum::Float(price * qty as f64),
                Datum::Null,
            ],
        )));
    }
    for r in s.execute_batch(&writes) {
        r?;
    }
    let _ = total;
    commit_with_label(s)
}

/// Unwraps a batched statement result expected to be rows.
fn rows(r: IfdbResult<StatementResult>) -> IfdbResult<ifdb::ResultSet> {
    match r? {
        StatementResult::Rows(rs) => Ok(rs),
        StatementResult::Affected(_) => Err(IfdbError::InvalidStatement(
            "batched read returned an affected-count".into(),
        )),
    }
}

fn payment<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
) -> IfdbResult<()> {
    let d = pick_d(config, rng);
    let customer = nurand(rng, NURAND_A_C_ID, 1, config.customers_per_district as u64) as i64;
    let amount = rng.gen_range(1.0..5000.0);
    s.begin()?;
    let wh =
        s.select(&Select::star("warehouse").filter(Predicate::Eq("w_id".into(), Datum::Int(w))))?;
    let w_ytd = wh.first().and_then(|r| r.get_float("w_ytd")).unwrap_or(0.0);
    s.update(&Update::new(
        "warehouse",
        Predicate::Eq("w_id".into(), Datum::Int(w)),
        vec![("w_ytd", Datum::Float(w_ytd + amount))],
    ))?;
    let dist = s.select(
        &Select::star("district").filter(
            Predicate::Eq("d_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("d_id".into(), Datum::Int(d))),
        ),
    )?;
    let d_ytd = dist
        .first()
        .and_then(|r| r.get_float("d_ytd"))
        .unwrap_or(0.0);
    s.update(&Update::new(
        "district",
        Predicate::Eq("d_w_id".into(), Datum::Int(w))
            .and(Predicate::Eq("d_id".into(), Datum::Int(d))),
        vec![("d_ytd", Datum::Float(d_ytd + amount))],
    ))?;
    let cust = s.select(
        &Select::star("customer").filter(
            Predicate::Eq("c_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("c_d_id".into(), Datum::Int(d)))
                .and(Predicate::Eq("c_id".into(), Datum::Int(customer))),
        ),
    )?;
    let balance = cust
        .first()
        .and_then(|r| r.get_float("c_balance"))
        .unwrap_or(0.0);
    s.update(&Update::new(
        "customer",
        Predicate::Eq("c_w_id".into(), Datum::Int(w))
            .and(Predicate::Eq("c_d_id".into(), Datum::Int(d)))
            .and(Predicate::Eq("c_id".into(), Datum::Int(customer))),
        vec![("c_balance", Datum::Float(balance - amount))],
    ))?;
    s.insert(&Insert::new(
        "history",
        vec![
            Datum::Int(w),
            Datum::Int(d),
            Datum::Int(customer),
            Datum::Float(amount),
            Datum::Timestamp(0),
        ],
    ))?;
    commit_with_label(s)
}

fn order_status<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
) -> IfdbResult<()> {
    let d = pick_d(config, rng);
    let customer = nurand(rng, NURAND_A_C_ID, 1, config.customers_per_district as u64) as i64;
    s.begin()?;
    s.select(
        &Select::star("customer").filter(
            Predicate::Eq("c_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("c_d_id".into(), Datum::Int(d)))
                .and(Predicate::Eq("c_id".into(), Datum::Int(customer))),
        ),
    )?;
    let orders = s.select(
        &Select::star("orders")
            .filter(
                Predicate::Eq("o_w_id".into(), Datum::Int(w))
                    .and(Predicate::Eq("o_d_id".into(), Datum::Int(d)))
                    .and(Predicate::Eq("o_c_id".into(), Datum::Int(customer))),
            )
            .order("o_id", Order::Desc)
            .take(1),
    )?;
    if let Some(order) = orders.first() {
        let o_id = order.get_int("o_id").unwrap_or(0);
        s.select(
            &Select::star("order_line").filter(
                Predicate::Eq("ol_w_id".into(), Datum::Int(w))
                    .and(Predicate::Eq("ol_d_id".into(), Datum::Int(d)))
                    .and(Predicate::Eq("ol_o_id".into(), Datum::Int(o_id))),
            ),
        )?;
    }
    commit_with_label(s)
}

fn delivery<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
) -> IfdbResult<()> {
    let carrier = rng.gen_range(1..=10i64);
    s.begin()?;
    for d in 1..=config.districts_per_warehouse {
        let pending = s.select(
            &Select::star("new_order")
                .filter(
                    Predicate::Eq("no_w_id".into(), Datum::Int(w))
                        .and(Predicate::Eq("no_d_id".into(), Datum::Int(d))),
                )
                .order("no_o_id", Order::Asc)
                .take(1),
        )?;
        let Some(row) = pending.first() else { continue };
        let o_id = row.get_int("no_o_id").unwrap_or(0);
        s.delete(&Delete::new(
            "new_order",
            Predicate::Eq("no_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("no_d_id".into(), Datum::Int(d)))
                .and(Predicate::Eq("no_o_id".into(), Datum::Int(o_id))),
        ))?;
        s.update(&Update::new(
            "orders",
            Predicate::Eq("o_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("o_d_id".into(), Datum::Int(d)))
                .and(Predicate::Eq("o_id".into(), Datum::Int(o_id))),
            vec![("o_carrier_id", Datum::Int(carrier))],
        ))?;
        s.update(&Update::new(
            "order_line",
            Predicate::Eq("ol_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("ol_d_id".into(), Datum::Int(d)))
                .and(Predicate::Eq("ol_o_id".into(), Datum::Int(o_id))),
            vec![("ol_delivery_d", Datum::Timestamp(1))],
        ))?;
    }
    commit_with_label(s)
}

fn stock_level<S: SessionApi>(
    config: &TpccConfig,
    s: &mut S,
    rng: &mut StdRng,
    w: i64,
) -> IfdbResult<()> {
    let d = pick_d(config, rng);
    let threshold = rng.gen_range(10..=20i64);
    s.begin()?;
    let district = s.select(
        &Select::star("district").filter(
            Predicate::Eq("d_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("d_id".into(), Datum::Int(d))),
        ),
    )?;
    let next = district
        .first()
        .and_then(|r| r.get_int("d_next_o_id"))
        .unwrap_or(1);
    let lines = s.select(
        &Select::star("order_line").filter(
            Predicate::Eq("ol_w_id".into(), Datum::Int(w))
                .and(Predicate::Eq("ol_d_id".into(), Datum::Int(d)))
                .and(Predicate::Ge("ol_o_id".into(), Datum::Int(next - 20))),
        ),
    )?;
    let mut low = 0;
    for line in lines.iter().take(200) {
        let item = line.get_int("ol_i_id").unwrap_or(1);
        let stock = s.select(
            &Select::star("stock").filter(
                Predicate::Eq("s_w_id".into(), Datum::Int(w))
                    .and(Predicate::Eq("s_i_id".into(), Datum::Int(item))),
            ),
        )?;
        if stock
            .first()
            .and_then(|r| r.get_int("s_quantity"))
            .unwrap_or(100)
            < threshold
        {
            low += 1;
        }
    }
    let _ = low;
    commit_with_label(s)
}

/// Commits a transaction. Every benchmark tuple carries the session's
/// label, so the commit label (the same label) satisfies the commit label
/// rule directly; no declassification is needed per transaction, exactly
/// as in the paper's measurement where all tuples share one label.
fn commit_with_label<S: SessionApi>(s: &mut S) -> IfdbResult<()> {
    s.commit()?;
    Ok(())
}

/// The nine TPC-C table definitions. Besides first-boot creation
/// ([`create_schema`]), this is the DDL a recovered or promoted node
/// re-runs to re-attach constraints — see `Database::open` and
/// `ReplicaConfig::first_boot_tables` for that contract.
pub fn table_defs() -> Vec<TableDef> {
    vec![
        TableDef::new("warehouse")
            .column("w_id", DataType::Int)
            .column("w_name", DataType::Text)
            .column("w_tax", DataType::Float)
            .column("w_ytd", DataType::Float)
            .primary_key(&["w_id"]),
        TableDef::new("district")
            .column("d_w_id", DataType::Int)
            .column("d_id", DataType::Int)
            .column("d_name", DataType::Text)
            .column("d_tax", DataType::Float)
            .column("d_ytd", DataType::Float)
            .column("d_next_o_id", DataType::Int)
            .primary_key(&["d_w_id", "d_id"]),
        TableDef::new("customer")
            .column("c_w_id", DataType::Int)
            .column("c_d_id", DataType::Int)
            .column("c_id", DataType::Int)
            .column("c_last", DataType::Text)
            .column("c_data", DataType::Text)
            .column("c_balance", DataType::Float)
            .column("c_ytd_payment", DataType::Float)
            .column("c_payment_cnt", DataType::Int)
            .primary_key(&["c_w_id", "c_d_id", "c_id"]),
        TableDef::new("history")
            .column("h_w_id", DataType::Int)
            .column("h_d_id", DataType::Int)
            .column("h_c_id", DataType::Int)
            .column("h_amount", DataType::Float)
            .column("h_date", DataType::Timestamp),
        TableDef::new("item")
            .column("i_id", DataType::Int)
            .column("i_name", DataType::Text)
            .column("i_price", DataType::Float)
            .primary_key(&["i_id"]),
        TableDef::new("stock")
            .column("s_w_id", DataType::Int)
            .column("s_i_id", DataType::Int)
            .column("s_quantity", DataType::Int)
            .column("s_ytd", DataType::Int)
            .column("s_order_cnt", DataType::Int)
            .primary_key(&["s_w_id", "s_i_id"]),
        TableDef::new("orders")
            .column("o_w_id", DataType::Int)
            .column("o_d_id", DataType::Int)
            .column("o_id", DataType::Int)
            .column("o_c_id", DataType::Int)
            .column("o_entry_d", DataType::Timestamp)
            .column("o_ol_cnt", DataType::Int)
            .nullable_column("o_carrier_id", DataType::Int)
            .primary_key(&["o_w_id", "o_d_id", "o_id"]),
        TableDef::new("new_order")
            .column("no_w_id", DataType::Int)
            .column("no_d_id", DataType::Int)
            .column("no_o_id", DataType::Int)
            .primary_key(&["no_w_id", "no_d_id", "no_o_id"]),
        TableDef::new("order_line")
            .column("ol_w_id", DataType::Int)
            .column("ol_d_id", DataType::Int)
            .column("ol_o_id", DataType::Int)
            .column("ol_number", DataType::Int)
            .column("ol_i_id", DataType::Int)
            .column("ol_quantity", DataType::Int)
            .column("ol_amount", DataType::Float)
            .nullable_column("ol_delivery_d", DataType::Timestamp)
            .primary_key(&["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"]),
    ]
}

/// Creates the nine TPC-C tables.
pub fn create_schema(db: &Database) -> IfdbResult<()> {
    for def in table_defs() {
        db.create_table(def)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(tags: usize) -> TpccConfig {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 20,
            initial_orders_per_district: 3,
            tags_per_label: tags,
            seed: 11,
        }
    }

    #[test]
    fn loader_populates_all_tables() {
        let db = Database::in_memory();
        let tpcc = TpccDatabase::load(db, tiny_config(1)).unwrap();
        let mut s = tpcc.session().unwrap();
        assert_eq!(s.select(&Select::star("warehouse")).unwrap().len(), 1);
        assert_eq!(s.select(&Select::star("district")).unwrap().len(), 2);
        assert_eq!(s.select(&Select::star("customer")).unwrap().len(), 10);
        assert_eq!(s.select(&Select::star("item")).unwrap().len(), 20);
        assert_eq!(s.select(&Select::star("stock")).unwrap().len(), 20);
        assert_eq!(s.select(&Select::star("orders")).unwrap().len(), 6);
        assert!(s.select(&Select::star("order_line")).unwrap().len() >= 30);
        // Every tuple carries the benchmark label.
        let row = s.select(&Select::star("warehouse")).unwrap();
        assert_eq!(row.first().unwrap().label, tpcc.label);
    }

    #[test]
    fn transactions_execute_and_commit() {
        let db = Database::in_memory();
        let tpcc = TpccDatabase::load(db, tiny_config(2)).unwrap();
        let mut s = tpcc.session().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [
            TpccTransaction::NewOrder,
            TpccTransaction::Payment,
            TpccTransaction::OrderStatus,
            TpccTransaction::Delivery,
            TpccTransaction::StockLevel,
            TpccTransaction::NewOrder,
        ] {
            let ok = tpcc.run_transaction(&mut s, &mut rng, kind).unwrap();
            assert!(ok, "transaction {kind:?} should commit");
        }
        // New orders bumped the district counters.
        let d = s
            .select(&Select::star("district").filter(Predicate::Eq("d_id".into(), Datum::Int(1))))
            .unwrap();
        assert!(d.first().unwrap().get_int("d_next_o_id").unwrap() >= 4);
    }

    #[test]
    fn zero_tag_and_many_tag_labels_both_work() {
        for tags in [0, 5] {
            let db = Database::in_memory();
            let tpcc = TpccDatabase::load(db, tiny_config(tags)).unwrap();
            assert_eq!(tpcc.label.len(), tags);
            let mut s = tpcc.session().unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            assert!(tpcc
                .run_transaction(&mut s, &mut rng, TpccTransaction::NewOrder)
                .unwrap());
        }
    }

    #[test]
    fn mix_draw_covers_all_types() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            *counts
                .entry(format!("{:?}", TpccTransaction::draw(&mut rng)))
                .or_insert(0) += 1;
        }
        assert!(counts["NewOrder"] > 700);
        assert!(counts["Payment"] > 700);
        assert!(counts.len() == 5);
    }
}
