//! Multi-replica read-scaling driver.
//!
//! Most HotCRP/CarTel traffic is labeled SELECTs, and the cheapest
//! order-of-magnitude toward the "millions of users" north star is read
//! scaling: one primary takes the writes, any number of log-shipping
//! replicas serve label-filtered reads. This driver measures exactly that:
//! a closed loop of clients issuing labeled point reads (plus an occasional
//! scan), spread round-robin across a set of servers — the primary alone
//! (the baseline) or the primary plus its replicas.
//!
//! Each server has a **bounded worker pool** (`ifdb-server` pins one worker
//! per connection, the `max_connections` model every production DBMS has),
//! so a topology's read capacity is the sum of its servers' pools; clients
//! beyond a topology's capacity queue or are refused, exactly like real
//! connection-slot exhaustion. The driver reports WIPS (successful web-style
//! read interactions per second), which is what `BENCH_pr5.json` plots
//! against the replica count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::{Datum, Predicate, Select, Statement};
use ifdb_client::{ClientConfig, Connection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a read-scaling run.
#[derive(Debug, Clone)]
pub struct ReadScaleConfig {
    /// The servers to spread clients across: the primary first, then any
    /// replicas. Each entry carries its own address/user/label.
    pub targets: Vec<ClientConfig>,
    /// Total concurrent clients (spread round-robin across `targets`).
    pub clients: usize,
    /// How long to run.
    pub duration: Duration,
    /// Mean think time between reads (truncated exponential); zero
    /// disables thinking.
    pub mean_think_time: Duration,
    /// Truncation point of the think-time distribution.
    pub max_think_time: Duration,
    /// Table the labeled reads hit.
    pub table: String,
    /// Key column for point reads.
    pub key_column: String,
    /// Keys are drawn uniformly from `[0, key_range)`.
    pub key_range: i64,
    /// One in `scan_every` reads is a full labeled scan instead of a point
    /// read (0 disables scans).
    pub scan_every: u32,
    /// RNG seed.
    pub seed: u64,
}

/// The outcome of a read-scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadScaleOutcome {
    /// Successful read interactions per second across all clients.
    pub wips: f64,
    /// Total successful reads.
    pub reads: u64,
    /// Total rows returned (sanity: label filtering held).
    pub rows: u64,
    /// Reads that failed (connection refused, server busy, ...).
    pub failed: u64,
    /// Clients that could not establish a connection at all (beyond the
    /// topology's connection capacity).
    pub clients_refused: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

fn sample_think(mean: Duration, max: Duration, rng: &mut StdRng) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let u: f64 = rng.gen::<f64>().max(1e-12);
    Duration::from_secs_f64((-u.ln() * mean.as_secs_f64()).min(max.as_secs_f64()))
}

/// Runs the closed read loop and reports WIPS.
pub fn run_read_scale(config: &ReadScaleConfig) -> ReadScaleOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let rows = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let stop = stop.clone();
            let reads = reads.clone();
            let rows = rows.clone();
            let failed = failed.clone();
            let refused = refused.clone();
            let config = config.clone();
            scope.spawn(move || {
                let target = &config.targets[client % config.targets.len()];
                let Ok(mut conn) = Connection::connect(target) else {
                    refused.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let seed = config.seed ^ (client as u64).wrapping_mul(0x9E37_79B9);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let think =
                        sample_think(config.mean_think_time, config.max_think_time, &mut rng);
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    i = i.wrapping_add(1);
                    let stmt = if config.scan_every > 0 && i.is_multiple_of(config.scan_every) {
                        Statement::Select(Select::star(&config.table))
                    } else {
                        let key = rng.gen_range(0..config.key_range.max(1));
                        Statement::Select(
                            Select::star(&config.table)
                                .filter(Predicate::Eq(config.key_column.clone(), Datum::Int(key))),
                        )
                    };
                    match conn.run(&stmt) {
                        Ok(result) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                            rows.fetch_add(result.into_rows().len() as u64, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            // A dead connection would hot-spin failures for
                            // the rest of the run; stop this client instead.
                            return;
                        }
                    }
                }
                let _ = conn.close();
            });
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });

    let elapsed = start.elapsed();
    let n = reads.load(Ordering::Relaxed);
    ReadScaleOutcome {
        wips: n as f64 / elapsed.as_secs_f64(),
        reads: n,
        rows: rows.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        clients_refused: refused.load(Ordering::Relaxed),
        elapsed,
    }
}
