//! TPC-C random-number helpers.

use rand::rngs::StdRng;
use rand::Rng;

/// The TPC-C NURand constant-A values for the three uses of the function.
pub const NURAND_A_C_LAST: u64 = 255;
/// A for customer ids.
pub const NURAND_A_C_ID: u64 = 1023;
/// A for item ids.
pub const NURAND_A_OL_I_ID: u64 = 8191;

/// TPC-C's non-uniform random distribution: `NURand(A, x, y)`.
pub fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64) -> u64 {
    let c = a / 2;
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1)) + x
}

/// A random alphanumeric string with length in `[min, max]`.
pub fn random_string(rng: &mut StdRng, min: usize, max: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

/// The TPC-C customer last-name generator (syllable table).
pub fn last_name(num: u64) -> String {
    const SYLLABLES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let n = num as usize;
    format!(
        "{}{}{}",
        SYLLABLES[n / 100 % 10],
        SYLLABLES[n / 10 % 10],
        SYLLABLES[n % 10]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = nurand(&mut rng, NURAND_A_C_ID, 1, 300);
            assert!((1..=300).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The distribution should strongly favour a subrange; verify the
        // variance differs from uniform by checking that some value repeats.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            *counts.entry(nurand(&mut rng, 255, 1, 1000)).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 10, "hot values should appear repeatedly");
    }

    #[test]
    fn strings_and_names() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_string(&mut rng, 8, 16);
        assert!(s.len() >= 8 && s.len() <= 16);
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }
}
