//! Workload generators for the IFDB evaluation.
//!
//! * [`rng`] — TPC-C's non-uniform random (NURand) helpers and other
//!   distributions.
//! * [`tpcc`] — a scaled-down TPC-C / DBT-2 implementation: schema, loader,
//!   the five transaction types, and the standard mix. Used to reproduce
//!   Figure 6 (throughput vs. tags per label).
//! * [`driver`] — closed-loop transaction drivers measuring NOTPM
//!   (new-order transactions per minute) with zero think time, as DBT-2 is
//!   configured in Section 8.3: an in-process driver
//!   ([`driver::TpccDriver`]) and a network driver
//!   ([`driver::run_network_tpcc`]) whose terminals are independent
//!   `ifdb-client` connections to an `ifdb-server`.
//! * [`readscale`] — the multi-replica read-scaling driver: closed-loop
//!   labeled reads spread across a primary and its log-shipping replicas,
//!   measuring WIPS vs replica count for `BENCH_pr5.json`.
//! * [`sharded`] — multi-warehouse TPC-C over range-partitioned primary
//!   shards: per-shard loaders, the warehouse shard map, and a closed-loop
//!   driver whose terminals are shard-aware routers (single-warehouse
//!   transactions on the fast path, remote-supplier new-orders via
//!   two-phase commit), measuring NOTPM vs shard count for
//!   `BENCH_pr7.json`.
//!
//! The CarTel web workload (Figure 3 mix, TPC-W think times) lives in
//! `ifdb-cartel::scripts::figure3_mix` and `ifdb-platform::httpsim`.

pub mod driver;
pub mod readscale;
pub mod rng;
pub mod sharded;
pub mod tpcc;

pub use driver::{
    run_network_tpcc, DriverOutcome, NetworkDriverOutcome, NetworkTpccConfig, TpccDriver,
    TpccDriverConfig,
};
pub use readscale::{run_read_scale, ReadScaleConfig, ReadScaleOutcome};
pub use sharded::{
    load_shard, run_sharded_tpcc, tpcc_shard_map, ShardedDriverOutcome, ShardedTpccConfig,
};
pub use tpcc::{
    create_schema, run_new_order_with_supply, run_transaction_at, run_transaction_on, table_defs,
    TpccConfig, TpccDatabase, TpccTransaction, WarehouseRange,
};
