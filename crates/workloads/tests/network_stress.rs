//! Concurrency stress for the network service: 16 connections hammer one
//! server with mixed reads, writes and declassifying-view queries while
//! other connections are killed mid-transaction, then the store is reopened
//! to prove that everything acknowledged as committed survived and nothing
//! in-flight leaked.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ifdb::prelude::*;
use ifdb_client::{ClientConfig, Connection};
use ifdb_platform::Authenticator;
use ifdb_server::{start, ServerConfig};
use ifdb_workloads::{run_network_tpcc, NetworkTpccConfig, TpccConfig, TpccDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn items_table() -> TableDef {
    TableDef::new("items")
        .column("id", DataType::Int)
        .column("writer", DataType::Int)
        .column("payload", DataType::Text)
        .primary_key(&["id"])
}

/// 16 concurrent connections: half commit durable writes, half run reads
/// through a declassifying view; meanwhile connections are opened, begin
/// transactions, and are killed without cleanup. Afterwards the engine must
/// be unpoisoned (checkpoint succeeds), every acknowledged commit must
/// survive a reopen, and no killed connection's in-flight rows may appear.
#[test]
fn sixteen_connection_stress_with_kills_and_reopen() {
    let dir = std::env::temp_dir().join(format!("ifdb-net-stress-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db_config = DatabaseConfig::on_disk(dir.clone(), 256)
        .with_seed(0xBEEF)
        .with_durability(DurabilityConfig::GROUP_COMMIT);
    let db = Database::new(db_config.clone());
    db.create_table(items_table()).unwrap();

    let writer_principal = db.create_principal("writer", PrincipalKind::User);
    let secret_tag = db
        .create_tag(writer_principal, "stress_secret", &[])
        .unwrap();
    // A declassifying view over the secret rows, created with the writer's
    // authority: readers see the rows without holding the tag.
    db.create_declassifying_view(
        writer_principal,
        "items_public",
        ViewSource::Select(Select::star("items")),
        Label::singleton(secret_tag),
    )
    .unwrap();

    let auth = Arc::new(Authenticator::new());
    auth.register("writer", "pw", writer_principal);
    let server = start(
        db,
        auth,
        ServerConfig {
            workers: 24,
            accept_backlog: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let acknowledged = Arc::new(AtomicU64::new(0));
    let next_id = Arc::new(AtomicU64::new(1));
    let reads_ok = Arc::new(AtomicU64::new(0));
    let kills = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // 8 writers: labeled inserts inside explicit transactions.
        for w in 0..8u64 {
            let stop = stop.clone();
            let acknowledged = acknowledged.clone();
            let next_id = next_id.clone();
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::connect(
                    &ClientConfig::anonymous(&addr)
                        .with_user("writer", "pw")
                        .with_label(&[secret_tag]),
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(w);
                while !stop.load(Ordering::Relaxed) {
                    let n = rng.gen_range(1..4);
                    conn.begin().unwrap();
                    let mut ids = Vec::new();
                    for _ in 0..n {
                        let id = next_id.fetch_add(1, Ordering::Relaxed) as i64;
                        conn.insert(&Insert::new(
                            "items",
                            vec![
                                Datum::Int(id),
                                Datum::Int(w as i64),
                                Datum::Text(format!("payload-{id}")),
                            ],
                        ))
                        .unwrap();
                        ids.push(id);
                    }
                    conn.commit().unwrap();
                    // Group commit returned: these ids are durable.
                    acknowledged.fetch_add(ids.len() as u64, Ordering::Relaxed);
                }
                let _ = conn.close();
            });
        }
        // 8 readers through the declassifying view, uncontaminated.
        for r in 0..8u64 {
            let stop = stop.clone();
            let reads_ok = reads_ok.clone();
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::connect(&ClientConfig::anonymous(&addr)).unwrap();
                let mut rng = StdRng::seed_from_u64(1000 + r);
                while !stop.load(Ordering::Relaxed) {
                    let rows = conn.select(&Select::star("items_public")).unwrap();
                    // Declassified rows carry an empty effective label, so
                    // an anonymous reader may see them; the reader stays
                    // releasable the whole time.
                    conn.check_release_to_world().unwrap();
                    if rng.gen_bool(0.2) {
                        let direct = conn.select(&Select::star("items")).unwrap();
                        assert!(
                            direct.is_empty(),
                            "unlabeled reader must not see raw labeled rows"
                        );
                    }
                    let _ = rows;
                    reads_ok.fetch_add(1, Ordering::Relaxed);
                }
                let _ = conn.close();
            });
        }
        // A killer loop: open connections, start transactions with a write
        // that must never survive, and drop the socket without cleanup.
        {
            let stop = stop.clone();
            let kills = kills.clone();
            let addr = addr.clone();
            scope.spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    k += 1;
                    if let Ok(mut conn) = Connection::connect(
                        &ClientConfig::anonymous(&addr)
                            .with_user("writer", "pw")
                            .with_label(&[secret_tag]),
                    ) {
                        let _ = conn.begin();
                        let _ = conn.insert(&Insert::new(
                            "items",
                            vec![
                                Datum::Int(-k), // negative ids mark doomed rows
                                Datum::Int(99),
                                Datum::from("must-not-survive"),
                            ],
                        ));
                        drop(conn); // no abort, no goodbye
                        kills.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1200));
        stop.store(true, Ordering::Relaxed);
    });

    let acked = acknowledged.load(Ordering::Relaxed);
    assert!(acked > 0, "writers made progress");
    assert!(
        reads_ok.load(Ordering::Relaxed) > 0,
        "readers made progress"
    );
    assert!(kills.load(Ordering::Relaxed) > 0, "kill loop ran");

    // Killed connections' transactions were aborted, not leaked: the engine
    // reaches a quiescent point (checkpoint succeeds via the deferred path
    // even if a straggler abort is still settling).
    let db = server.database().clone();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match db.checkpoint_soon() {
            Ok(true) => break,
            Ok(false) | Err(_) => {
                assert!(Instant::now() < deadline, "engine never quiesced");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    server.shutdown();

    // Post-stress reopen: every acknowledged row survived, no doomed row
    // did. The tag is re-created against the same seed so ids line up.
    drop(db);
    let reopened = Database::open_with_tables(db_config, [items_table()]).unwrap();
    let writer_principal = reopened.create_principal("writer", PrincipalKind::User);
    let tag = reopened
        .create_tag(writer_principal, "stress_secret", &[])
        .unwrap();
    assert_eq!(tag, secret_tag, "deterministic seed keeps tag ids stable");
    let mut s = reopened.session(writer_principal);
    s.add_secrecy(tag).unwrap();
    let rows = s.select(&Select::star("items")).unwrap();
    assert!(
        rows.len() as u64 >= acked,
        "acknowledged commits must survive reopen: {} < {acked}",
        rows.len()
    );
    assert!(
        rows.iter().all(|r| r.get_int("id").unwrap_or(0) > 0),
        "no killed connection's in-flight row may survive"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The network TPC-C driver runs the full mix over real connections and
/// reports throughput; group commit batches fsyncs across terminals.
#[test]
fn network_tpcc_driver_reports_throughput() {
    let dir = std::env::temp_dir().join(format!("ifdb-net-tpcc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db_config = DatabaseConfig::on_disk(dir.clone(), 256)
        .with_seed(0x7ACC)
        .with_durability(DurabilityConfig::GROUP_COMMIT);
    let db = Database::new(db_config);
    let scale = TpccConfig {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 10,
        items: 30,
        initial_orders_per_district: 3,
        tags_per_label: 1,
        seed: 5,
    };
    let tpcc = TpccDatabase::load(db, scale.clone()).unwrap();
    let label: Vec<TagId> = tpcc.label.iter().collect();
    let auth = Arc::new(Authenticator::new());
    auth.register("tpcc", "pw", tpcc.principal);
    let engine_before = tpcc.db.engine().stats();
    let server = start(tpcc.db.clone(), auth, ServerConfig::default()).unwrap();
    let outcome = run_network_tpcc(&NetworkTpccConfig {
        addr: server.addr().to_string(),
        user: "tpcc".into(),
        password: "pw".into(),
        label,
        tpcc: scale,
        connections: 4,
        duration: Duration::from_millis(600),
        mean_think_time: Duration::ZERO,
        max_think_time: Duration::ZERO,
        seed: 9,
    });
    let engine_after = server.database().engine().stats();
    assert_eq!(outcome.terminal_errors, 0);
    assert!(
        outcome.committed > 0,
        "terminals committed work: {outcome:?}"
    );
    assert!(outcome.notpm > 0.0);
    // Group-commit identity: every commit either led or followed a flush.
    let fsyncs = engine_after.wal_fsyncs - engine_before.wal_fsyncs;
    assert!(fsyncs > 0);
    // Server-wide statement cache: steady state is overwhelmingly hits.
    let stats = server.stats();
    assert!(
        stats.stmt_cache_hit_rate() > 0.9,
        "steady-state cache hit rate: {:?}",
        stats
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
