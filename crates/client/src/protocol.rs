//! The IFDB wire protocol: checksummed frames carrying a binary message
//! encoding.
//!
//! The protocol mirrors the paper's deployment, where PHP/Python application
//! processes connect to the IFDB server over a socket: a connection starts
//! with a [`Request::Hello`] handshake naming the principal, its credentials
//! and the initial process label, and then carries
//! Prepare/Execute/Fetch/Begin/Commit/Abort and label-management messages.
//! Statements travel as *templates* — the statement shape with every value
//! position replaced by a parameter slot (see [`encode_template`]) — so the
//! server's prepared-statement cache keys on shape, not on values, and the
//! hot path sends a 4-byte statement id plus parameters.
//!
//! Framing follows the write-ahead log's discipline (`wal.rs`): each frame
//! is `len u32 | checksum u32 | payload`, with an FNV-1a checksum over the
//! payload, so a torn or bit-flipped frame is rejected rather than decoded
//! by luck. Everything is hand-rolled little-endian — no external
//! serialization dependencies.

use std::io::{Read, Write};

use ifdb::{
    AggFunc, Aggregate, Delete, IfdbError, IfdbResult, Insert, Join, JoinKind, Order, Predicate,
    Select, Statement, Update,
};
use ifdb_difc::{DifcError, Label, TagId};
use ifdb_storage::{Datum, StorageError};

/// Protocol version carried by the handshake; bumped on incompatible change.
///
/// Version 2 (the pipelined protocol): every frame payload begins with a
/// 4-byte little-endian **request id**. Clients may send many request frames
/// per flush; the server executes each connection's requests in FIFO order
/// (so the §7.2 label piggybacking on responses stays coherent) and echoes
/// the id on the matching response frame, which lets a client correlate a
/// whole batch of responses read back-to-back.
///
/// Version 3 (the high-availability protocol): `ReplPoll` carries the
/// replica's applied-seq and its known primary generation, `ReplBatch`
/// answers with the primary's generation, and the
/// `Promote`/`Fence`/`HaStatus` messages (with the `FENCED` and
/// `REPLICATION_LAG` error codes) drive replica promotion, old-primary
/// fencing, and client write failover.
///
/// Version 4 (the QoS protocol): statements can be refused with
/// `BUDGET_EXCEEDED` (per-statement execution budget) or `QUOTA_EXCEEDED`
/// (per-principal admission quota); `Reconfigure` hot-swaps the server's
/// QoS limits without a restart, and `Stats` returns the unified
/// [`MetricsSnapshot`] tree.
pub const PROTOCOL_VERSION: u32 = 4;

/// Upper bound on a frame payload. Frames beyond this are a protocol error,
/// not an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Errors produced by the protocol layer itself (before any statement runs).
/// They surface as [`IfdbError::Remote`] with [`code::PROTOCOL`].
fn protocol_error(detail: impl Into<String>) -> IfdbError {
    IfdbError::Remote {
        code: code::PROTOCOL as u16,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// FNV-1a over the payload — the same checksum the write-ahead log uses for
/// its frames.
pub fn frame_checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in payload {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Writes one checksummed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> IfdbResult<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(protocol_error("frame too large"));
    }
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
        .map_err(|e| protocol_error(format!("write: {e}")))?;
    w.flush()
        .map_err(|e| protocol_error(format!("flush: {e}")))?;
    Ok(())
}

/// Reads one frame, verifying length bound and checksum. Returns `None` on a
/// clean EOF at a frame boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> IfdbResult<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(protocol_error(format!("read: {e}"))),
    }
    r.read_exact(&mut header[1..])
        .map_err(|e| protocol_error(format!("read: {e}")))?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(protocol_error(format!("frame length {len} exceeds limit")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| protocol_error(format!("read: {e}")))?;
    if frame_checksum(&payload) != crc {
        return Err(protocol_error("frame checksum mismatch"));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Pipelined (v2) frames: request-id-tagged payloads
// ---------------------------------------------------------------------

/// Appends one v2 frame — `len | crc | req_id | message` with the checksum
/// covering `req_id | message` — to `buf` without touching any socket. This
/// is the encode half the reactor and the client's `pipeline()` share: both
/// assemble many frames into one buffer and flush once.
pub fn frame_into(buf: &mut Vec<u8>, req_id: u32, message: &[u8]) -> IfdbResult<()> {
    let payload_len = message.len() + 4;
    if payload_len > MAX_FRAME_BYTES {
        return Err(protocol_error("frame too large"));
    }
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    let crc_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // checksum backpatched below
    let body_at = buf.len();
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(message);
    let crc = frame_checksum(&buf[body_at..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Writes one v2 frame and flushes — the single-request convenience over
/// [`frame_into`].
pub fn write_frame_id(w: &mut impl Write, req_id: u32, message: &[u8]) -> IfdbResult<()> {
    let mut buf = Vec::with_capacity(message.len() + 12);
    frame_into(&mut buf, req_id, message)?;
    w.write_all(&buf)
        .map_err(|e| protocol_error(format!("write: {e}")))?;
    w.flush()
        .map_err(|e| protocol_error(format!("flush: {e}")))?;
    Ok(())
}

/// Splits a verified v2 frame payload into `(req_id, message)`.
pub fn split_frame_id(payload: &[u8]) -> IfdbResult<(u32, &[u8])> {
    if payload.len() < 4 {
        return Err(protocol_error("frame too short for request id"));
    }
    let id = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    Ok((id, &payload[4..]))
}

/// Reads one v2 frame, returning `(req_id, message)`; `None` on clean EOF at
/// a frame boundary.
pub fn read_frame_id(r: &mut impl Read) -> IfdbResult<Option<(u32, Vec<u8>)>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => {
            let (id, message) = split_frame_id(&payload)?;
            Ok(Some((id, message.to_vec())))
        }
    }
}

/// Incremental frame assembly over a byte buffer — the reactor's read path.
///
/// Given the unconsumed bytes of a connection's inbound buffer, returns:
/// * `Ok(Some((consumed, req_id, message)))` — one complete, checksum-valid
///   frame occupying the first `consumed` bytes;
/// * `Ok(None)` — no complete frame yet (caller keeps accumulating);
/// * `Err(_)` — the stream is corrupt (oversized frame, bad checksum, short
///   payload) and the connection must be dropped: framing cannot resync.
pub fn try_take_frame(buf: &[u8]) -> IfdbResult<Option<(usize, u32, Vec<u8>)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(protocol_error(format!("frame length {len} exceeds limit")));
    }
    let total = 8 + len;
    if buf.len() < total {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = &buf[8..total];
    if frame_checksum(payload) != crc {
        return Err(protocol_error("frame checksum mismatch"));
    }
    let (id, message) = split_frame_id(payload)?;
    Ok(Some((total, id, message.to_vec())))
}

// ---------------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------------

/// A cursor over an incoming payload; every read is bounds-checked.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Returns `true` once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> IfdbResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| protocol_error("truncated message"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> IfdbResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> IfdbResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> IfdbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> IfdbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> IfdbResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 (bit pattern).
    pub fn f64(&mut self) -> IfdbResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> IfdbResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| protocol_error("invalid utf-8"))
    }

    /// Reads a tag-id array (label encoding).
    pub fn tags(&mut self) -> IfdbResult<Vec<u64>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(protocol_error("tag array length exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn label(&mut self) -> IfdbResult<Label> {
        Ok(Label::from_array(&self.tags()?))
    }

    /// Reads a datum.
    pub fn datum(&mut self) -> IfdbResult<Datum> {
        Ok(match self.u8()? {
            0 => Datum::Null,
            1 => Datum::Int(self.i64()?),
            2 => Datum::Float(self.f64()?),
            3 => Datum::Text(self.str()?),
            4 => Datum::Bool(self.u8()? != 0),
            5 => Datum::Timestamp(self.i64()?),
            6 => Datum::IntArray(self.tags()?),
            t => return Err(protocol_error(format!("unknown datum tag {t}"))),
        })
    }

    fn datums(&mut self) -> IfdbResult<Vec<Datum>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() + 1 {
            return Err(protocol_error("datum array length exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.datum()?);
        }
        Ok(out)
    }
}

/// Encoder counterpart of [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 (bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a tag-id array.
    pub fn tags(&mut self, tags: &[u64]) {
        self.u32(tags.len() as u32);
        for t in tags {
            self.u64(*t);
        }
    }

    fn label(&mut self, l: &Label) {
        self.tags(&l.to_array());
    }

    /// Appends a datum.
    pub fn datum(&mut self, d: &Datum) {
        match d {
            Datum::Null => self.u8(0),
            Datum::Int(v) => {
                self.u8(1);
                self.i64(*v);
            }
            Datum::Float(v) => {
                self.u8(2);
                self.f64(*v);
            }
            Datum::Text(s) => {
                self.u8(3);
                self.str(s);
            }
            Datum::Bool(b) => {
                self.u8(4);
                self.u8(*b as u8);
            }
            Datum::Timestamp(v) => {
                self.u8(5);
                self.i64(*v);
            }
            Datum::IntArray(a) => {
                self.u8(6);
                self.tags(a);
            }
        }
    }

    fn datums(&mut self, ds: &[Datum]) {
        self.u32(ds.len() as u32);
        for d in ds {
            self.datum(d);
        }
    }
}

// ---------------------------------------------------------------------
// Statement templates
// ---------------------------------------------------------------------

/// Value-position encoder that *auto-parameterizes*: every concrete datum
/// met in a value position is appended to `params` and encoded as a
/// parameter slot, so two statements with the same shape but different
/// values produce byte-identical templates. Labels embedded in statements
/// (exact-label selection, DECLASSIFYING clauses) stay inline — they are
/// policy structure, not data values.
struct TemplateWriter<'p> {
    w: Writer,
    params: &'p mut Vec<Datum>,
}

impl TemplateWriter<'_> {
    fn arg(&mut self, d: &Datum) {
        self.w.u16(self.params.len() as u16);
        self.params.push(d.clone());
    }

    fn pred(&mut self, p: &Predicate) {
        let w = &mut self.w;
        match p {
            Predicate::True => w.u8(0),
            Predicate::Eq(c, v) => {
                w.u8(1);
                w.str(c);
                self.arg(v);
            }
            Predicate::Ne(c, v) => {
                w.u8(2);
                w.str(c);
                self.arg(v);
            }
            Predicate::Lt(c, v) => {
                w.u8(3);
                w.str(c);
                self.arg(v);
            }
            Predicate::Le(c, v) => {
                w.u8(4);
                w.str(c);
                self.arg(v);
            }
            Predicate::Gt(c, v) => {
                w.u8(5);
                w.str(c);
                self.arg(v);
            }
            Predicate::Ge(c, v) => {
                w.u8(6);
                w.str(c);
                self.arg(v);
            }
            Predicate::IsNull(c) => {
                w.u8(7);
                w.str(c);
            }
            Predicate::IsNotNull(c) => {
                w.u8(8);
                w.str(c);
            }
            Predicate::And(a, b) => {
                w.u8(9);
                self.pred(a);
                self.pred(b);
            }
            Predicate::Or(a, b) => {
                w.u8(10);
                self.pred(a);
                self.pred(b);
            }
            Predicate::Not(a) => {
                w.u8(11);
                self.pred(a);
            }
            Predicate::LabelContains(t) => {
                w.u8(12);
                w.u64(t.0);
            }
            Predicate::LabelEquals(l) => {
                w.u8(13);
                w.label(l);
            }
        }
    }
}

/// Encodes a statement as a parameterized template, returning the template
/// bytes and the extracted parameters (in slot order). The template is a
/// pure function of the statement's *shape*: re-encoding the same statement
/// with different values yields identical bytes and different params.
pub fn encode_template(stmt: &Statement) -> (Vec<u8>, Vec<Datum>) {
    let mut params = Vec::new();
    let mut t = TemplateWriter {
        w: Writer::new(),
        params: &mut params,
    };
    match stmt {
        Statement::Select(q) => {
            t.w.u8(1);
            t.w.str(&q.from);
            match &q.columns {
                None => t.w.u8(0),
                Some(cols) => {
                    t.w.u8(1);
                    t.w.u32(cols.len() as u32);
                    for c in cols {
                        t.w.str(c);
                    }
                }
            }
            t.pred(&q.predicate);
            match &q.order_by {
                None => t.w.u8(0),
                Some((c, o)) => {
                    t.w.u8(1);
                    t.w.str(c);
                    t.w.u8(matches!(o, Order::Desc) as u8);
                }
            }
            match q.limit {
                None => t.w.u8(0),
                Some(n) => {
                    t.w.u8(1);
                    t.w.u64(n as u64);
                }
            }
            match &q.exact_label {
                None => t.w.u8(0),
                Some(l) => {
                    t.w.u8(1);
                    t.w.label(l);
                }
            }
        }
        Statement::Join(j) => {
            t.w.u8(2);
            t.w.str(&j.left);
            t.w.str(&j.right);
            t.w.str(&j.on.0);
            t.w.str(&j.on.1);
            t.w.u8(matches!(j.kind, JoinKind::LeftOuter) as u8);
            t.pred(&j.predicate);
        }
        Statement::Aggregate(a) => {
            t.w.u8(3);
            t.w.str(&a.from);
            t.pred(&a.predicate);
            match &a.group_by {
                None => t.w.u8(0),
                Some(c) => {
                    t.w.u8(1);
                    t.w.str(c);
                }
            }
            t.w.u32(a.aggregates.len() as u32);
            for (f, c) in &a.aggregates {
                t.w.u8(match f {
                    AggFunc::Count => 0,
                    AggFunc::Sum => 1,
                    AggFunc::Avg => 2,
                    AggFunc::Min => 3,
                    AggFunc::Max => 4,
                });
                t.w.str(c);
            }
        }
        Statement::Insert(i) => {
            t.w.u8(4);
            t.w.str(&i.table);
            t.w.u32(i.values.len() as u32);
            for v in &i.values {
                t.arg(v);
            }
            t.w.tags(&i.declassifying.iter().map(|t| t.0).collect::<Vec<_>>());
        }
        Statement::Update(u) => {
            t.w.u8(5);
            t.w.str(&u.table);
            t.pred(&u.predicate);
            t.w.u32(u.set.len() as u32);
            for (c, v) in &u.set {
                t.w.str(c);
                t.arg(v);
            }
        }
        Statement::Delete(d) => {
            t.w.u8(6);
            t.w.str(&d.table);
            t.pred(&d.predicate);
        }
    }
    (t.w.finish(), params)
}

fn decode_arg(r: &mut Reader<'_>, params: &[Datum]) -> IfdbResult<Datum> {
    let slot = r.u16()? as usize;
    params
        .get(slot)
        .cloned()
        .ok_or_else(|| protocol_error(format!("parameter slot {slot} out of range")))
}

fn decode_pred(r: &mut Reader<'_>, params: &[Datum], depth: u32) -> IfdbResult<Predicate> {
    if depth > 64 {
        return Err(protocol_error("predicate nesting too deep"));
    }
    Ok(match r.u8()? {
        0 => Predicate::True,
        1 => Predicate::Eq(r.str()?, decode_arg(r, params)?),
        2 => Predicate::Ne(r.str()?, decode_arg(r, params)?),
        3 => Predicate::Lt(r.str()?, decode_arg(r, params)?),
        4 => Predicate::Le(r.str()?, decode_arg(r, params)?),
        5 => Predicate::Gt(r.str()?, decode_arg(r, params)?),
        6 => Predicate::Ge(r.str()?, decode_arg(r, params)?),
        7 => Predicate::IsNull(r.str()?),
        8 => Predicate::IsNotNull(r.str()?),
        9 => {
            let a = decode_pred(r, params, depth + 1)?;
            let b = decode_pred(r, params, depth + 1)?;
            a.and(b)
        }
        10 => {
            let a = decode_pred(r, params, depth + 1)?;
            let b = decode_pred(r, params, depth + 1)?;
            a.or(b)
        }
        11 => decode_pred(r, params, depth + 1)?.negate(),
        12 => Predicate::LabelContains(TagId(r.u64()?)),
        13 => Predicate::LabelEquals(r.label()?),
        t => return Err(protocol_error(format!("unknown predicate tag {t}"))),
    })
}

/// Decodes a template produced by [`encode_template`], substituting `params`
/// into the parameter slots, yielding a closed statement ready for
/// [`ifdb::Session::execute`](ifdb::SessionApi::execute).
pub fn decode_template(template: &[u8], params: &[Datum]) -> IfdbResult<Statement> {
    let r = &mut Reader::new(template);
    let stmt = match r.u8()? {
        1 => {
            let from = r.str()?;
            let columns = match r.u8()? {
                0 => None,
                _ => {
                    let n = r.u32()? as usize;
                    let mut cols = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        cols.push(r.str()?);
                    }
                    Some(cols)
                }
            };
            let predicate = decode_pred(r, params, 0)?;
            let order_by = match r.u8()? {
                0 => None,
                _ => {
                    let c = r.str()?;
                    let desc = r.u8()? != 0;
                    Some((c, if desc { Order::Desc } else { Order::Asc }))
                }
            };
            let limit = match r.u8()? {
                0 => None,
                _ => Some(r.u64()? as usize),
            };
            let exact_label = match r.u8()? {
                0 => None,
                _ => Some(r.label()?),
            };
            Statement::Select(Select {
                from,
                columns,
                predicate,
                order_by,
                limit,
                exact_label,
            })
        }
        2 => {
            let left = r.str()?;
            let right = r.str()?;
            let on = (r.str()?, r.str()?);
            let kind = if r.u8()? != 0 {
                JoinKind::LeftOuter
            } else {
                JoinKind::Inner
            };
            let predicate = decode_pred(r, params, 0)?;
            Statement::Join(Join {
                left,
                right,
                on,
                kind,
                predicate,
            })
        }
        3 => {
            let from = r.str()?;
            let predicate = decode_pred(r, params, 0)?;
            let group_by = match r.u8()? {
                0 => None,
                _ => Some(r.str()?),
            };
            let n = r.u32()? as usize;
            let mut aggregates = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let f = match r.u8()? {
                    0 => AggFunc::Count,
                    1 => AggFunc::Sum,
                    2 => AggFunc::Avg,
                    3 => AggFunc::Min,
                    4 => AggFunc::Max,
                    t => return Err(protocol_error(format!("unknown aggregate func {t}"))),
                };
                aggregates.push((f, r.str()?));
            }
            Statement::Aggregate(Aggregate {
                from,
                predicate,
                group_by,
                aggregates,
            })
        }
        4 => {
            let table = r.str()?;
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                values.push(decode_arg(r, params)?);
            }
            let declassifying = r.tags()?.into_iter().map(TagId).collect();
            Statement::Insert(Insert {
                table,
                values,
                declassifying,
            })
        }
        5 => {
            let table = r.str()?;
            let predicate = decode_pred(r, params, 0)?;
            let n = r.u32()? as usize;
            let mut set = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let c = r.str()?;
                set.push((c, decode_arg(r, params)?));
            }
            Statement::Update(Update {
                table,
                predicate,
                set,
            })
        }
        6 => {
            let table = r.str()?;
            let predicate = decode_pred(r, params, 0)?;
            Statement::Delete(Delete { table, predicate })
        }
        t => return Err(protocol_error(format!("unknown statement tag {t}"))),
    };
    if !r.at_end() {
        return Err(protocol_error("trailing bytes after statement"));
    }
    Ok(stmt)
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connection handshake: who the process is, its credentials, its
    /// initial label, and (for trusted platform connections) the shared
    /// platform secret that permits password-less [`Request::Login`].
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// The user to authenticate as; empty for anonymous.
        user: String,
        /// The user's password (ignored for anonymous).
        password: String,
        /// Platform secret for trusted connections (web/app servers).
        platform_secret: Option<String>,
        /// Initial process label (tag ids).
        label: Vec<u64>,
    },
    /// Re-authenticates a pooled connection for a new request: aborts any
    /// open transaction and resets the label. `password: None` is the
    /// trusted switch (session-cookie path) and requires the handshake to
    /// have presented the platform secret.
    Login {
        /// The user to act as; empty for anonymous.
        user: String,
        /// Password, or `None` for a trusted switch.
        password: Option<String>,
    },
    /// Registers a statement template, returning its id.
    Prepare {
        /// Template bytes from [`encode_template`].
        template: Vec<u8>,
    },
    /// Executes a prepared statement with the given parameters.
    Execute {
        /// Statement id from [`Response::Prepared`].
        stmt: u32,
        /// Parameters, in slot order.
        params: Vec<Datum>,
        /// Maximum rows in the inline first batch (0 = server default).
        fetch: u32,
    },
    /// Fetches the next batch from an open cursor.
    Fetch {
        /// Cursor id from [`Response::Rows`].
        cursor: u32,
        /// Maximum rows in the batch (0 = server default).
        max: u32,
    },
    /// Discards an open cursor.
    CloseCursor {
        /// The cursor to discard.
        cursor: u32,
    },
    /// Starts an explicit transaction.
    Begin,
    /// Commits the current transaction.
    Commit,
    /// Aborts the current transaction.
    Abort,
    /// Adds a tag to the process label.
    AddSecrecy {
        /// The tag id.
        tag: u64,
    },
    /// Raises the process label to its union with the given tags.
    RaiseLabel {
        /// Tag ids.
        tags: Vec<u64>,
    },
    /// Removes a tag from the process label (requires authority).
    Declassify {
        /// The tag id.
        tag: u64,
    },
    /// Removes every listed tag (requires authority for each).
    DeclassifyAll {
        /// Tag ids.
        tags: Vec<u64>,
    },
    /// Delegates authority for a tag to another principal.
    Delegate {
        /// The grantee principal id.
        grantee: u64,
        /// The tag id.
        tag: u64,
    },
    /// Calls a stored procedure (runs inside the DBMS, as in the paper).
    CallProcedure {
        /// Procedure name.
        name: String,
        /// Arguments.
        args: Vec<Datum>,
    },
    /// Clean connection shutdown.
    Goodbye,
    /// One poll of the replication stream: a replica (fully trusted — it
    /// receives every tuple regardless of label) asks for the log records
    /// after its applied-seq watermark. Requires no session; authenticated
    /// by the shared replication secret on every poll.
    ReplPoll {
        /// The replication secret configured on the primary.
        secret: String,
        /// First sequence number wanted (`applied_seq + 1`; 0 or 1 for a
        /// fresh replica).
        from_seq: u64,
        /// Maximum records in the reply (0 = server default).
        max: u32,
        /// The replica's durably applied sequence number (may trail
        /// `from_seq - 1` when prefetches are in flight). Feeds the
        /// primary's semi-synchronous commit gate.
        applied_seq: u64,
        /// The highest primary generation this replica has learned (0 when
        /// it has not synced yet). A primary seeing a *higher* generation
        /// than its own has been superseded and fences itself.
        generation: u64,
    },
    /// Asks for the server's current watermark: on a primary, the last
    /// write-ahead-log sequence number; on a replica, its applied-seq.
    /// Used by topology-aware clients for read-your-writes waits.
    Watermark,
    /// Phase one of two-phase commit: prepare the session's open
    /// transaction under the coordinator-assigned global id. An `Ok` reply
    /// is this participant's durable yes vote; an `Error` is a no vote (the
    /// transaction is aborted server-side, e.g. a commit-label-rule
    /// violation).
    TxnPrepare {
        /// The coordinator-assigned global transaction id.
        gid: u64,
    },
    /// Phase two of two-phase commit: the coordinator's verdict for a
    /// transaction previously prepared under `gid`. Idempotent — deciding
    /// an unknown gid still replies `Ok`, so a coordinator retrying after a
    /// crash converges.
    TxnDecide {
        /// The global transaction id.
        gid: u64,
        /// `true` to commit, `false` to abort.
        commit: bool,
    },
    /// Asks for the global ids of transactions prepared on this node and
    /// still awaiting a decision (in-doubt, e.g. recovered after a crash).
    /// Answered with [`Response::InDoubt`].
    TxnRecover,
    /// Asks what this node knows about a global transaction — answered with
    /// [`Response::TxnOutcome`]. Coordinator recovery commits an in-doubt
    /// gid iff some participant reports it committed, else presumes abort.
    TxnOutcome {
        /// The global transaction id.
        gid: u64,
    },
    /// Promotes this (replica) server to primary: its database leaves
    /// read-only mode, the log re-anchors under a bumped generation, and
    /// subsequent `ReplPoll`s from it fence the old primary. Requires the
    /// replication secret; answered with [`Response::HaStatus`] describing
    /// the node after promotion.
    Promote {
        /// The replication secret configured on the cluster.
        secret: String,
    },
    /// Tells a (possibly zombie) primary it has been superseded by
    /// `generation`: it must refuse writes and replication polls with
    /// [`code::FENCED`] from here on. Requires the replication secret;
    /// idempotent.
    Fence {
        /// The replication secret configured on the cluster.
        secret: String,
        /// The superseding generation.
        generation: u64,
    },
    /// Asks for the node's high-availability status — answered with
    /// [`Response::HaStatus`]. Requires no session, so a failover router
    /// can probe nodes it has no credentials on yet.
    HaStatus,
    /// Hot-swaps the server's QoS configuration — per-statement execution
    /// budgets and per-principal admission quotas — without a restart and
    /// without dropping connections. Requires the platform secret (the same
    /// trust anchor as acting-for logins); answered with [`Response::Ok`].
    /// Statements already executing finish under the budget they were armed
    /// with; the next statement on every connection sees the new limits.
    Reconfigure {
        /// The platform secret configured on the server.
        secret: String,
        /// The new QoS configuration, encoded with `QosConfig::to_wire`.
        config: Vec<u64>,
    },
    /// Asks for the unified metrics tree — answered with
    /// [`Response::Stats`]. Requires no session, so monitoring can scrape a
    /// node it has no credentials on.
    Stats,
}

/// The unified observability tree ([`Request::Stats`]): named counter
/// groups — `engine`, `server`, `qos`, `audit` — replacing the three
/// disjoint per-crate stats surfaces. The schema is open: groups and
/// counters are carried by name so a newer server can add counters without
/// a protocol bump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The counter groups.
    pub groups: Vec<MetricsGroup>,
}

/// One named group of counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsGroup {
    /// Group name (e.g. `"engine"`, `"qos"`).
    pub name: String,
    /// `(counter name, value)` pairs.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Starts (or extends) a named group; returns its index.
    pub fn group_mut(&mut self, name: &str) -> &mut MetricsGroup {
        if let Some(i) = self.groups.iter().position(|g| g.name == name) {
            return &mut self.groups[i];
        }
        self.groups.push(MetricsGroup {
            name: name.to_string(),
            counters: Vec::new(),
        });
        self.groups.last_mut().expect("just pushed")
    }

    /// Looks up `group.counter`, e.g. `get("engine", "commits")`.
    pub fn get(&self, group: &str, counter: &str) -> Option<u64> {
        self.groups
            .iter()
            .find(|g| g.name == group)?
            .counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|(_, v)| *v)
    }
}

impl MetricsGroup {
    /// Appends a counter.
    pub fn push(&mut self, name: &str, value: u64) -> &mut Self {
        self.counters.push((name.to_string(), value));
        self
    }
}

/// One result row on the wire: the tuple's label and its values.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The tuple's label (tag ids).
    pub label: Vec<u64>,
    /// The values, in column order.
    pub values: Vec<Datum>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    HelloOk {
        /// The authenticated principal's id.
        principal: u64,
        /// The granted initial label.
        label: Vec<u64>,
    },
    /// Generic success. Carries the process label after the operation —
    /// commit can run deferred triggers whose contamination the client's
    /// label mirror must follow (the paper's Section 7.2 label
    /// piggybacking).
    Ok {
        /// The process label after the operation.
        label: Vec<u64>,
        /// The server's watermark after the operation (primary: last WAL
        /// seq; replica: applied seq). After a commit, this bounds the
        /// position a replica must reach before a read-your-writes read.
        seq: u64,
    },
    /// An error; see [`encode_error`]/[`decode_error`].
    Error {
        /// Wire error code ([`code`]).
        code: u8,
        /// Human-readable detail.
        detail: String,
        /// First label payload (meaning depends on `code`).
        label0: Vec<u64>,
        /// Second label payload.
        label1: Vec<u64>,
        /// Auxiliary integer payload (e.g. a tag id).
        aux: u64,
        /// The process label after the failed operation, when a session
        /// exists. A failed statement can still have contaminated the
        /// process (a trigger raised the label before the statement
        /// aborted — label state is process state, not transaction state),
        /// so the client mirror must follow error paths too. `None` for
        /// errors raised outside a session (handshake, protocol).
        session_label: Option<Vec<u64>>,
    },
    /// A statement was prepared.
    Prepared {
        /// The statement id to pass to [`Request::Execute`].
        id: u32,
    },
    /// Query results: the first batch inline, plus a cursor when more rows
    /// remain.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// The first batch of rows.
        rows: Vec<WireRow>,
        /// Cursor for the remainder; 0 when this batch completes the result.
        cursor: u32,
        /// The process label after the statement (triggers may contaminate).
        label: Vec<u64>,
    },
    /// DML result.
    Affected {
        /// Affected row count.
        n: u64,
        /// The process label after the statement (triggers may contaminate).
        label: Vec<u64>,
        /// The server's watermark after the statement (see
        /// [`Response::Ok::seq`]).
        seq: u64,
    },
    /// The process label after a label operation.
    LabelIs {
        /// Tag ids.
        tags: Vec<u64>,
    },
    /// A fetched batch.
    Batch {
        /// The rows.
        rows: Vec<WireRow>,
        /// Whether the cursor is exhausted (and closed).
        done: bool,
    },
    /// Acknowledges [`Request::Goodbye`].
    Bye,
    /// Result of [`Request::CallProcedure`]: the rows plus the process label
    /// after the call — a stored authority closure can leave the process
    /// with contamination it could not declassify, and the client's local
    /// label mirror must follow.
    ProcResult {
        /// The process label after the call.
        label: Vec<u64>,
        /// Output column names.
        columns: Vec<String>,
        /// The rows.
        rows: Vec<WireRow>,
    },
    /// One batch of the replication stream ([`Request::ReplPoll`]).
    ReplBatch {
        /// Identifies the primary's log incarnation; when it changes, the
        /// replica's watermark is meaningless and it must re-bootstrap.
        epoch: u64,
        /// The serving node's primary generation. A replica that has seen a
        /// higher generation (a promoted successor) must refuse this batch:
        /// it comes from a fenced predecessor.
        generation: u64,
        /// `true` when the replica must discard its state before applying:
        /// this batch starts the checkpoint-anchored snapshot.
        reset: bool,
        /// Sequence number of `records[0]`.
        first_seq: u64,
        /// The primary's current last (durable) sequence number; the
        /// replica's lag is `end_seq - applied_seq`.
        end_seq: u64,
        /// Log records encoded with
        /// [`ifdb_storage::Wal::encode_record`](ifdb_storage::wal::Wal::encode_record).
        records: Vec<Vec<u8>>,
    },
    /// The server's current watermark ([`Request::Watermark`]).
    Watermark {
        /// Primary: last WAL sequence number; replica: applied-seq.
        seq: u64,
        /// The log epoch the watermark belongs to (0 when a replica has not
        /// connected to its primary yet).
        epoch: u64,
    },
    /// Global ids of transactions prepared on this node and awaiting a
    /// coordinator decision ([`Request::TxnRecover`]).
    InDoubt {
        /// In-doubt global transaction ids, ascending.
        gids: Vec<u64>,
    },
    /// What this node knows about a global transaction
    /// ([`Request::TxnOutcome`]).
    TxnOutcome {
        /// `None`: unknown or still in-doubt here; `Some(true)`: committed
        /// here; `Some(false)`: aborted here.
        committed: Option<bool>,
    },
    /// The node's high-availability status ([`Request::HaStatus`],
    /// [`Request::Promote`]).
    HaStatus {
        /// The node's current role.
        role: HaRole,
        /// The node's primary generation (for a replica: the highest
        /// generation learned from its stream; 0 before first sync).
        generation: u64,
        /// The node's log epoch (for a replica: its primary's epoch as
        /// learned from the stream; 0 before first sync).
        epoch: u64,
        /// The node's watermark (primary: last WAL seq; replica: applied
        /// seq).
        seq: u64,
    },
    /// The unified metrics tree ([`Request::Stats`]).
    Stats {
        /// The counter groups.
        snapshot: MetricsSnapshot,
    },
}

/// A node's role in the replication topology, as reported by
/// [`Response::HaStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaRole {
    /// Accepting writes and serving the replication stream.
    Primary,
    /// Read-only, applying a primary's stream.
    Replica,
    /// A former primary superseded by a higher generation: refuses writes
    /// and replication polls with [`code::FENCED`].
    Fenced,
}

impl HaRole {
    fn to_wire(self) -> u8 {
        match self {
            HaRole::Primary => 0,
            HaRole::Replica => 1,
            HaRole::Fenced => 2,
        }
    }

    fn from_wire(b: u8) -> IfdbResult<Self> {
        match b {
            0 => Ok(HaRole::Primary),
            1 => Ok(HaRole::Replica),
            2 => Ok(HaRole::Fenced),
            _ => Err(protocol_error(format!("unknown HA role {b}"))),
        }
    }
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Hello {
                version,
                user,
                password,
                platform_secret,
                label,
            } => {
                w.u8(1);
                w.u32(*version);
                w.str(user);
                w.str(password);
                match platform_secret {
                    None => w.u8(0),
                    Some(s) => {
                        w.u8(1);
                        w.str(s);
                    }
                }
                w.tags(label);
            }
            Request::Login { user, password } => {
                w.u8(2);
                w.str(user);
                match password {
                    None => w.u8(0),
                    Some(p) => {
                        w.u8(1);
                        w.str(p);
                    }
                }
            }
            Request::Prepare { template } => {
                w.u8(3);
                w.u32(template.len() as u32);
                w.buf.extend_from_slice(template);
            }
            Request::Execute {
                stmt,
                params,
                fetch,
            } => {
                w.u8(4);
                w.u32(*stmt);
                w.datums(params);
                w.u32(*fetch);
            }
            Request::Fetch { cursor, max } => {
                w.u8(5);
                w.u32(*cursor);
                w.u32(*max);
            }
            Request::CloseCursor { cursor } => {
                w.u8(6);
                w.u32(*cursor);
            }
            Request::Begin => w.u8(7),
            Request::Commit => w.u8(8),
            Request::Abort => w.u8(9),
            Request::AddSecrecy { tag } => {
                w.u8(10);
                w.u64(*tag);
            }
            Request::RaiseLabel { tags } => {
                w.u8(11);
                w.tags(tags);
            }
            Request::Declassify { tag } => {
                w.u8(12);
                w.u64(*tag);
            }
            Request::DeclassifyAll { tags } => {
                w.u8(13);
                w.tags(tags);
            }
            Request::Delegate { grantee, tag } => {
                w.u8(14);
                w.u64(*grantee);
                w.u64(*tag);
            }
            Request::CallProcedure { name, args } => {
                w.u8(15);
                w.str(name);
                w.datums(args);
            }
            Request::Goodbye => w.u8(16),
            Request::ReplPoll {
                secret,
                from_seq,
                max,
                applied_seq,
                generation,
            } => {
                w.u8(17);
                w.str(secret);
                w.u64(*from_seq);
                w.u32(*max);
                w.u64(*applied_seq);
                w.u64(*generation);
            }
            Request::Watermark => w.u8(18),
            Request::TxnPrepare { gid } => {
                w.u8(19);
                w.u64(*gid);
            }
            Request::TxnDecide { gid, commit } => {
                w.u8(20);
                w.u64(*gid);
                w.u8(*commit as u8);
            }
            Request::TxnRecover => w.u8(21),
            Request::TxnOutcome { gid } => {
                w.u8(22);
                w.u64(*gid);
            }
            Request::Promote { secret } => {
                w.u8(23);
                w.str(secret);
            }
            Request::Fence { secret, generation } => {
                w.u8(24);
                w.str(secret);
                w.u64(*generation);
            }
            Request::HaStatus => w.u8(25),
            Request::Reconfigure { secret, config } => {
                w.u8(26);
                w.str(secret);
                w.tags(config);
            }
            Request::Stats => w.u8(27),
        }
        w.finish()
    }

    /// Decodes a request from a frame payload.
    pub fn decode(payload: &[u8]) -> IfdbResult<Request> {
        let r = &mut Reader::new(payload);
        let req = match r.u8()? {
            1 => {
                let version = r.u32()?;
                let user = r.str()?;
                let password = r.str()?;
                let platform_secret = match r.u8()? {
                    0 => None,
                    _ => Some(r.str()?),
                };
                let label = r.tags()?;
                Request::Hello {
                    version,
                    user,
                    password,
                    platform_secret,
                    label,
                }
            }
            2 => {
                let user = r.str()?;
                let password = match r.u8()? {
                    0 => None,
                    _ => Some(r.str()?),
                };
                Request::Login { user, password }
            }
            3 => {
                let len = r.u32()? as usize;
                Request::Prepare {
                    template: r.take(len)?.to_vec(),
                }
            }
            4 => Request::Execute {
                stmt: r.u32()?,
                params: r.datums()?,
                fetch: r.u32()?,
            },
            5 => Request::Fetch {
                cursor: r.u32()?,
                max: r.u32()?,
            },
            6 => Request::CloseCursor { cursor: r.u32()? },
            7 => Request::Begin,
            8 => Request::Commit,
            9 => Request::Abort,
            10 => Request::AddSecrecy { tag: r.u64()? },
            11 => Request::RaiseLabel { tags: r.tags()? },
            12 => Request::Declassify { tag: r.u64()? },
            13 => Request::DeclassifyAll { tags: r.tags()? },
            14 => Request::Delegate {
                grantee: r.u64()?,
                tag: r.u64()?,
            },
            15 => Request::CallProcedure {
                name: r.str()?,
                args: r.datums()?,
            },
            16 => Request::Goodbye,
            17 => Request::ReplPoll {
                secret: r.str()?,
                from_seq: r.u64()?,
                max: r.u32()?,
                applied_seq: r.u64()?,
                generation: r.u64()?,
            },
            18 => Request::Watermark,
            19 => Request::TxnPrepare { gid: r.u64()? },
            20 => Request::TxnDecide {
                gid: r.u64()?,
                commit: r.u8()? != 0,
            },
            21 => Request::TxnRecover,
            22 => Request::TxnOutcome { gid: r.u64()? },
            23 => Request::Promote { secret: r.str()? },
            24 => Request::Fence {
                secret: r.str()?,
                generation: r.u64()?,
            },
            25 => Request::HaStatus,
            26 => Request::Reconfigure {
                secret: r.str()?,
                config: r.tags()?,
            },
            27 => Request::Stats,
            t => return Err(protocol_error(format!("unknown request tag {t}"))),
        };
        if !r.at_end() {
            return Err(protocol_error("trailing bytes after request"));
        }
        Ok(req)
    }
}

fn encode_rows(w: &mut Writer, rows: &[WireRow]) {
    w.u32(rows.len() as u32);
    for row in rows {
        w.tags(&row.label);
        w.datums(&row.values);
    }
}

fn decode_rows(r: &mut Reader<'_>) -> IfdbResult<Vec<WireRow>> {
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        rows.push(WireRow {
            label: r.tags()?,
            values: r.datums()?,
        });
    }
    Ok(rows)
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_to(&mut w);
        w.finish()
    }

    /// Encodes into a caller-owned scratch buffer (cleared first). The
    /// server's reactor keeps one scratch buffer per connection so the hot
    /// response path reuses its allocation frame after frame instead of
    /// allocating per response.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer {
            buf: std::mem::take(buf),
        };
        w.buf.clear();
        self.encode_to(&mut w);
        *buf = w.finish();
    }

    fn encode_to(&self, w: &mut Writer) {
        match self {
            Response::HelloOk { principal, label } => {
                w.u8(128);
                w.u64(*principal);
                w.tags(label);
            }
            Response::Ok { label, seq } => {
                w.u8(129);
                w.tags(label);
                w.u64(*seq);
            }
            Response::Error {
                code,
                detail,
                label0,
                label1,
                aux,
                session_label,
            } => {
                w.u8(130);
                w.u8(*code);
                w.str(detail);
                w.tags(label0);
                w.tags(label1);
                w.u64(*aux);
                match session_label {
                    None => w.u8(0),
                    Some(tags) => {
                        w.u8(1);
                        w.tags(tags);
                    }
                }
            }
            Response::Prepared { id } => {
                w.u8(131);
                w.u32(*id);
            }
            Response::Rows {
                columns,
                rows,
                cursor,
                label,
            } => {
                w.u8(132);
                w.u32(columns.len() as u32);
                for c in columns {
                    w.str(c);
                }
                encode_rows(w, rows);
                w.u32(*cursor);
                w.tags(label);
            }
            Response::Affected { n, label, seq } => {
                w.u8(133);
                w.u64(*n);
                w.tags(label);
                w.u64(*seq);
            }
            Response::LabelIs { tags } => {
                w.u8(134);
                w.tags(tags);
            }
            Response::Batch { rows, done } => {
                w.u8(135);
                encode_rows(w, rows);
                w.u8(*done as u8);
            }
            Response::Bye => w.u8(136),
            Response::ProcResult {
                label,
                columns,
                rows,
            } => {
                w.u8(137);
                w.tags(label);
                w.u32(columns.len() as u32);
                for c in columns {
                    w.str(c);
                }
                encode_rows(w, rows);
            }
            Response::ReplBatch {
                epoch,
                generation,
                reset,
                first_seq,
                end_seq,
                records,
            } => {
                w.u8(138);
                w.u64(*epoch);
                w.u64(*generation);
                w.u8(*reset as u8);
                w.u64(*first_seq);
                w.u64(*end_seq);
                w.u32(records.len() as u32);
                for r in records {
                    w.u32(r.len() as u32);
                    w.buf.extend_from_slice(r);
                }
            }
            Response::Watermark { seq, epoch } => {
                w.u8(139);
                w.u64(*seq);
                w.u64(*epoch);
            }
            Response::InDoubt { gids } => {
                w.u8(140);
                w.tags(gids);
            }
            Response::TxnOutcome { committed } => {
                w.u8(141);
                w.u8(match committed {
                    None => 0,
                    Some(true) => 1,
                    Some(false) => 2,
                });
            }
            Response::HaStatus {
                role,
                generation,
                epoch,
                seq,
            } => {
                w.u8(142);
                w.u8(role.to_wire());
                w.u64(*generation);
                w.u64(*epoch);
                w.u64(*seq);
            }
            Response::Stats { snapshot } => {
                w.u8(143);
                w.u32(snapshot.groups.len() as u32);
                for g in &snapshot.groups {
                    w.str(&g.name);
                    w.u32(g.counters.len() as u32);
                    for (name, value) in &g.counters {
                        w.str(name);
                        w.u64(*value);
                    }
                }
            }
        }
    }

    /// Decodes a response from a frame payload.
    pub fn decode(payload: &[u8]) -> IfdbResult<Response> {
        let r = &mut Reader::new(payload);
        let resp = match r.u8()? {
            128 => Response::HelloOk {
                principal: r.u64()?,
                label: r.tags()?,
            },
            129 => Response::Ok {
                label: r.tags()?,
                seq: r.u64()?,
            },
            130 => Response::Error {
                code: r.u8()?,
                detail: r.str()?,
                label0: r.tags()?,
                label1: r.tags()?,
                aux: r.u64()?,
                session_label: match r.u8()? {
                    0 => None,
                    _ => Some(r.tags()?),
                },
            },
            131 => Response::Prepared { id: r.u32()? },
            132 => {
                let n = r.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    columns.push(r.str()?);
                }
                let rows = decode_rows(r)?;
                let cursor = r.u32()?;
                let label = r.tags()?;
                Response::Rows {
                    columns,
                    rows,
                    cursor,
                    label,
                }
            }
            133 => Response::Affected {
                n: r.u64()?,
                label: r.tags()?,
                seq: r.u64()?,
            },
            134 => Response::LabelIs { tags: r.tags()? },
            135 => Response::Batch {
                rows: decode_rows(r)?,
                done: r.u8()? != 0,
            },
            136 => Response::Bye,
            137 => {
                let label = r.tags()?;
                let n = r.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    columns.push(r.str()?);
                }
                Response::ProcResult {
                    label,
                    columns,
                    rows: decode_rows(r)?,
                }
            }
            138 => {
                let epoch = r.u64()?;
                let generation = r.u64()?;
                let reset = r.u8()? != 0;
                let first_seq = r.u64()?;
                let end_seq = r.u64()?;
                let n = r.u32()? as usize;
                if n > r.buf.len() + 1 {
                    return Err(protocol_error("record count exceeds payload"));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.u32()? as usize;
                    records.push(r.take(len)?.to_vec());
                }
                Response::ReplBatch {
                    epoch,
                    generation,
                    reset,
                    first_seq,
                    end_seq,
                    records,
                }
            }
            139 => Response::Watermark {
                seq: r.u64()?,
                epoch: r.u64()?,
            },
            140 => Response::InDoubt { gids: r.tags()? },
            141 => Response::TxnOutcome {
                committed: match r.u8()? {
                    0 => None,
                    1 => Some(true),
                    _ => Some(false),
                },
            },
            142 => Response::HaStatus {
                role: HaRole::from_wire(r.u8()?)?,
                generation: r.u64()?,
                epoch: r.u64()?,
                seq: r.u64()?,
            },
            143 => {
                let ngroups = r.u32()? as usize;
                let mut groups = Vec::with_capacity(ngroups.min(256));
                for _ in 0..ngroups {
                    let name = r.str()?;
                    let ncounters = r.u32()? as usize;
                    let mut counters = Vec::with_capacity(ncounters.min(1024));
                    for _ in 0..ncounters {
                        counters.push((r.str()?, r.u64()?));
                    }
                    groups.push(MetricsGroup { name, counters });
                }
                Response::Stats {
                    snapshot: MetricsSnapshot { groups },
                }
            }
            t => return Err(protocol_error(format!("unknown response tag {t}"))),
        };
        if !r.at_end() {
            return Err(protocol_error("trailing bytes after response"));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Error mapping
// ---------------------------------------------------------------------

/// Wire error codes. Codes with structural payloads round-trip to their
/// exact [`IfdbError`] variant; the rest decode to [`IfdbError::Remote`].
pub mod code {
    /// Catch-all for errors without a structural mapping.
    pub const REMOTE: u8 = 1;
    /// Snapshot-isolation write conflict (drivers classify these as
    /// rollbacks, not failures).
    pub const WRITE_CONFLICT: u8 = 2;
    /// Unique-constraint violation (detail = constraint name).
    pub const UNIQUE: u8 = 3;
    /// Foreign-key violation (detail = constraint name).
    pub const FOREIGN_KEY: u8 = 4;
    /// RESTRICT delete violation (detail = constraint name).
    pub const RESTRICT: u8 = 5;
    /// Unknown table (detail = name).
    pub const UNKNOWN_TABLE: u8 = 6;
    /// Unknown column (detail = name).
    pub const UNKNOWN_COLUMN: u8 = 7;
    /// Unknown procedure (detail = name).
    pub const UNKNOWN_PROCEDURE: u8 = 8;
    /// Write Rule violation (label0 = tuple, label1 = process).
    pub const WRITE_RULE: u8 = 9;
    /// Commit-label rule violation (label0 = commit, label1 = tuple).
    pub const COMMIT_LABEL: u8 = 10;
    /// Clearance rule violation (aux = tag id).
    pub const CLEARANCE: u8 = 11;
    /// Missing DECLASSIFYING clause (detail = constraint, label0 = missing).
    pub const DECLASSIFYING_REQUIRED: u8 = 12;
    /// Recovered table awaiting DDL re-run (detail = table).
    pub const CONSTRAINTS_PENDING: u8 = 13;
    /// Invalid statement (detail = message).
    pub const INVALID_STATEMENT: u8 = 14;
    /// A DIFC-layer denial whose display is carried in detail, with the
    /// no-authority case's payload in aux/label0 when applicable.
    pub const DIFC: u8 = 15;
    /// The server refused the connection or request due to admission
    /// control (accept queue full, too many connections).
    pub const SERVER_BUSY: u8 = 16;
    /// The statement exceeded the per-connection statement timeout; the
    /// enclosing transaction was aborted.
    pub const STATEMENT_TIMEOUT: u8 = 17;
    /// A malformed frame or message.
    pub const PROTOCOL: u8 = 18;
    /// The server is shutting down.
    pub const SHUTTING_DOWN: u8 = 19;
    /// The session is read-only (a log-shipping replica); writes must go to
    /// the primary.
    pub const READ_ONLY: u8 = 20;
    /// Replication is not enabled on this server, or the replication secret
    /// did not match.
    pub const REPLICATION_DENIED: u8 = 21;
    /// This node is a fenced ex-primary: a successor of a higher generation
    /// took over (aux = that generation, when known). Writes and
    /// replication polls are refused; clients fail over to the successor.
    pub const FENCED: u8 = 22;
    /// Semi-synchronous replication could not confirm the write on the
    /// replica within the configured window. The commit is durable on the
    /// primary but **indeterminate** under failover: a successor may or may
    /// not carry it.
    pub const REPLICATION_LAG: u8 = 23;
    /// A statement exhausted its execution budget and was killed; the
    /// enclosing implicit transaction was aborted (detail = resource,
    /// aux = limit, label0 = \[used\]). Fail-closed: nothing of the
    /// statement's effect survives.
    pub const BUDGET_EXCEEDED: u8 = 24;
    /// The principal is over its admission quota (in-flight statements or
    /// requests per second); the request was refused, not executed. Safe to
    /// retry after a backoff.
    pub const QUOTA_EXCEEDED: u8 = 25;
}

/// Encodes an [`IfdbError`] as a wire error response.
pub fn encode_error(e: &IfdbError) -> Response {
    let mut code_ = code::REMOTE;
    let mut detail = e.to_string();
    let mut label0 = Vec::new();
    let mut label1 = Vec::new();
    let mut aux = 0u64;
    match e {
        IfdbError::Storage(StorageError::WriteConflict { txn, holder }) => {
            code_ = code::WRITE_CONFLICT;
            aux = *txn;
            detail = format!("write conflict with transaction {holder}");
        }
        IfdbError::UniqueViolation { constraint } => {
            code_ = code::UNIQUE;
            detail = constraint.clone();
        }
        IfdbError::ForeignKeyViolation { constraint } => {
            code_ = code::FOREIGN_KEY;
            detail = constraint.clone();
        }
        IfdbError::RestrictViolation { constraint } => {
            code_ = code::RESTRICT;
            detail = constraint.clone();
        }
        IfdbError::UnknownTable(n) | IfdbError::UnknownView(n) => {
            code_ = code::UNKNOWN_TABLE;
            detail = n.clone();
        }
        IfdbError::UnknownColumn(n) => {
            code_ = code::UNKNOWN_COLUMN;
            detail = n.clone();
        }
        IfdbError::UnknownProcedure(n) => {
            code_ = code::UNKNOWN_PROCEDURE;
            detail = n.clone();
        }
        IfdbError::WriteRuleViolation {
            tuple_label,
            process_label,
        } => {
            code_ = code::WRITE_RULE;
            label0 = tuple_label.to_array();
            label1 = process_label.to_array();
            detail = String::new();
        }
        IfdbError::CommitLabelViolation {
            commit_label,
            tuple_label,
        } => {
            code_ = code::COMMIT_LABEL;
            label0 = commit_label.to_array();
            label1 = tuple_label.to_array();
            detail = String::new();
        }
        IfdbError::ClearanceViolation { tag } => {
            code_ = code::CLEARANCE;
            aux = tag.0;
            detail = String::new();
        }
        IfdbError::DeclassifyingRequired {
            constraint,
            missing,
        } => {
            code_ = code::DECLASSIFYING_REQUIRED;
            detail = constraint.clone();
            label0 = missing.to_array();
        }
        IfdbError::ConstraintsPending { table } => {
            code_ = code::CONSTRAINTS_PENDING;
            detail = table.clone();
        }
        IfdbError::InvalidStatement(s) => {
            code_ = code::INVALID_STATEMENT;
            detail = s.clone();
        }
        IfdbError::Difc(d) => {
            code_ = code::DIFC;
            if let DifcError::NoAuthority { principal, tag } = d {
                aux = tag.0;
                label0 = vec![principal.0];
            }
        }
        IfdbError::ReadOnlyReplica => {
            code_ = code::READ_ONLY;
            detail = String::new();
        }
        IfdbError::BudgetExceeded {
            resource,
            limit,
            used,
        } => {
            code_ = code::BUDGET_EXCEEDED;
            detail = resource.clone();
            aux = *limit;
            label0 = vec![*used];
        }
        IfdbError::QuotaExceeded { detail: d } => {
            code_ = code::QUOTA_EXCEEDED;
            detail = d.clone();
        }
        IfdbError::Remote { code: c, detail: d } => {
            code_ = u8::try_from(*c).unwrap_or(code::REMOTE);
            detail = d.clone();
        }
        _ => {}
    }
    Response::Error {
        code: code_,
        detail,
        label0,
        label1,
        aux,
        session_label: None,
    }
}

/// Decodes a wire error back into the closest [`IfdbError`].
pub fn decode_error(
    code_: u8,
    detail: String,
    label0: Vec<u64>,
    label1: Vec<u64>,
    aux: u64,
) -> IfdbError {
    match code_ {
        code::WRITE_CONFLICT => IfdbError::Storage(StorageError::WriteConflict {
            txn: aux,
            holder: 0,
        }),
        code::UNIQUE => IfdbError::UniqueViolation { constraint: detail },
        code::FOREIGN_KEY => IfdbError::ForeignKeyViolation { constraint: detail },
        code::RESTRICT => IfdbError::RestrictViolation { constraint: detail },
        code::UNKNOWN_TABLE => IfdbError::UnknownTable(detail),
        code::UNKNOWN_COLUMN => IfdbError::UnknownColumn(detail),
        code::UNKNOWN_PROCEDURE => IfdbError::UnknownProcedure(detail),
        code::WRITE_RULE => IfdbError::WriteRuleViolation {
            tuple_label: Label::from_array(&label0),
            process_label: Label::from_array(&label1),
        },
        code::COMMIT_LABEL => IfdbError::CommitLabelViolation {
            commit_label: Label::from_array(&label0),
            tuple_label: Label::from_array(&label1),
        },
        code::CLEARANCE => IfdbError::ClearanceViolation { tag: TagId(aux) },
        code::DECLASSIFYING_REQUIRED => IfdbError::DeclassifyingRequired {
            constraint: detail,
            missing: Label::from_array(&label0),
        },
        code::CONSTRAINTS_PENDING => IfdbError::ConstraintsPending { table: detail },
        code::INVALID_STATEMENT => IfdbError::InvalidStatement(detail),
        code::READ_ONLY => IfdbError::ReadOnlyReplica,
        code::BUDGET_EXCEEDED => IfdbError::BudgetExceeded {
            resource: detail,
            limit: aux,
            used: label0.first().copied().unwrap_or(0),
        },
        code::QUOTA_EXCEEDED => IfdbError::QuotaExceeded { detail },
        code::DIFC if aux != 0 && label0.len() == 1 => IfdbError::Difc(DifcError::NoAuthority {
            principal: ifdb_difc::PrincipalId(label0[0]),
            tag: TagId(aux),
        }),
        c => IfdbError::Remote {
            code: c as u16,
            detail,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb::Predicate;

    #[test]
    fn frame_round_trip_and_checksum_rejection() {
        let payload = Request::Begin.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, payload);

        // Clean EOF at a boundary.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());

        // Bit flip in the payload → checksum mismatch.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(read_frame(&mut corrupt.as_slice()).is_err());

        // Truncated frame → error, not silent None.
        let truncated = &buf[..buf.len() - 1];
        assert!(read_frame(&mut &truncated[..]).is_err());

        // Oversized declared length is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn template_is_shape_canonical() {
        let q1 =
            Statement::Select(Select::star("t").filter(Predicate::Eq("id".into(), Datum::Int(1))));
        let q2 = Statement::Select(
            Select::star("t").filter(Predicate::Eq("id".into(), Datum::Int(999))),
        );
        let (t1, p1) = encode_template(&q1);
        let (t2, p2) = encode_template(&q2);
        assert_eq!(t1, t2, "same shape, same template bytes");
        assert_ne!(p1, p2);
        assert_eq!(decode_template(&t1, &p1).unwrap(), q1);
        assert_eq!(decode_template(&t2, &p2).unwrap(), q2);
    }

    #[test]
    fn template_rejects_bad_param_slots() {
        let q =
            Statement::Select(Select::star("t").filter(Predicate::Eq("id".into(), Datum::Int(1))));
        let (t, _) = encode_template(&q);
        assert!(decode_template(&t, &[]).is_err());
    }

    #[test]
    fn qos_messages_round_trip() {
        let reqs = vec![
            Request::Reconfigure {
                secret: "s3cret".into(),
                config: vec![9, 1, 0, 1, 500, 0, 0, 0, 0],
            },
            Request::Stats,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .group_mut("engine")
            .push("commits", 42)
            .push("aborts", 1);
        snapshot.group_mut("qos").push("quota_refusals", 7);
        let resp = Response::Stats {
            snapshot: snapshot.clone(),
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        assert_eq!(snapshot.get("engine", "commits"), Some(42));
        assert_eq!(snapshot.get("qos", "quota_refusals"), Some(7));
        assert_eq!(snapshot.get("qos", "missing"), None);
    }

    #[test]
    fn error_codes_round_trip_structurally() {
        let cases = vec![
            IfdbError::Storage(StorageError::WriteConflict { txn: 7, holder: 0 }),
            IfdbError::UniqueViolation {
                constraint: "t_pkey".into(),
            },
            IfdbError::UnknownTable("missing".into()),
            IfdbError::CommitLabelViolation {
                commit_label: Label::from_array(&[1, 2]),
                tuple_label: Label::from_array(&[1]),
            },
            IfdbError::ConstraintsPending { table: "t".into() },
            IfdbError::InvalidStatement("nope".into()),
            IfdbError::BudgetExceeded {
                resource: "rows".into(),
                limit: 1000,
                used: 1024,
            },
            IfdbError::QuotaExceeded {
                detail: "in-flight quota (2) exhausted".into(),
            },
        ];
        for e in cases {
            let Response::Error {
                code,
                detail,
                label0,
                label1,
                aux,
                ..
            } = encode_error(&e)
            else {
                panic!("encode_error must produce Error");
            };
            let back = decode_error(code, detail, label0, label1, aux);
            assert_eq!(back, e, "error must round-trip");
        }
        // Errors without a structural mapping decode to Remote with the
        // display text preserved.
        let e = IfdbError::NotAdministrator;
        let Response::Error {
            code,
            detail,
            label0,
            label1,
            aux,
            ..
        } = encode_error(&e)
        else {
            panic!()
        };
        let back = decode_error(code, detail, label0, label1, aux);
        assert!(matches!(back, IfdbError::Remote { .. }));
        assert!(back.to_string().contains("administrator"));
    }
}
