//! Range partitioning of tables across primary shard nodes.
//!
//! A [`ShardMap`] describes how the logical database is split over N
//! independent primaries: per table, one *shard-key column* and a list of
//! key ranges, each owned by one shard. TPC-C shards naturally by warehouse
//! and CarTel by vehicle (the paper's workloads both carry an obvious
//! partition key), so range partitioning on a single integer column covers
//! the reproduction's workloads without a general-purpose planner.
//!
//! The map is shared verbatim by both sides of the wire: the client's
//! shard-aware router ([`crate::router::RoutedConnection`]) uses it to route
//! statements and to decide when a transaction needs two-phase commit, and
//! each server carries it (plus its own shard id) in its `ServerConfig` so
//! operators configure every node from one description.
//!
//! Tables absent from the map — and statements whose predicate does not pin
//! the shard key to a single value — live on / route to shard 0, the *home
//! shard*. Scatter-gather reads across shards are out of scope here; the
//! workloads this reproduces always touch sharded tables through their
//! partition key.

use std::collections::{HashMap, HashSet};

use ifdb::Statement;
use ifdb_storage::Datum;

/// The shard every unmapped table (and unroutable statement) belongs to.
pub const HOME_SHARD: usize = 0;

/// One contiguous key range owned by a shard: `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Lowest key in the range (inclusive).
    pub lo: i64,
    /// Highest key in the range (inclusive).
    pub hi: i64,
    /// The owning shard.
    pub shard: usize,
}

/// How one table is partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSharding {
    /// The shard-key column's name (matched against predicates).
    pub column: String,
    /// The shard-key column's position (matched against INSERT values).
    pub column_index: usize,
    /// The key ranges, disjoint, in ascending order.
    pub ranges: Vec<ShardRange>,
}

/// Table → key-range → shard map. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    tables: HashMap<String, TableSharding>,
    /// Tables maintained identically on every shard (read-mostly catalogs,
    /// like TPC-C's `item`): the router reads them from whatever shard the
    /// transaction already touches, adding no commit participant.
    replicated: HashSet<String>,
}

impl ShardMap {
    /// An empty map over `shards` nodes: every table lives on the home
    /// shard until [`ShardMap::shard_table`] partitions it.
    pub fn new(shards: usize) -> Self {
        ShardMap {
            shards: shards.max(1),
            tables: HashMap::new(),
            replicated: HashSet::new(),
        }
    }

    /// The trivial single-node map (everything on shard 0).
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Number of shard nodes.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Partitions `table` on `column` (at `column_index` in insert order)
    /// over the given ranges.
    pub fn shard_table(
        mut self,
        table: &str,
        column: &str,
        column_index: usize,
        ranges: Vec<ShardRange>,
    ) -> Self {
        debug_assert!(ranges.iter().all(|r| r.shard < self.shards));
        self.tables.insert(
            table.to_string(),
            TableSharding {
                column: column.to_string(),
                column_index,
                ranges,
            },
        );
        self
    }

    /// Splits the key space `lo..=hi` into `shards` near-equal contiguous
    /// ranges — the TPC-C "warehouses 1..=W over N nodes" shape.
    pub fn contiguous_ranges(lo: i64, hi: i64, shards: usize) -> Vec<ShardRange> {
        let shards = shards.max(1) as i64;
        let span = (hi - lo + 1).max(0);
        let per = (span + shards - 1) / shards; // ceil
        (0..shards)
            .map(|s| ShardRange {
                lo: lo + s * per,
                hi: (lo + (s + 1) * per - 1).min(hi),
                shard: s as usize,
            })
            .filter(|r| r.lo <= r.hi)
            .collect()
    }

    /// Marks `table` as replicated on every shard: a read-mostly catalog the
    /// operator loads identically on all nodes (TPC-C's `item`). The router
    /// serves its statements from a shard the transaction already touches —
    /// never dragging an extra participant into two-phase commit — and from
    /// the home shard outside transactions.
    pub fn replicate_table(mut self, table: &str) -> Self {
        self.replicated.insert(table.to_string());
        self
    }

    /// Whether `table` is replicated on every shard.
    pub fn is_replicated(&self, table: &str) -> bool {
        self.replicated.contains(table)
    }

    /// The sharding of `table`, if it is partitioned.
    pub fn table_sharding(&self, table: &str) -> Option<&TableSharding> {
        self.tables.get(table)
    }

    /// The shard owning `key` in `table`. Unmapped tables — and keys
    /// outside every range — belong to the home shard.
    pub fn shard_for_key(&self, table: &str, key: i64) -> usize {
        let Some(sharding) = self.tables.get(table) else {
            return HOME_SHARD;
        };
        sharding
            .ranges
            .iter()
            .find(|r| r.lo <= key && key <= r.hi)
            .map(|r| r.shard)
            .unwrap_or(HOME_SHARD)
    }

    /// The shard a statement belongs to: the owner of the single shard-key
    /// value the statement pins (INSERT: the key column's value;
    /// SELECT/UPDATE/DELETE/aggregate/join: an equality on the key column in
    /// the predicate). `None` when the statement does not pin its table's
    /// shard key — the router sends those to the home shard.
    pub fn shard_for_statement(&self, stmt: &Statement) -> Option<usize> {
        let (table, key) = match stmt {
            Statement::Insert(i) => {
                let sharding = self.tables.get(&i.table)?;
                (&i.table, as_key(i.values.get(sharding.column_index)?)?)
            }
            Statement::Select(s) => {
                let sharding = self.tables.get(&s.from)?;
                (&s.from, as_key(s.predicate.equality_on(&sharding.column)?)?)
            }
            Statement::Aggregate(a) => {
                let sharding = self.tables.get(&a.from)?;
                (&a.from, as_key(a.predicate.equality_on(&sharding.column)?)?)
            }
            Statement::Join(j) => {
                // Route by the left table's shard key; co-sharded joins
                // (both sides partitioned on the same key, the TPC-C shape)
                // land on the right node.
                let sharding = self.tables.get(&j.left)?;
                (&j.left, as_key(j.predicate.equality_on(&sharding.column)?)?)
            }
            Statement::Update(u) => {
                let sharding = self.tables.get(&u.table)?;
                (
                    &u.table,
                    as_key(u.predicate.equality_on(&sharding.column)?)?,
                )
            }
            Statement::Delete(d) => {
                let sharding = self.tables.get(&d.table)?;
                (
                    &d.table,
                    as_key(d.predicate.equality_on(&sharding.column)?)?,
                )
            }
        };
        Some(self.shard_for_key(table, key))
    }
}

/// The table a statement reads or writes (a join's left table).
pub fn statement_table(stmt: &Statement) -> &str {
    match stmt {
        Statement::Insert(i) => &i.table,
        Statement::Select(s) => &s.from,
        Statement::Aggregate(a) => &a.from,
        Statement::Join(j) => &j.left,
        Statement::Update(u) => &u.table,
        Statement::Delete(d) => &d.table,
    }
}

/// A shard key is an integer-valued datum.
fn as_key(d: &Datum) -> Option<i64> {
    match d {
        Datum::Int(i) => Some(*i),
        Datum::Timestamp(t) => Some(*t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb::{Insert, Predicate, Select};

    fn map() -> ShardMap {
        ShardMap::new(2).shard_table("warehouse", "w_id", 0, ShardMap::contiguous_ranges(1, 4, 2))
    }

    #[test]
    fn contiguous_ranges_cover_the_space() {
        let ranges = ShardMap::contiguous_ranges(1, 4, 2);
        assert_eq!(
            ranges,
            vec![
                ShardRange {
                    lo: 1,
                    hi: 2,
                    shard: 0
                },
                ShardRange {
                    lo: 3,
                    hi: 4,
                    shard: 1
                },
            ]
        );
        // Uneven split still covers every key exactly once.
        let ranges = ShardMap::contiguous_ranges(1, 5, 4);
        let m = ShardMap::new(4).shard_table("t", "k", 0, ranges);
        let owners: Vec<usize> = (1..=5).map(|k| m.shard_for_key("t", k)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn statements_route_by_shard_key() {
        let m = map();
        let ins = Statement::Insert(Insert::new(
            "warehouse",
            vec![Datum::Int(3), Datum::Text("w3".into())],
        ));
        assert_eq!(m.shard_for_statement(&ins), Some(1));
        let mut sel_inner = Select::star("warehouse");
        sel_inner.predicate = Predicate::Eq("w_id".into(), Datum::Int(2));
        let sel = Statement::Select(sel_inner);
        assert_eq!(m.shard_for_statement(&sel), Some(0));
        // No equality on the shard key: unroutable (home shard).
        let scan = Statement::Select(Select::star("warehouse"));
        assert_eq!(m.shard_for_statement(&scan), None);
        // Unmapped table: unroutable.
        let mut other_inner = Select::star("item");
        other_inner.predicate = Predicate::Eq("i_id".into(), Datum::Int(7));
        let other = Statement::Select(other_inner);
        assert_eq!(m.shard_for_statement(&other), None);
    }

    #[test]
    fn replicated_tables_are_marked_not_ranged() {
        let m = map().replicate_table("item");
        assert!(m.is_replicated("item"));
        assert!(!m.is_replicated("warehouse"));
        // Replicated tables still have no single owner: the router decides
        // at run time which already-open branch serves them.
        let mut sel = Select::star("item");
        sel.predicate = Predicate::Eq("i_id".into(), Datum::Int(7));
        assert_eq!(m.shard_for_statement(&Statement::Select(sel)), None);
        assert_eq!(
            statement_table(&Statement::Select(Select::star("item"))),
            "item"
        );
    }
}
