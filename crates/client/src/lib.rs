//! `ifdb-client`: the TCP client for the IFDB network query service.
//!
//! A [`Connection`] is the remote counterpart of an in-process
//! [`ifdb::Session`]: it speaks the [`protocol`] to an `ifdb-server`,
//! mirrors the process label locally (so the platform's output gate can
//! check releases without a network round trip, as PHP-IF does), and
//! implements [`ifdb::SessionApi`] — application code written against
//! `&mut dyn SessionApi` runs unchanged over the wire.
//!
//! Statements are automatically prepared: the first execution of a statement
//! *shape* sends a `Prepare` carrying the value-free template and caches the
//! returned statement id per connection; every further execution of that
//! shape sends only the id and the parameters. Across connections the server
//! deduplicates templates in its server-wide prepared-statement cache.

#![deny(missing_docs)]

pub mod protocol;
pub mod router;
pub mod shard;

pub use router::{RoutedConnection, RouterConfig, RouterStats};

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use ifdb::{
    Aggregate, Delete, IfdbError, IfdbResult, Insert, Join, ResultSet, Row, Select, SessionApi,
    Statement, StatementResult, Update,
};
use ifdb_difc::{DifcError, Label, PrincipalId, TagId};
use ifdb_storage::Datum;

use std::io::Write;

use protocol::{
    decode_error, encode_template, frame_into, read_frame_id, write_frame_id, Request, Response,
    WireRow, PROTOCOL_VERSION,
};

/// Client configuration for one connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:5433"`.
    pub addr: String,
    /// The user to authenticate as; empty for anonymous.
    pub user: String,
    /// The user's password.
    pub password: String,
    /// Platform secret for trusted (web/app server) connections; enables
    /// password-less [`Connection::login_as`].
    pub platform_secret: Option<String>,
    /// Initial process label.
    pub label: Vec<TagId>,
    /// Preferred result batch size (rows per fetch); 0 lets the server pick.
    pub fetch_batch: u32,
    /// Socket read timeout (guards against a hung server); `None` blocks
    /// forever.
    pub read_timeout: Option<Duration>,
}

impl ClientConfig {
    /// An anonymous connection to `addr` with default batching.
    pub fn anonymous(addr: &str) -> Self {
        ClientConfig {
            addr: addr.to_string(),
            user: String::new(),
            password: String::new(),
            platform_secret: None,
            label: Vec::new(),
            fetch_batch: 0,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Sets the user and password.
    pub fn with_user(mut self, user: &str, password: &str) -> Self {
        self.user = user.to_string();
        self.password = password.to_string();
        self
    }

    /// Sets the initial label.
    pub fn with_label(mut self, tags: &[TagId]) -> Self {
        self.label = tags.to_vec();
        self
    }

    /// Sets the platform secret (trusted connections).
    pub fn with_platform_secret(mut self, secret: &str) -> Self {
        self.platform_secret = Some(secret.to_string());
        self
    }

    /// Sets the fetch batch size.
    pub fn with_fetch_batch(mut self, rows: u32) -> Self {
        self.fetch_batch = rows;
        self
    }
}

/// Client-side counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Round trips performed.
    pub round_trips: u64,
    /// Statements executed.
    pub statements: u64,
    /// Prepare messages sent (distinct statement shapes seen first-hand).
    pub prepares: u64,
    /// Result batches fetched beyond the inline first batch.
    pub extra_fetches: u64,
    /// Statements sent through [`Connection::pipeline`] batches.
    pub pipelined: u64,
}

/// A connection to an `ifdb-server`, acting for one principal with one
/// process label. Implements [`SessionApi`].
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    principal: PrincipalId,
    label: Label,
    in_txn: bool,
    fetch_batch: u32,
    prepared: HashMap<Vec<u8>, u32>,
    stats: ClientStats,
    last_write_seq: u64,
    next_req_id: u32,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("principal", &self.principal)
            .field("label", &self.label)
            .field("in_txn", &self.in_txn)
            .field("prepared", &self.prepared.len())
            .finish()
    }
}

fn io_err(detail: String) -> IfdbError {
    IfdbError::Remote {
        code: protocol::code::PROTOCOL as u16,
        detail,
    }
}

impl Connection {
    /// Connects and performs the handshake: authenticate as `config.user`,
    /// raise the initial label, and mirror the granted label locally.
    pub fn connect(config: &ClientConfig) -> IfdbResult<Connection> {
        let stream = TcpStream::connect(&config.addr)
            .map_err(|e| io_err(format!("connect {}: {e}", config.addr)))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err(format!("nodelay: {e}")))?;
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(|e| io_err(format!("timeout: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| io_err(format!("clone: {e}")))?,
        );
        let writer = BufWriter::new(stream);
        let mut conn = Connection {
            reader,
            writer,
            principal: PrincipalId(0),
            label: Label::empty(),
            in_txn: false,
            fetch_batch: config.fetch_batch,
            prepared: HashMap::new(),
            stats: ClientStats::default(),
            last_write_seq: 0,
            next_req_id: 1,
        };
        let resp = conn.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            user: config.user.clone(),
            password: config.password.clone(),
            platform_secret: config.platform_secret.clone(),
            label: config.label.iter().map(|t| t.0).collect(),
        })?;
        match resp {
            Response::HelloOk { principal, label } => {
                conn.principal = PrincipalId(principal);
                conn.label = Label::from_array(&label);
                Ok(conn)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Client-side counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The server watermark piggybacked on this connection's most recent
    /// write or commit acknowledgement (0 before any write). A replica whose
    /// applied-seq has reached this value has applied everything this
    /// connection has written — the read-your-writes barrier.
    pub fn last_write_seq(&self) -> u64 {
        self.last_write_seq
    }

    /// Asks the server for its current watermark: on a primary, the last
    /// write-ahead-log sequence number; on a replica, the applied-seq of its
    /// replication stream.
    pub fn watermark(&mut self) -> IfdbResult<u64> {
        self.watermark_full().map(|(seq, _)| seq)
    }

    /// Like [`Connection::watermark`], but also returns the log epoch the
    /// watermark belongs to. Sequence numbers are only comparable within
    /// one epoch — a topology-aware client uses the epoch to notice a
    /// primary restart (after which an old read-your-writes barrier is
    /// meaningless) instead of waiting out its staleness bound.
    pub fn watermark_full(&mut self) -> IfdbResult<(u64, u64)> {
        match self.call(&Request::Watermark)? {
            Response::Watermark { seq, epoch } => Ok((seq, epoch)),
            other => Err(unexpected(other)),
        }
    }

    /// Re-authenticates this connection as `user` with a password,
    /// aborting any open transaction and resetting the label. Used when a
    /// pooled connection is handed to a new request.
    pub fn login(&mut self, user: &str, password: &str) -> IfdbResult<()> {
        self.login_inner(user, Some(password))
    }

    /// Trusted user switch without a password (session-cookie path).
    /// Requires the connection to have presented the platform secret at
    /// handshake time; the server refuses it otherwise.
    pub fn login_as(&mut self, user: &str) -> IfdbResult<()> {
        self.login_inner(user, None)
    }

    fn login_inner(&mut self, user: &str, password: Option<&str>) -> IfdbResult<()> {
        let resp = self.call(&Request::Login {
            user: user.to_string(),
            password: password.map(str::to_string),
        })?;
        match resp {
            Response::HelloOk { principal, label } => {
                self.principal = PrincipalId(principal);
                self.label = Label::from_array(&label);
                self.in_txn = false;
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// Cleanly shuts the connection down.
    pub fn close(mut self) -> IfdbResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn next_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1).max(1);
        id
    }

    /// Reads the response for `expect_id` (responses arrive in request
    /// order), keeping wire errors as [`Response::Error`] but mirroring any
    /// piggybacked session label immediately — failed statements can still
    /// have contaminated the process, and a pipelined batch must apply the
    /// contamination before decoding later responses.
    fn recv_raw(&mut self, expect_id: u32) -> IfdbResult<Response> {
        let (id, payload) = read_frame_id(&mut self.reader)?
            .ok_or_else(|| io_err("server closed the connection".into()))?;
        // id 0 is a connection-level frame the server sends unprompted — an
        // accept refusal or a shutdown notice. It decodes to an error below
        // and stands in for whatever response was expected.
        if id != 0 && id != expect_id {
            return Err(io_err(format!(
                "response id {id} does not match request {expect_id}"
            )));
        }
        let resp = Response::decode(&payload)?;
        if let Response::Error {
            session_label: Some(tags),
            ..
        } = &resp
        {
            self.label = Label::from_array(tags);
        }
        Ok(resp)
    }

    /// Turns a wire [`Response::Error`] into the matching [`IfdbError`].
    fn reify(resp: Response) -> IfdbResult<Response> {
        match resp {
            Response::Error {
                code,
                detail,
                label0,
                label1,
                aux,
                ..
            } => Err(decode_error(code, detail, label0, label1, aux)),
            resp => Ok(resp),
        }
    }

    /// One round trip: send a request frame, read the matching response. A
    /// wire [`Response::Error`] is decoded into the matching [`IfdbError`].
    fn call(&mut self, req: &Request) -> IfdbResult<Response> {
        self.stats.round_trips += 1;
        let id = self.next_id();
        write_frame_id(&mut self.writer, id, &req.encode())?;
        Self::reify(self.recv_raw(id)?)
    }

    fn flush_batch(&mut self, buf: &[u8]) -> IfdbResult<()> {
        self.stats.round_trips += 1;
        self.writer
            .write_all(buf)
            .map_err(|e| io_err(format!("write: {e}")))?;
        self.writer
            .flush()
            .map_err(|e| io_err(format!("flush: {e}")))?;
        Ok(())
    }

    /// Executes a batch of statements **pipelined**: every request goes out
    /// in (at most) two flushes — one for unseen statement shapes to
    /// prepare, one carrying all the executes — and the responses are read
    /// back-to-back, so the batch costs ~one round trip instead of one per
    /// statement.
    ///
    /// The server executes the batch strictly in order on this connection's
    /// session, exactly as if the statements had been sent one at a time:
    /// each response piggybacks the process label *after* its statement, so
    /// a label-raising statement is observed by the responses of every later
    /// statement in the same batch (§7.2 ordering contract).
    ///
    /// Returns one result per statement; a statement error (constraint
    /// violation, DIFC denial, timeout) fails its own slot without aborting
    /// the rest of the batch. Transport-level failures fail the whole call.
    pub fn pipeline(
        &mut self,
        stmts: &[Statement],
    ) -> IfdbResult<Vec<IfdbResult<StatementResult>>> {
        if stmts.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.statements += stmts.len() as u64;
        self.stats.pipelined += stmts.len() as u64;

        // Encode every statement shape; collect unseen templates once each.
        let mut encoded = Vec::with_capacity(stmts.len());
        let mut to_prepare: Vec<Vec<u8>> = Vec::new();
        for stmt in stmts {
            let (template, params) = encode_template(stmt);
            if !self.prepared.contains_key(&template) && !to_prepare.contains(&template) {
                to_prepare.push(template.clone());
            }
            encoded.push((template, params));
        }

        // Phase 1: prepare every unseen shape in one flush. A prepare
        // failure (e.g. statement-cache quota) fails the whole batch, but
        // the remaining responses are still drained to keep the stream in
        // sync.
        if !to_prepare.is_empty() {
            let mut buf = Vec::new();
            let mut ids = Vec::with_capacity(to_prepare.len());
            for template in &to_prepare {
                self.stats.prepares += 1;
                let id = self.next_id();
                frame_into(
                    &mut buf,
                    id,
                    &Request::Prepare {
                        template: template.clone(),
                    }
                    .encode(),
                )?;
                ids.push(id);
            }
            self.flush_batch(&buf)?;
            let mut first_err = None;
            for (template, req_id) in to_prepare.into_iter().zip(ids) {
                match Self::reify(self.recv_raw(req_id)?) {
                    Ok(Response::Prepared { id }) => {
                        self.prepared.insert(template, id);
                    }
                    Ok(other) => {
                        first_err.get_or_insert(unexpected(other));
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }

        // Phase 2: every execute in one flush, then read the responses in
        // request order.
        let mut buf = Vec::new();
        let mut ids = Vec::with_capacity(encoded.len());
        for (template, params) in &encoded {
            let stmt_id = *self.prepared.get(template).expect("prepared above");
            let id = self.next_id();
            frame_into(
                &mut buf,
                id,
                &Request::Execute {
                    stmt: stmt_id,
                    params: params.clone(),
                    fetch: self.fetch_batch,
                }
                .encode(),
            )?;
            ids.push(id);
        }
        self.flush_batch(&buf)?;

        let mut results: Vec<IfdbResult<StatementResult>> = Vec::with_capacity(ids.len());
        // Cursors opened by batch statements are drained *after* the batch
        // responses (Fetch requests would otherwise interleave with the
        // batch's own response stream).
        struct PendingCursor {
            idx: usize,
            columns: std::sync::Arc<Vec<String>>,
            rows: Vec<Row>,
            cursor: u32,
        }
        let mut pending: Vec<PendingCursor> = Vec::new();
        for (idx, req_id) in ids.into_iter().enumerate() {
            match Self::reify(self.recv_raw(req_id)?) {
                Ok(Response::Affected { n, label, seq }) => {
                    self.label = Label::from_array(&label);
                    self.last_write_seq = self.last_write_seq.max(seq);
                    results.push(Ok(StatementResult::Affected(n as usize)));
                }
                Ok(Response::Rows {
                    columns,
                    rows,
                    cursor,
                    label,
                }) => {
                    self.label = Label::from_array(&label);
                    let columns = std::sync::Arc::new(columns);
                    let out: Vec<Row> = rows.into_iter().map(|r| wire_row(&columns, r)).collect();
                    if cursor != 0 {
                        pending.push(PendingCursor {
                            idx,
                            columns,
                            rows: out,
                            cursor,
                        });
                        results.push(Ok(StatementResult::Rows(ResultSet::new(Vec::new()))));
                    } else {
                        results.push(Ok(StatementResult::Rows(ResultSet::new(out))));
                    }
                }
                Ok(other) => results.push(Err(unexpected(other))),
                Err(e) => results.push(Err(e)),
            }
        }
        for p in pending {
            let (idx, columns, mut out, mut cursor) = (p.idx, p.columns, p.rows, p.cursor);
            while cursor != 0 {
                self.stats.extra_fetches += 1;
                let resp = self.call(&Request::Fetch {
                    cursor,
                    max: self.fetch_batch,
                })?;
                let Response::Batch { rows, done } = resp else {
                    return Err(unexpected(resp));
                };
                out.extend(rows.into_iter().map(|r| wire_row(&columns, r)));
                if done {
                    cursor = 0;
                }
            }
            results[idx] = Ok(StatementResult::Rows(ResultSet::new(out)));
        }
        Ok(results)
    }

    /// Executes a closed statement: auto-prepares its shape on first sight,
    /// then sends the statement id plus extracted parameters, draining any
    /// result cursor into a complete [`ResultSet`].
    pub fn run(&mut self, stmt: &Statement) -> IfdbResult<StatementResult> {
        self.stats.statements += 1;
        let (template, params) = encode_template(stmt);
        let id = match self.prepared.get(&template) {
            Some(id) => *id,
            None => {
                self.stats.prepares += 1;
                let resp = self.call(&Request::Prepare {
                    template: template.clone(),
                })?;
                let Response::Prepared { id } = resp else {
                    return Err(unexpected(resp));
                };
                self.prepared.insert(template, id);
                id
            }
        };
        let resp = self.call(&Request::Execute {
            stmt: id,
            params,
            fetch: self.fetch_batch,
        })?;
        match resp {
            Response::Affected { n, label, seq } => {
                self.label = Label::from_array(&label);
                self.last_write_seq = self.last_write_seq.max(seq);
                Ok(StatementResult::Affected(n as usize))
            }
            Response::Rows {
                columns,
                rows,
                cursor,
                label,
            } => {
                self.label = Label::from_array(&label);
                let columns = std::sync::Arc::new(columns);
                let mut out: Vec<Row> = rows.into_iter().map(|r| wire_row(&columns, r)).collect();
                let mut cursor = cursor;
                while cursor != 0 {
                    self.stats.extra_fetches += 1;
                    let resp = self.call(&Request::Fetch {
                        cursor,
                        max: self.fetch_batch,
                    })?;
                    let Response::Batch { rows, done } = resp else {
                        return Err(unexpected(resp));
                    };
                    out.extend(rows.into_iter().map(|r| wire_row(&columns, r)));
                    if done {
                        cursor = 0;
                    }
                }
                Ok(StatementResult::Rows(ResultSet::new(out)))
            }
            other => Err(unexpected(other)),
        }
    }

    fn label_op(&mut self, req: Request) -> IfdbResult<()> {
        let resp = self.call(&req)?;
        match resp {
            Response::LabelIs { tags } => {
                self.label = Label::from_array(&tags);
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    fn simple(&mut self, req: Request) -> IfdbResult<()> {
        match self.call(&req)? {
            Response::Ok { label, seq } => {
                // Commit can run deferred triggers that contaminate the
                // process; every Ok carries the authoritative label so the
                // local mirror (and therefore the output gate) follows.
                self.label = Label::from_array(&label);
                self.last_write_seq = self.last_write_seq.max(seq);
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    // ------------------------------------------------- two-phase commit

    /// Sends `req` (one flush) and returns its request id without reading
    /// the response. The 2PC coordinator uses this to put a phase's frame
    /// on every shard's socket before reading any shard's answer, so one
    /// phase runs concurrently across all participants.
    pub(crate) fn send_request(&mut self, req: &Request) -> IfdbResult<u32> {
        self.stats.round_trips += 1;
        let id = self.next_id();
        write_frame_id(&mut self.writer, id, &req.encode())?;
        Ok(id)
    }

    /// Reads the response for a [`Connection::send_request`] id, expecting
    /// a bare `Ok` acknowledgement; mirrors the piggybacked label and
    /// watermark like [`Connection::simple`].
    pub(crate) fn recv_ok(&mut self, req_id: u32) -> IfdbResult<()> {
        match Self::reify(self.recv_raw(req_id)?)? {
            Response::Ok { label, seq } => {
                self.label = Label::from_array(&label);
                self.last_write_seq = self.last_write_seq.max(seq);
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// The write half of [`Connection::txn_prepare`]: puts the prepare on
    /// the socket and returns its request id for a later
    /// [`Connection::recv_ok`]. The coordinator sends every participant's
    /// prepare before reading any vote.
    pub(crate) fn send_txn_prepare(&mut self, gid: u64) -> IfdbResult<u32> {
        let id = self.send_request(&Request::TxnPrepare { gid })?;
        self.in_txn = false;
        Ok(id)
    }

    /// Phase one of two-phase commit: asks the server to *prepare* this
    /// connection's open transaction under global id `gid` — run deferred
    /// triggers, enforce the commit-label rule, and make the write set
    /// durable without deciding its fate. On success the server votes yes
    /// and the transaction can only be finished by [`Connection::txn_decide`];
    /// on error the server has aborted it (a no vote). Either way the
    /// transaction leaves this session.
    pub fn txn_prepare(&mut self, gid: u64) -> IfdbResult<()> {
        let id = self.send_txn_prepare(gid)?;
        self.recv_ok(id)
    }

    /// Phase two of two-phase commit: delivers the coordinator's decision
    /// for `gid`. Idempotent — deciding an unknown gid (already decided,
    /// or never prepared here) succeeds without effect, so a recovering
    /// coordinator can blindly re-send decisions.
    pub fn txn_decide(&mut self, gid: u64, commit: bool) -> IfdbResult<()> {
        let id = self.send_request(&Request::TxnDecide { gid, commit })?;
        self.recv_ok(id)
    }

    /// The global transaction ids this server holds *in doubt*: prepared
    /// before a crash and not yet decided. A recovering coordinator
    /// resolves each one via [`Connection::txn_outcome`] across all shards
    /// and re-sends the decision.
    pub fn txn_recover(&mut self) -> IfdbResult<Vec<u64>> {
        match self.call(&Request::TxnRecover)? {
            Response::InDoubt { gids } => Ok(gids),
            other => Err(unexpected(other)),
        }
    }

    /// What this server knows about `gid`: `Some(true)` committed,
    /// `Some(false)` aborted, `None` never decided here (still in doubt,
    /// or forgotten after a checkpoint). A gid is safe to presume aborted
    /// only when *no* participant reports it committed.
    pub fn txn_outcome(&mut self, gid: u64) -> IfdbResult<Option<bool>> {
        match self.call(&Request::TxnOutcome { gid })? {
            Response::TxnOutcome { committed } => Ok(committed),
            other => Err(unexpected(other)),
        }
    }

    /// The node's high-availability status: role (primary / replica /
    /// fenced), promotion generation, log epoch, and watermark. Used by
    /// failover probes to find the promoted successor after a primary
    /// fault; needs no authentication.
    pub fn ha_status(&mut self) -> IfdbResult<HaNodeStatus> {
        match self.call(&Request::HaStatus)? {
            Response::HaStatus {
                role,
                generation,
                epoch,
                seq,
            } => Ok(HaNodeStatus {
                role,
                generation,
                epoch,
                seq,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Promotes the replica this connection talks to into a primary,
    /// authenticating with the replication secret. Blocks until the switch
    /// completes (or fails); returns the node's post-promotion status.
    /// Idempotent on a node that is already a primary.
    pub fn promote(&mut self, secret: &str) -> IfdbResult<HaNodeStatus> {
        match self.call(&Request::Promote {
            secret: secret.to_string(),
        })? {
            Response::HaStatus {
                role,
                generation,
                epoch,
                seq,
            } => Ok(HaNodeStatus {
                role,
                generation,
                epoch,
                seq,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Fences the node this connection talks to: tells it a successor with
    /// promotion generation `generation` exists. Takes effect only for a
    /// generation strictly above the node's own. Returns the node's status
    /// after the notice.
    pub fn fence(&mut self, secret: &str, generation: u64) -> IfdbResult<HaNodeStatus> {
        match self.call(&Request::Fence {
            secret: secret.to_string(),
            generation,
        })? {
            Response::HaStatus {
                role,
                generation,
                epoch,
                seq,
            } => Ok(HaNodeStatus {
                role,
                generation,
                epoch,
                seq,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Hot-reloads the server's QoS policy (per-statement execution budgets,
    /// per-principal admission quotas, scheduling weights), authenticated by
    /// the platform secret. No restart, no dropped connections: statements
    /// already executing finish under the limits they were admitted with,
    /// every later statement on every connection runs under `config`.
    pub fn reconfigure(&mut self, secret: &str, config: &ifdb::QosConfig) -> IfdbResult<()> {
        match self.call(&Request::Reconfigure {
            secret: secret.to_string(),
            config: config.to_wire(),
        })? {
            Response::Ok { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's unified metrics tree: engine, server, QoS and
    /// audit counters in one [`protocol::MetricsSnapshot`].
    pub fn server_stats(&mut self) -> IfdbResult<protocol::MetricsSnapshot> {
        match self.call(&Request::Stats)? {
            Response::Stats { snapshot } => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }
}

/// A node's high-availability status, as reported by
/// [`Connection::ha_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaNodeStatus {
    /// The node's role: primary, replica, or fenced ex-primary.
    pub role: protocol::HaRole,
    /// The promotion generation of the node's log (1 on a never-failed-over
    /// timeline; each promotion increments it).
    pub generation: u64,
    /// The log epoch its watermark belongs to.
    pub epoch: u64,
    /// Its current watermark (last WAL seq on a primary, applied-seq on a
    /// replica).
    pub seq: u64,
}

/// Whether an error is the server's `FENCED` refusal: the node is a deposed
/// primary and a successor holds a higher promotion generation. A routing
/// client treats this as the signal to fail writes over.
pub fn is_fenced_error(e: &IfdbError) -> bool {
    matches!(e, IfdbError::Remote { code, .. } if *code == protocol::code::FENCED as u16)
}

/// Whether an error leaves a committed-or-not question *indeterminate*: the
/// write may or may not be durable (and may or may not survive a failover).
/// True for `REPLICATION_LAG` (locally durable, replication unconfirmed)
/// and for transport-level failures (the request — or its acknowledgement —
/// may have been lost in flight). A determinate server-side refusal (label
/// violation, conflict, read-only, fenced, ...) returns false: the write
/// certainly did not happen.
pub fn is_indeterminate_commit_error(e: &IfdbError) -> bool {
    matches!(
        e,
        IfdbError::Remote { code, .. }
            if *code == protocol::code::REPLICATION_LAG as u16
                || *code == protocol::code::PROTOCOL as u16
    )
}

fn unexpected(resp: Response) -> IfdbError {
    io_err(format!("unexpected response {resp:?}"))
}

fn wire_row(columns: &std::sync::Arc<Vec<String>>, r: WireRow) -> Row {
    Row {
        columns: columns.clone(),
        label: Label::from_array(&r.label),
        values: r.values,
    }
}

impl SessionApi for Connection {
    fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        self.run(&Statement::Select(q.clone()))
            .map(StatementResult::into_rows)
    }
    fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        self.run(&Statement::Join(join.clone()))
            .map(StatementResult::into_rows)
    }
    fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        self.run(&Statement::Aggregate(agg.clone()))
            .map(StatementResult::into_rows)
    }
    fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        self.run(&Statement::Insert(ins.clone())).map(|_| ())
    }
    fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        self.run(&Statement::Update(upd.clone()))
            .map(|r| r.affected())
    }
    fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        self.run(&Statement::Delete(del.clone()))
            .map(|r| r.affected())
    }
    fn begin(&mut self) -> IfdbResult<()> {
        self.simple(Request::Begin)?;
        self.in_txn = true;
        Ok(())
    }
    fn commit(&mut self) -> IfdbResult<()> {
        // Whatever the outcome, the transaction is finished server-side
        // (commit errors abort it), matching Session semantics.
        let r = self.simple(Request::Commit);
        self.in_txn = false;
        r
    }
    fn abort(&mut self) -> IfdbResult<()> {
        let r = self.simple(Request::Abort);
        self.in_txn = false;
        r
    }
    fn in_transaction(&self) -> bool {
        self.in_txn
    }
    fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()> {
        self.label_op(Request::AddSecrecy { tag: tag.0 })
    }
    fn raise_label(&mut self, other: &Label) -> IfdbResult<()> {
        self.label_op(Request::RaiseLabel {
            tags: other.to_array(),
        })
    }
    fn declassify(&mut self, tag: TagId) -> IfdbResult<()> {
        self.label_op(Request::Declassify { tag: tag.0 })
    }
    fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()> {
        self.label_op(Request::DeclassifyAll {
            tags: tags.to_array(),
        })
    }
    fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        self.simple(Request::Delegate {
            grantee: grantee.0,
            tag: tag.0,
        })
    }
    fn call_procedure(&mut self, name: &str, args: &[Datum]) -> IfdbResult<ResultSet> {
        self.stats.statements += 1;
        let resp = self.call(&Request::CallProcedure {
            name: name.to_string(),
            args: args.to_vec(),
        })?;
        match resp {
            Response::ProcResult {
                label,
                columns,
                rows,
            } => {
                self.label = Label::from_array(&label);
                let columns = std::sync::Arc::new(columns);
                Ok(ResultSet::new(
                    rows.into_iter().map(|r| wire_row(&columns, r)).collect(),
                ))
            }
            other => Err(unexpected(other)),
        }
    }
    fn principal(&self) -> PrincipalId {
        self.principal
    }
    fn current_label(&self) -> Label {
        self.label.clone()
    }
    fn check_release_to_world(&self) -> IfdbResult<()> {
        // The platform runtime's local gate check, against the mirrored
        // label — no round trip, exactly as PHP-IF tracks the process label
        // in the runtime (Section 7.2).
        if self.label.is_empty() {
            Ok(())
        } else {
            Err(IfdbError::Difc(DifcError::ContaminatedOutput {
                label: self.label.clone(),
            }))
        }
    }
    fn execute_batch(&mut self, stmts: &[Statement]) -> Vec<IfdbResult<StatementResult>> {
        // Pipelined: the whole batch in one round trip. A transport failure
        // fails every slot.
        match self.pipeline(stmts) {
            Ok(results) => results,
            Err(e) => stmts.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}
