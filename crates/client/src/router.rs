//! Topology-aware routing: writes to the primary, labeled reads to
//! replicas.
//!
//! A [`RoutedConnection`] bundles one [`Connection`] to the primary and one
//! per read replica, and implements [`SessionApi`] so application code (and
//! the platform's request scripts) runs unchanged over a replicated
//! topology:
//!
//! * **writes, explicit transactions, and stored procedures** always go to
//!   the primary — replicas refuse them anyway (`READ_ONLY`);
//! * **reads outside an explicit transaction** round-robin across the
//!   replicas (falling back to the primary when none are configured or a
//!   replica fails);
//! * **reads inside an explicit transaction** stay on the primary: they
//!   must see the transaction's own writes under its snapshot;
//! * **label operations** are mirrored to every connection, so a replica
//!   session always holds the same principal and process label as the
//!   primary session and Query by Label filters replica reads identically.
//!
//! # Read-your-writes and bounded staleness
//!
//! Replication is asynchronous, so a replica read can be stale. With
//! [`RouterConfig::read_your_writes`] enabled, the router remembers the
//! primary watermark piggybacked on each write acknowledgement
//! ([`Connection::last_write_seq`]) and, before a replica read, polls the
//! replica's applied-seq ([`Connection::watermark`]) until it reaches that
//! barrier. The wait is bounded by [`RouterConfig::staleness_timeout`]:
//! past it, the read falls back to the primary, so a stalled replica
//! degrades latency, never correctness.

use std::time::{Duration, Instant};

use ifdb::{
    Aggregate, Delete, IfdbResult, Insert, Join, ResultSet, Select, SessionApi, Statement,
    StatementResult, Update,
};
use ifdb_difc::{Label, PrincipalId, TagId};
use ifdb_storage::Datum;

use crate::{ClientConfig, Connection};

/// Configuration of a routed (primary + replicas) client.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connection configuration for the primary.
    pub primary: ClientConfig,
    /// One connection configuration per read replica. The user, password
    /// and initial label should match the primary's so sessions are
    /// label-symmetric.
    pub replicas: Vec<ClientConfig>,
    /// When `true`, replica reads wait until the replica has applied this
    /// client's last write before serving (read-your-writes).
    pub read_your_writes: bool,
    /// Bound on the read-your-writes wait; past it the read falls back to
    /// the primary.
    pub staleness_timeout: Duration,
    /// How long to sleep between watermark polls during a
    /// read-your-writes wait.
    pub poll_interval: Duration,
}

impl RouterConfig {
    /// A router over `primary` with the given replicas, read-your-writes
    /// enabled with a 2-second staleness bound.
    pub fn new(primary: ClientConfig, replicas: Vec<ClientConfig>) -> Self {
        RouterConfig {
            primary,
            replicas,
            read_your_writes: true,
            staleness_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(1),
        }
    }

    /// Enables or disables read-your-writes waiting.
    pub fn with_read_your_writes(mut self, on: bool) -> Self {
        self.read_your_writes = on;
        self
    }
}

/// Counters exposed by a [`RoutedConnection`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Reads served by a replica.
    pub reads_on_replica: u64,
    /// Reads served by the primary (no replicas, in-transaction reads, or
    /// staleness fallbacks).
    pub reads_on_primary: u64,
    /// Read-your-writes waits that had to poll at least once.
    pub ryw_waits: u64,
    /// Replica reads that fell back to the primary because the replica did
    /// not catch up within the staleness bound (or failed).
    pub ryw_fallbacks: u64,
}

/// A topology-aware client connection: one primary, any number of read
/// replicas, one [`SessionApi`] surface.
pub struct RoutedConnection {
    primary: Connection,
    replicas: Vec<Connection>,
    next_replica: usize,
    read_your_writes: bool,
    staleness_timeout: Duration,
    poll_interval: Duration,
    /// The primary's log epoch at connect time. A replica reporting a
    /// different epoch is not comparable to this client's write barrier
    /// (the primary restarted), so read-your-writes falls back to the
    /// primary immediately instead of stalling out the staleness bound.
    primary_epoch: u64,
    stats: RouterStats,
}

impl std::fmt::Debug for RoutedConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedConnection")
            .field("replicas", &self.replicas.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RoutedConnection {
    /// Connects to the primary and every replica.
    pub fn connect(config: &RouterConfig) -> IfdbResult<RoutedConnection> {
        let mut primary = Connection::connect(&config.primary)?;
        let (_, primary_epoch) = primary.watermark_full()?;
        let replicas = config
            .replicas
            .iter()
            .map(Connection::connect)
            .collect::<IfdbResult<Vec<_>>>()?;
        Ok(RoutedConnection {
            primary,
            replicas,
            next_replica: 0,
            read_your_writes: config.read_your_writes,
            staleness_timeout: config.staleness_timeout,
            poll_interval: config.poll_interval,
            primary_epoch,
            stats: RouterStats::default(),
        })
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The primary connection (e.g. to read its label mirror or watermark).
    pub fn primary(&mut self) -> &mut Connection {
        &mut self.primary
    }

    /// Closes every connection.
    pub fn close(mut self) -> IfdbResult<()> {
        for replica in self.replicas.drain(..) {
            let _ = replica.close();
        }
        self.primary.close()
    }

    /// Picks the replica for the next read and waits out the
    /// read-your-writes barrier on it. Returns `None` when the read should
    /// go to the primary instead.
    fn replica_for_read(&mut self) -> Option<usize> {
        if self.replicas.is_empty() || self.primary.in_transaction() {
            return None;
        }
        let idx = self.next_replica % self.replicas.len();
        self.next_replica = self.next_replica.wrapping_add(1);
        if !self.read_your_writes {
            return Some(idx);
        }
        let barrier = self.primary.last_write_seq();
        if barrier == 0 {
            return Some(idx);
        }
        let deadline = Instant::now() + self.staleness_timeout;
        let mut polled = false;
        loop {
            match self.replicas[idx].watermark_full() {
                Ok((_, epoch)) if epoch != self.primary_epoch => {
                    // The replica follows a different log incarnation than
                    // the one this client's barrier came from (primary
                    // restart, or the replica has not synced yet): seq
                    // comparison is meaningless, don't stall on it.
                    self.stats.ryw_fallbacks += 1;
                    return None;
                }
                Ok((seq, _)) if seq >= barrier => {
                    if polled {
                        self.stats.ryw_waits += 1;
                    }
                    return Some(idx);
                }
                Ok(_) => {
                    polled = true;
                    if Instant::now() >= deadline {
                        self.stats.ryw_fallbacks += 1;
                        return None;
                    }
                    std::thread::sleep(self.poll_interval);
                }
                Err(_) => {
                    self.stats.ryw_fallbacks += 1;
                    return None;
                }
            }
        }
    }

    /// Runs a read statement on a replica when possible, otherwise on the
    /// primary. A replica-side failure falls back to the primary so a dying
    /// replica degrades latency, not availability.
    fn routed_read(&mut self, stmt: &Statement) -> IfdbResult<ResultSet> {
        if let Some(idx) = self.replica_for_read() {
            match self.replicas[idx].run(stmt) {
                Ok(r) => {
                    self.stats.reads_on_replica += 1;
                    return Ok(r.into_rows());
                }
                Err(_) => {
                    self.stats.ryw_fallbacks += 1;
                }
            }
        }
        self.stats.reads_on_primary += 1;
        self.primary.run(stmt).map(StatementResult::into_rows)
    }

    /// Executes a batch of statements **pipelined** (one flush, responses
    /// read back-to-back — see [`Connection::pipeline`]), routing the whole
    /// batch to one connection: an all-read batch outside a transaction goes
    /// to a replica behind the usual read-your-writes barrier; any batch
    /// containing a write, or running inside a transaction, goes to the
    /// primary. The batch is never split across connections — per-connection
    /// FIFO execution is what keeps the piggybacked-label sequence coherent.
    pub fn pipeline(
        &mut self,
        stmts: &[Statement],
    ) -> IfdbResult<Vec<IfdbResult<StatementResult>>> {
        let all_reads = stmts.iter().all(|s| {
            matches!(
                s,
                Statement::Select(_) | Statement::Join(_) | Statement::Aggregate(_)
            )
        });
        if all_reads {
            if let Some(idx) = self.replica_for_read() {
                match self.replicas[idx].pipeline(stmts) {
                    Ok(results) => {
                        self.stats.reads_on_replica += stmts.len() as u64;
                        return Ok(results);
                    }
                    Err(_) => {
                        self.stats.ryw_fallbacks += 1;
                    }
                }
            }
            self.stats.reads_on_primary += stmts.len() as u64;
        }
        self.primary.pipeline(stmts)
    }

    /// Applies a label operation to the primary and mirrors it to every
    /// replica, keeping the sessions label-symmetric. The primary's outcome
    /// decides success; a replica that refuses (e.g. it has not learned a
    /// delegation yet) is dropped from the read rotation rather than
    /// serving reads under a weaker label.
    fn mirrored<T>(
        &mut self,
        mut op: impl FnMut(&mut Connection) -> IfdbResult<T>,
    ) -> IfdbResult<T> {
        let out = op(&mut self.primary)?;
        let mut alive = Vec::with_capacity(self.replicas.len());
        for mut replica in self.replicas.drain(..) {
            if op(&mut replica).is_ok() {
                alive.push(replica);
            }
        }
        self.replicas = alive;
        Ok(out)
    }
}

impl SessionApi for RoutedConnection {
    fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Select(q.clone()))
    }
    fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Join(join.clone()))
    }
    fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Aggregate(agg.clone()))
    }
    fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        self.primary.insert(ins)
    }
    fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        self.primary.update(upd)
    }
    fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        self.primary.delete(del)
    }
    fn begin(&mut self) -> IfdbResult<()> {
        self.primary.begin()
    }
    fn commit(&mut self) -> IfdbResult<()> {
        self.primary.commit()
    }
    fn abort(&mut self) -> IfdbResult<()> {
        self.primary.abort()
    }
    fn in_transaction(&self) -> bool {
        self.primary.in_transaction()
    }
    fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()> {
        self.mirrored(|c| c.add_secrecy(tag))
    }
    fn raise_label(&mut self, other: &Label) -> IfdbResult<()> {
        let other = other.clone();
        self.mirrored(move |c| c.raise_label(&other))
    }
    fn declassify(&mut self, tag: TagId) -> IfdbResult<()> {
        self.mirrored(|c| c.declassify(tag))
    }
    fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()> {
        let tags = tags.clone();
        self.mirrored(move |c| c.declassify_all(&tags))
    }
    fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        // Authority mutations go to the primary only: replicas rebuild
        // authority from their bootstrap, and refuse local grants.
        self.primary.delegate(grantee, tag)
    }
    fn call_procedure(&mut self, name: &str, args: &[Datum]) -> IfdbResult<ResultSet> {
        self.primary.call_procedure(name, args)
    }
    fn principal(&self) -> PrincipalId {
        self.primary.principal()
    }
    fn current_label(&self) -> Label {
        self.primary.current_label()
    }
    fn check_release_to_world(&self) -> IfdbResult<()> {
        self.primary.check_release_to_world()
    }
    fn execute_batch(&mut self, stmts: &[Statement]) -> Vec<IfdbResult<StatementResult>> {
        match self.pipeline(stmts) {
            Ok(results) => results,
            Err(e) => stmts.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}
