//! Topology-aware routing: writes to the primary, labeled reads to
//! replicas.
//!
//! A [`RoutedConnection`] bundles one [`Connection`] to the primary and one
//! per read replica, and implements [`SessionApi`] so application code (and
//! the platform's request scripts) runs unchanged over a replicated
//! topology:
//!
//! * **writes, explicit transactions, and stored procedures** always go to
//!   the primary — replicas refuse them anyway (`READ_ONLY`);
//! * **reads outside an explicit transaction** round-robin across the
//!   replicas (falling back to the primary when none are configured or a
//!   replica fails);
//! * **reads inside an explicit transaction** stay on the primary: they
//!   must see the transaction's own writes under its snapshot;
//! * **label operations** are mirrored to every connection, so a replica
//!   session always holds the same principal and process label as the
//!   primary session and Query by Label filters replica reads identically.
//!
//! # Read-your-writes and bounded staleness
//!
//! Replication is asynchronous, so a replica read can be stale. With
//! [`RouterConfig::read_your_writes`] enabled, the router remembers the
//! primary watermark piggybacked on each write acknowledgement
//! ([`Connection::last_write_seq`]) and, before a replica read, polls the
//! replica's applied-seq ([`Connection::watermark`]) until it reaches that
//! barrier. The wait is bounded by [`RouterConfig::staleness_timeout`]:
//! past it, the read falls back to the primary, so a stalled replica
//! degrades latency, never correctness.
//!
//! # Sharded primaries and two-phase commit
//!
//! With a [`ShardMap`] configured ([`RouterConfig::sharded`]), the router
//! additionally acts as the **transaction coordinator** over N primary
//! shard nodes (shard 0 is the `primary` connection, the *home shard* for
//! unmapped tables and unroutable statements):
//!
//! * every statement is routed to the shard owning its shard-key value;
//! * `begin` is **lazy** — a per-shard transaction branch is begun on a
//!   shard the first time a statement of the transaction touches it, so a
//!   transaction that stays on one shard never pays for the others;
//! * `commit` of a transaction that touched **one** shard is a plain
//!   `Commit` on that shard — the fast path is wire-identical to the
//!   unsharded client;
//! * `commit` of a **cross-shard** transaction runs two-phase commit: the
//!   coordinator puts a `TxnPrepare` on every participant's socket before
//!   reading any vote (phase one is concurrent across shards, one flush
//!   per shard), then delivers the decision the same way. Each participant
//!   enforces the IFDB commit-label rule at prepare time, so one shard's
//!   refusal (its *no* vote) aborts the transaction on every shard;
//! * the process label is mirrored to every shard connection, and the
//!   output gate checks the **union** of all shard labels — contamination
//!   acquired on any shard gates release, exactly as a single node would;
//! * a coordinator that crashed between phases leaves participants *in
//!   doubt*; a new router over the same topology calls
//!   [`RoutedConnection::resolve_in_doubt`] to finish them (commit iff any
//!   participant already learned the commit, else presumed abort).

use std::time::{Duration, Instant};

use ifdb::{
    Aggregate, Delete, IfdbError, IfdbResult, Insert, Join, ResultSet, Select, SessionApi,
    Statement, StatementResult, Update,
};
use ifdb_difc::{Label, PrincipalId, TagId};
use ifdb_storage::Datum;

use crate::protocol::Request;
use crate::shard::{ShardMap, HOME_SHARD};
use crate::{ClientConfig, Connection};
use std::sync::Arc;

/// Configuration of a routed (primary + replicas) client.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connection configuration for the primary.
    pub primary: ClientConfig,
    /// One connection configuration per read replica. The user, password
    /// and initial label should match the primary's so sessions are
    /// label-symmetric.
    pub replicas: Vec<ClientConfig>,
    /// When `true`, replica reads wait until the replica has applied this
    /// client's last write before serving (read-your-writes).
    pub read_your_writes: bool,
    /// Bound on the read-your-writes wait; past it the read falls back to
    /// the primary.
    pub staleness_timeout: Duration,
    /// How long to sleep between watermark polls during a
    /// read-your-writes wait.
    pub poll_interval: Duration,
    /// How tables are partitioned across primary shard nodes. `None` (or a
    /// single-shard map) is the classic one-primary topology.
    pub shard_map: Option<Arc<ShardMap>>,
    /// Connection configuration for shards `1..` when `shard_map` is set
    /// (`primary` is shard 0, the home shard); must hold exactly
    /// `shard_map.shards() - 1` entries.
    pub shard_nodes: Vec<ClientConfig>,
    /// When `true` (the default), a write that fails because the primary is
    /// fenced or unreachable probes the replicas for a promoted successor
    /// (`HaStatus`) and adopts it as the new primary. Fenced refusals are
    /// retried there (the old primary determinately refused, so the retry
    /// is exactly-once); transport failures are *not* retried — the write
    /// is indeterminate and the error surfaces — but the adoption still
    /// routes every later statement to the successor.
    pub write_failover: bool,
    /// Bound on the write-unavailability window: how long a failed write
    /// keeps probing for a promoted successor before giving up with the
    /// original error.
    pub failover_timeout: Duration,
}

impl RouterConfig {
    /// A router over `primary` with the given replicas, read-your-writes
    /// enabled with a 2-second staleness bound.
    pub fn new(primary: ClientConfig, replicas: Vec<ClientConfig>) -> Self {
        RouterConfig {
            primary,
            replicas,
            read_your_writes: true,
            staleness_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(1),
            shard_map: None,
            shard_nodes: Vec::new(),
            write_failover: true,
            failover_timeout: Duration::from_secs(10),
        }
    }

    /// A router over `map.shards()` primary shard nodes, one [`ClientConfig`]
    /// per shard in shard-id order (`nodes[0]` is the home shard). Each
    /// shard can still have its own replica chain server-side; this router
    /// talks to the primaries.
    ///
    /// # Panics
    /// When `nodes.len() != map.shards()`.
    pub fn sharded(map: Arc<ShardMap>, mut nodes: Vec<ClientConfig>) -> Self {
        assert_eq!(
            nodes.len(),
            map.shards(),
            "one ClientConfig per shard, in shard-id order"
        );
        let primary = nodes.remove(0);
        let mut config = Self::new(primary, Vec::new());
        config.shard_map = Some(map);
        config.shard_nodes = nodes;
        config
    }

    /// Enables or disables read-your-writes waiting.
    pub fn with_read_your_writes(mut self, on: bool) -> Self {
        self.read_your_writes = on;
        self
    }

    /// Starts a [`RouterConfigBuilder`] over `primary`. Unlike the direct
    /// constructors, the builder's [`RouterConfigBuilder::build`] validates
    /// cross-field consistency (shard node counts, read-your-writes without
    /// replicas, zero timeouts) instead of panicking or silently
    /// misrouting.
    pub fn builder(primary: ClientConfig) -> RouterConfigBuilder {
        RouterConfigBuilder {
            config: RouterConfig::new(primary, Vec::new()),
        }
    }
}

/// Builder for [`RouterConfig`] that validates the topology at
/// [`RouterConfigBuilder::build`] time.
#[derive(Debug, Clone)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Adds a read replica.
    pub fn replica(mut self, replica: ClientConfig) -> Self {
        self.config.replicas.push(replica);
        self
    }

    /// Enables or disables read-your-writes waiting.
    pub fn read_your_writes(mut self, on: bool) -> Self {
        self.config.read_your_writes = on;
        self
    }

    /// Bounds the read-your-writes wait.
    pub fn staleness_timeout(mut self, timeout: Duration) -> Self {
        self.config.staleness_timeout = timeout;
        self
    }

    /// Declares the shard topology: `map` plus one [`ClientConfig`] per
    /// shard `1..` (the builder's primary is shard 0, the home shard).
    pub fn shards(mut self, map: Arc<ShardMap>, nodes: Vec<ClientConfig>) -> Self {
        self.config.shard_map = Some(map);
        self.config.shard_nodes = nodes;
        self
    }

    /// Enables or disables write failover to a promoted successor.
    pub fn write_failover(mut self, on: bool) -> Self {
        self.config.write_failover = on;
        self
    }

    /// Applies `f` to the partially built config for fields without a
    /// dedicated setter.
    pub fn tune(mut self, f: impl FnOnce(&mut RouterConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> IfdbResult<RouterConfig> {
        let c = &self.config;
        let invalid = |detail: String| IfdbError::Remote {
            code: crate::protocol::code::PROTOCOL as u16,
            detail,
        };
        if let Some(map) = &c.shard_map {
            let want = map.shards().saturating_sub(1);
            if c.shard_nodes.len() != want {
                return Err(invalid(format!(
                    "shard map declares {} shards but {} non-home shard nodes were configured \
                     (want {want}: the primary is shard 0)",
                    map.shards(),
                    c.shard_nodes.len()
                )));
            }
            if !c.replicas.is_empty() && map.shards() > 1 {
                return Err(invalid(
                    "replica read routing and multi-shard routing cannot be combined: replicas \
                     mirror a single primary's log"
                        .into(),
                ));
            }
        }
        if c.read_your_writes && c.poll_interval.is_zero() {
            return Err(invalid(
                "read_your_writes requires a non-zero poll_interval".into(),
            ));
        }
        if c.staleness_timeout.is_zero() && c.read_your_writes && !c.replicas.is_empty() {
            return Err(invalid(
                "a zero staleness_timeout with read_your_writes sends every replica read \
                 straight back to the primary; disable read_your_writes instead"
                    .into(),
            ));
        }
        Ok(self.config)
    }
}

/// Counters exposed by a [`RoutedConnection`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Reads served by a replica.
    pub reads_on_replica: u64,
    /// Reads served by the primary (no replicas, in-transaction reads, or
    /// staleness fallbacks).
    pub reads_on_primary: u64,
    /// Read-your-writes waits that had to poll at least once.
    pub ryw_waits: u64,
    /// Replica reads that fell back to the primary because the replica did
    /// not catch up within the staleness bound (or failed).
    pub ryw_fallbacks: u64,
    /// Statements routed to a shard other than the home shard.
    pub statements_cross_shard: u64,
    /// Transactions committed on the single-shard fast path (plain
    /// `Commit`, no two-phase overhead).
    pub single_shard_commits: u64,
    /// Cross-shard transactions committed via two-phase commit.
    pub distributed_commits: u64,
    /// Cross-shard transactions aborted because a participant voted no at
    /// prepare time (commit-label violation, conflict, …).
    pub distributed_aborts: u64,
    /// Commit decisions that could not be delivered to a prepared
    /// participant (it is in doubt there until
    /// [`RoutedConnection::resolve_in_doubt`] runs against it).
    pub decides_undelivered: u64,
    /// In-doubt transactions finished by
    /// [`RoutedConnection::resolve_in_doubt`].
    pub in_doubt_resolved: u64,
    /// Write failovers: a fenced or unreachable primary was replaced by a
    /// promoted successor found among the replicas.
    pub failovers: u64,
    /// Primary operations that failed, triggered a failover probe, and
    /// found no promoted successor within the failover timeout.
    pub failover_give_ups: u64,
}

/// A topology-aware client connection: one primary, any number of read
/// replicas, one [`SessionApi`] surface.
pub struct RoutedConnection {
    primary: Connection,
    replicas: Vec<Connection>,
    next_replica: usize,
    read_your_writes: bool,
    staleness_timeout: Duration,
    poll_interval: Duration,
    write_failover: bool,
    failover_timeout: Duration,
    /// The primary's log epoch at connect time. A replica reporting a
    /// different epoch is not comparable to this client's write barrier
    /// (the primary restarted), so read-your-writes falls back to the
    /// primary immediately instead of stalling out the staleness bound.
    primary_epoch: u64,
    /// The shard topology; `None` is the classic one-primary router.
    shard_map: Option<Arc<ShardMap>>,
    /// Connections to shards `1..` (shard 0 is `primary`).
    shard_conns: Vec<Connection>,
    /// An explicit transaction is open at the router level. Begins are
    /// lazy: no shard has begun until a statement touches it.
    router_txn: bool,
    /// Shards with an open transaction branch, in touch order.
    touched: Vec<usize>,
    /// Global-transaction-id generator: a coarse wall-clock seed (so gids
    /// stay unique across coordinator restarts — participants durably
    /// remember decided gids) plus a local counter.
    gid_seed: u64,
    gid_counter: u64,
    stats: RouterStats,
}

impl std::fmt::Debug for RoutedConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedConnection")
            .field("replicas", &self.replicas.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RoutedConnection {
    /// Connects to the primary, every replica, and (when sharded) every
    /// shard node.
    pub fn connect(config: &RouterConfig) -> IfdbResult<RoutedConnection> {
        if let Some(map) = &config.shard_map {
            if config.shard_nodes.len() + 1 != map.shards() {
                return Err(IfdbError::Remote {
                    code: crate::protocol::code::PROTOCOL as u16,
                    detail: format!(
                        "shard map describes {} shards but {} node configs given",
                        map.shards(),
                        config.shard_nodes.len() + 1
                    ),
                });
            }
        }
        let mut primary = Connection::connect(&config.primary)?;
        let (_, primary_epoch) = primary.watermark_full()?;
        let replicas = config
            .replicas
            .iter()
            .map(Connection::connect)
            .collect::<IfdbResult<Vec<_>>>()?;
        let shard_conns = config
            .shard_nodes
            .iter()
            .map(Connection::connect)
            .collect::<IfdbResult<Vec<_>>>()?;
        let gid_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(1)
            << 10;
        Ok(RoutedConnection {
            primary,
            replicas,
            next_replica: 0,
            read_your_writes: config.read_your_writes,
            staleness_timeout: config.staleness_timeout,
            poll_interval: config.poll_interval,
            write_failover: config.write_failover,
            failover_timeout: config.failover_timeout,
            primary_epoch,
            shard_map: config.shard_map.clone(),
            shard_conns,
            router_txn: false,
            touched: Vec::new(),
            gid_seed,
            gid_counter: 0,
            stats: RouterStats::default(),
        })
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The primary connection (e.g. to read its label mirror or watermark).
    pub fn primary(&mut self) -> &mut Connection {
        &mut self.primary
    }

    /// Closes every connection.
    pub fn close(mut self) -> IfdbResult<()> {
        for replica in self.replicas.drain(..) {
            let _ = replica.close();
        }
        for shard in self.shard_conns.drain(..) {
            let _ = shard.close();
        }
        self.primary.close()
    }

    // ---------------------------------------------- sharded coordination

    /// Whether this router coordinates more than one shard.
    fn sharded(&self) -> bool {
        self.shard_map.as_ref().is_some_and(|m| m.shards() > 1)
    }

    /// The connection serving `shard` (0 is the primary/home shard).
    fn shard_conn(&mut self, shard: usize) -> &mut Connection {
        if shard == HOME_SHARD {
            &mut self.primary
        } else {
            &mut self.shard_conns[shard - 1]
        }
    }

    /// The shard owning `stmt`. A statement on a replicated catalog table
    /// stays on a shard the open transaction already touches (it never adds
    /// a commit participant); other unroutable statements go to the home
    /// shard.
    fn route(&self, stmt: &Statement) -> usize {
        let Some(map) = &self.shard_map else {
            return HOME_SHARD;
        };
        if let Some(shard) = map.shard_for_statement(stmt) {
            return shard;
        }
        if self.router_txn && map.is_replicated(crate::shard::statement_table(stmt)) {
            if let Some(&shard) = self.touched.last() {
                return shard;
            }
        }
        HOME_SHARD
    }

    /// Lazily begins this transaction's branch on `shard` the first time a
    /// statement touches it. Outside an explicit transaction this is a
    /// no-op (statements auto-commit on their shard).
    fn ensure_branch(&mut self, shard: usize) -> IfdbResult<()> {
        if !self.router_txn || self.touched.contains(&shard) {
            return Ok(());
        }
        self.shard_conn(shard).begin()?;
        self.touched.push(shard);
        Ok(())
    }

    /// Runs one statement on its owning shard (beginning the branch if
    /// needed), counting cross-shard routing.
    fn run_on_shard(&mut self, stmt: &Statement) -> IfdbResult<StatementResult> {
        let shard = self.route(stmt);
        if shard != HOME_SHARD {
            self.stats.statements_cross_shard += 1;
        }
        self.ensure_branch(shard)?;
        self.shard_conn(shard).run(stmt)
    }

    /// A fresh global transaction id.
    fn next_gid(&mut self) -> u64 {
        self.gid_counter += 1;
        self.gid_seed.wrapping_add(self.gid_counter)
    }

    /// Two-phase commit across the touched shards. Phase one puts a
    /// `TxnPrepare` on every participant's socket before reading any vote,
    /// so the prepares (each participant's fsync included) overlap; phase
    /// two delivers the decision the same way. One flush per shard per
    /// phase.
    fn commit_two_phase(&mut self, participants: &[usize]) -> IfdbResult<()> {
        let gid = self.next_gid();
        let sent: Vec<(usize, IfdbResult<u32>)> = participants
            .iter()
            .map(|&s| (s, self.shard_conn(s).send_txn_prepare(gid)))
            .collect();
        let mut yes: Vec<usize> = Vec::new();
        let mut veto: Option<IfdbError> = None;
        for (shard, send) in sent {
            match send.and_then(|id| self.shard_conn(shard).recv_ok(id)) {
                Ok(()) => yes.push(shard),
                // A prepare error is this shard's no vote; the server has
                // already aborted its branch, so it needs no decide.
                Err(e) => {
                    if veto.is_none() {
                        veto = Some(e);
                    }
                }
            }
        }
        let commit = veto.is_none();
        let sent: Vec<(usize, IfdbResult<u32>)> = yes
            .iter()
            .map(|&s| {
                let req = Request::TxnDecide { gid, commit };
                (s, self.shard_conn(s).send_request(&req))
            })
            .collect();
        for (shard, send) in sent {
            if send
                .and_then(|id| self.shard_conn(shard).recv_ok(id))
                .is_err()
            {
                // The participant is prepared but unreachable: it stays in
                // doubt there and resolves via `resolve_in_doubt` (or the
                // decided-gid memory of its peers). The *decision* stands —
                // other participants may already have applied it.
                self.stats.decides_undelivered += 1;
            }
        }
        match veto {
            Some(e) => {
                self.stats.distributed_aborts += 1;
                Err(e)
            }
            None => {
                self.stats.distributed_commits += 1;
                Ok(())
            }
        }
    }

    /// Finishes transactions left in doubt by a crashed coordinator: asks
    /// every shard for its in-doubt gids, resolves each one — **commit**
    /// iff any participant already learned the commit decision, otherwise
    /// presumed abort (the coordinator never sends a commit decision
    /// before collecting yes votes from *all* participants, so no
    /// participant can have committed) — and re-delivers the decision
    /// everywhere. Returns the `(gid, committed)` pairs resolved.
    pub fn resolve_in_doubt(&mut self) -> IfdbResult<Vec<(u64, bool)>> {
        let shards = self.shard_map.as_ref().map_or(1, |m| m.shards());
        let mut gids: Vec<u64> = Vec::new();
        for s in 0..shards {
            for gid in self.shard_conn(s).txn_recover()? {
                if !gids.contains(&gid) {
                    gids.push(gid);
                }
            }
        }
        let mut resolved = Vec::with_capacity(gids.len());
        for gid in gids {
            let mut committed = false;
            for s in 0..shards {
                if self.shard_conn(s).txn_outcome(gid)? == Some(true) {
                    committed = true;
                    break;
                }
            }
            for s in 0..shards {
                self.shard_conn(s).txn_decide(gid, committed)?;
            }
            self.stats.in_doubt_resolved += 1;
            resolved.push((gid, committed));
        }
        Ok(resolved)
    }

    // ---------------------------------------------------- write failover

    /// Whether a failed primary operation should trigger a failover probe:
    /// the primary refused because it is fenced (a successor exists), it
    /// announced a shutdown (it is going away), or the transport failed
    /// (the primary may be dead). Everything else — label violations,
    /// conflicts, replication lag — is the primary working as intended.
    fn failover_trigger(e: &IfdbError) -> bool {
        Self::determinate_refusal(e)
            || matches!(
                e,
                IfdbError::Remote { code, .. }
                    if *code == crate::protocol::code::PROTOCOL as u16
            )
    }

    /// Whether a failover-triggering error proves the operation had no
    /// effect on the old primary, making it safe to re-run on the
    /// successor: a `FENCED` refusal (deposed primaries refuse before
    /// executing) or a `SHUTTING_DOWN` notice (sent unsolicited at a frame
    /// boundary or instead of accepting — never after running a request).
    fn determinate_refusal(e: &IfdbError) -> bool {
        crate::is_fenced_error(e)
            || matches!(
                e,
                IfdbError::Remote { code, .. }
                    if *code == crate::protocol::code::SHUTTING_DOWN as u16
            )
    }

    /// Probes the replicas for a node that has been promoted to primary and
    /// adopts it: the replica connection *becomes* the primary connection
    /// (its session already mirrors this client's principal and label), the
    /// epoch baseline moves to the successor's log, and the read-your-writes
    /// barrier resets — a watermark taken under the old primary's epoch must
    /// never satisfy a barrier on the new timeline. Bounded by
    /// [`RouterConfig::failover_timeout`].
    fn fail_over_primary(&mut self) -> IfdbResult<()> {
        let deadline = Instant::now() + self.failover_timeout;
        loop {
            for idx in 0..self.replicas.len() {
                let Ok(status) = self.replicas[idx].ha_status() else {
                    continue;
                };
                if status.role != crate::protocol::HaRole::Primary {
                    continue;
                }
                let successor = self.replicas.swap_remove(idx);
                let deposed = std::mem::replace(&mut self.primary, successor);
                drop(deposed);
                // The successor's log is a new timeline: sequence numbers
                // from the old primary are incomparable, so the epoch
                // baseline follows it and the stale barrier is void (the
                // adopted connection has no acknowledged writes yet, so
                // `last_write_seq` is already 0 there).
                self.primary_epoch = status.epoch;
                self.next_replica = 0;
                self.stats.failovers += 1;
                return Ok(());
            }
            if Instant::now() >= deadline {
                self.stats.failover_give_ups += 1;
                return Err(IfdbError::Remote {
                    code: crate::protocol::code::FENCED as u16,
                    detail: "primary unavailable and no promoted successor found".into(),
                });
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Runs `op` against the primary with write failover: when it fails
    /// because the primary is fenced, shutting down, or unreachable, adopt
    /// the promoted successor and — only when the failed attempt provably
    /// had no effect (a fenced/shutting-down refusal is determinate for any
    /// op; a transport failure only for effect-free ops like `begin`) —
    /// run it once more there. A non-retriable failure still performs the
    /// adoption so every later statement routes to the successor, but the
    /// original (indeterminate) error surfaces to the caller.
    fn with_primary_failover<T>(
        &mut self,
        transport_retriable: bool,
        mut op: impl FnMut(&mut Connection) -> IfdbResult<T>,
    ) -> IfdbResult<T> {
        let in_txn = self.router_txn || self.primary.in_transaction();
        match op(&mut self.primary) {
            Ok(v) => Ok(v),
            Err(e) => {
                if !self.write_failover || !Self::failover_trigger(&e) {
                    return Err(e);
                }
                let determinate = Self::determinate_refusal(&e);
                if self.fail_over_primary().is_err() {
                    return Err(e);
                }
                // A transaction that was open on the deposed primary died
                // with it; the caller must restart it from the top. Never
                // re-run one of its statements against the successor.
                if in_txn || (!determinate && !transport_retriable) {
                    return Err(e);
                }
                op(&mut self.primary)
            }
        }
    }

    /// Picks the replica for the next read and waits out the
    /// read-your-writes barrier on it. Returns `None` when the read should
    /// go to the primary instead.
    fn replica_for_read(&mut self) -> Option<usize> {
        if self.replicas.is_empty() || self.primary.in_transaction() {
            return None;
        }
        let idx = self.next_replica % self.replicas.len();
        self.next_replica = self.next_replica.wrapping_add(1);
        if !self.read_your_writes {
            return Some(idx);
        }
        let barrier = self.primary.last_write_seq();
        if barrier == 0 {
            return Some(idx);
        }
        let deadline = Instant::now() + self.staleness_timeout;
        let mut polled = false;
        loop {
            match self.replicas[idx].watermark_full() {
                Ok((_, epoch)) if epoch != self.primary_epoch => {
                    // The replica follows a different log incarnation than
                    // the one this client's barrier came from (primary
                    // restart, or the replica has not synced yet): seq
                    // comparison is meaningless, don't stall on it.
                    self.stats.ryw_fallbacks += 1;
                    return None;
                }
                Ok((seq, _)) if seq >= barrier => {
                    if polled {
                        self.stats.ryw_waits += 1;
                    }
                    return Some(idx);
                }
                Ok(_) => {
                    polled = true;
                    if Instant::now() >= deadline {
                        self.stats.ryw_fallbacks += 1;
                        return None;
                    }
                    std::thread::sleep(self.poll_interval);
                }
                Err(_) => {
                    self.stats.ryw_fallbacks += 1;
                    return None;
                }
            }
        }
    }

    /// Runs a read statement on a replica when possible, otherwise on the
    /// primary. A replica-side failure falls back to the primary so a dying
    /// replica degrades latency, not availability.
    fn routed_read(&mut self, stmt: &Statement) -> IfdbResult<ResultSet> {
        if self.sharded() {
            let shard = self.route(stmt);
            // Reads owned by another shard — or any read inside an open
            // transaction — go to the owning shard node; only home-shard
            // reads outside a transaction use the replica rotation below.
            if shard != HOME_SHARD || self.router_txn {
                return self.run_on_shard(stmt).map(StatementResult::into_rows);
            }
        }
        if let Some(idx) = self.replica_for_read() {
            match self.replicas[idx].run(stmt) {
                Ok(r) => {
                    self.stats.reads_on_replica += 1;
                    return Ok(r.into_rows());
                }
                Err(_) => {
                    self.stats.ryw_fallbacks += 1;
                }
            }
        }
        self.stats.reads_on_primary += 1;
        // Reads are effect-free, so a transport failure may retry on the
        // promoted successor too.
        self.with_primary_failover(true, |c| c.run(stmt))
            .map(StatementResult::into_rows)
    }

    /// Executes a batch of statements **pipelined** (one flush, responses
    /// read back-to-back — see [`Connection::pipeline`]), routing the whole
    /// batch to one connection: an all-read batch outside a transaction goes
    /// to a replica behind the usual read-your-writes barrier; any batch
    /// containing a write, or running inside a transaction, goes to the
    /// primary. The batch is never split across connections — per-connection
    /// FIFO execution is what keeps the piggybacked-label sequence coherent.
    pub fn pipeline(
        &mut self,
        stmts: &[Statement],
    ) -> IfdbResult<Vec<IfdbResult<StatementResult>>> {
        if self.sharded() {
            return self.pipeline_sharded(stmts);
        }
        let all_reads = stmts.iter().all(|s| {
            matches!(
                s,
                Statement::Select(_) | Statement::Join(_) | Statement::Aggregate(_)
            )
        });
        if all_reads {
            if let Some(idx) = self.replica_for_read() {
                match self.replicas[idx].pipeline(stmts) {
                    Ok(results) => {
                        self.stats.reads_on_replica += stmts.len() as u64;
                        return Ok(results);
                    }
                    Err(_) => {
                        self.stats.ryw_fallbacks += 1;
                    }
                }
            }
            self.stats.reads_on_primary += stmts.len() as u64;
        }
        self.primary.pipeline(stmts)
    }

    /// Sharded pipeline: the batch is partitioned by owning shard and each
    /// partition runs pipelined on its shard (statement order within a
    /// shard — which is what the per-connection label contract covers — is
    /// preserved; statements on different shards touch disjoint data by
    /// construction of the routing). A single-shard batch is forwarded
    /// whole, clone-free.
    fn pipeline_sharded(
        &mut self,
        stmts: &[Statement],
    ) -> IfdbResult<Vec<IfdbResult<StatementResult>>> {
        if stmts.is_empty() {
            return Ok(Vec::new());
        }
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, stmt) in stmts.iter().enumerate() {
            let shard = self.route(stmt);
            if shard != HOME_SHARD {
                self.stats.statements_cross_shard += 1;
            }
            match groups.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((shard, vec![i])),
            }
        }
        if groups.len() == 1 {
            let shard = groups[0].0;
            self.ensure_branch(shard)?;
            return self.shard_conn(shard).pipeline(stmts);
        }
        let mut out: Vec<Option<IfdbResult<StatementResult>>> =
            stmts.iter().map(|_| None).collect();
        for (shard, idxs) in groups {
            self.ensure_branch(shard)?;
            let part: Vec<Statement> = idxs.iter().map(|&i| stmts[i].clone()).collect();
            let results = self.shard_conn(shard).pipeline(&part)?;
            for (i, r) in idxs.into_iter().zip(results) {
                out[i] = Some(r);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every statement assigned to exactly one shard"))
            .collect())
    }

    /// Applies a label operation to the primary and mirrors it to every
    /// shard node and every replica, keeping the sessions label-symmetric.
    /// The primary's outcome decides success. A **shard** that refuses is
    /// an error — writes may route there, and they must run under the same
    /// label. A replica that refuses (e.g. it has not learned a delegation
    /// yet) is dropped from the read rotation rather than serving reads
    /// under a weaker label.
    fn mirrored<T>(
        &mut self,
        mut op: impl FnMut(&mut Connection) -> IfdbResult<T>,
    ) -> IfdbResult<T> {
        let out = op(&mut self.primary)?;
        for shard in &mut self.shard_conns {
            op(shard)?;
        }
        let mut alive = Vec::with_capacity(self.replicas.len());
        for mut replica in self.replicas.drain(..) {
            if op(&mut replica).is_ok() {
                alive.push(replica);
            }
        }
        self.replicas = alive;
        Ok(out)
    }

    /// The coordinator's output-gate label: the union of every shard
    /// session's process label. Contamination acquired on any shard (a
    /// trigger on a remote shard raised its session label during this
    /// client's statement) gates release exactly as it would on one node.
    fn merged_label(&self) -> Label {
        let mut label = self.primary.current_label();
        for shard in &self.shard_conns {
            label = label.union(&shard.current_label());
        }
        label
    }
}

impl SessionApi for RoutedConnection {
    fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Select(q.clone()))
    }
    fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Join(join.clone()))
    }
    fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        self.routed_read(&Statement::Aggregate(agg.clone()))
    }
    fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        if self.sharded() {
            return self
                .run_on_shard(&Statement::Insert(ins.clone()))
                .map(|_| ());
        }
        self.with_primary_failover(false, |c| c.insert(ins))
    }
    fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        if self.sharded() {
            return self
                .run_on_shard(&Statement::Update(upd.clone()))
                .map(|r| r.affected());
        }
        self.with_primary_failover(false, |c| c.update(upd))
    }
    fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        if self.sharded() {
            return self
                .run_on_shard(&Statement::Delete(del.clone()))
                .map(|r| r.affected());
        }
        self.with_primary_failover(false, |c| c.delete(del))
    }
    fn begin(&mut self) -> IfdbResult<()> {
        if self.sharded() {
            if self.router_txn {
                return Err(IfdbError::Remote {
                    code: crate::protocol::code::PROTOCOL as u16,
                    detail: "transaction already open".into(),
                });
            }
            // Lazy: branches begin on each shard at first touch, so a
            // single-shard transaction pays exactly the unsharded wire cost.
            self.router_txn = true;
            return Ok(());
        }
        // Begin is effect-free: safe to retry on the successor even after
        // a transport failure.
        self.with_primary_failover(true, |c| c.begin())
    }
    fn commit(&mut self) -> IfdbResult<()> {
        if self.sharded() && self.router_txn {
            self.router_txn = false;
            let participants = std::mem::take(&mut self.touched);
            return match participants.len() {
                // Nothing touched: the empty transaction commits trivially.
                0 => Ok(()),
                // Fast path: one shard saw the transaction, a plain Commit
                // finishes it — wire-identical to the unsharded client.
                1 => {
                    self.stats.single_shard_commits += 1;
                    self.shard_conn(participants[0]).commit()
                }
                _ => self.commit_two_phase(&participants),
            };
        }
        // Commit is never retried across a failover — the transaction's
        // branch died with the deposed primary — but the adoption still
        // happens, so the caller's *next* transaction lands on the
        // successor immediately.
        self.with_primary_failover(false, |c| c.commit())
    }
    fn abort(&mut self) -> IfdbResult<()> {
        if self.sharded() && self.router_txn {
            self.router_txn = false;
            let participants = std::mem::take(&mut self.touched);
            let mut first_err = None;
            for shard in participants {
                if let Err(e) = self.shard_conn(shard).abort() {
                    first_err.get_or_insert(e);
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        self.primary.abort()
    }
    fn in_transaction(&self) -> bool {
        self.router_txn || self.primary.in_transaction()
    }
    fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()> {
        self.mirrored(|c| c.add_secrecy(tag))
    }
    fn raise_label(&mut self, other: &Label) -> IfdbResult<()> {
        let other = other.clone();
        self.mirrored(move |c| c.raise_label(&other))
    }
    fn declassify(&mut self, tag: TagId) -> IfdbResult<()> {
        self.mirrored(|c| c.declassify(tag))
    }
    fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()> {
        let tags = tags.clone();
        self.mirrored(move |c| c.declassify_all(&tags))
    }
    fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        // Authority mutations go to the primary only: replicas rebuild
        // authority from their bootstrap, and refuse local grants.
        self.primary.delegate(grantee, tag)
    }
    fn call_procedure(&mut self, name: &str, args: &[Datum]) -> IfdbResult<ResultSet> {
        // Procedures can write, so a transport failure stays indeterminate
        // (no retry); a fenced refusal fails over and retries.
        self.with_primary_failover(false, |c| c.call_procedure(name, args))
    }
    fn principal(&self) -> PrincipalId {
        self.primary.principal()
    }
    fn current_label(&self) -> Label {
        self.merged_label()
    }
    fn check_release_to_world(&self) -> IfdbResult<()> {
        // The output gate over the merged label: a release is clean only
        // if *no* shard session is contaminated.
        let label = self.merged_label();
        if label.is_empty() {
            Ok(())
        } else {
            Err(ifdb::IfdbError::Difc(
                ifdb_difc::DifcError::ContaminatedOutput { label },
            ))
        }
    }
    fn execute_batch(&mut self, stmts: &[Statement]) -> Vec<IfdbResult<StatementResult>> {
        match self.pipeline(stmts) {
            Ok(results) => results,
            Err(e) => stmts.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}
