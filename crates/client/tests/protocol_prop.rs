//! Property tests for the wire protocol: encode/decode round-trips over all
//! message types, template/parameter round-trips over random statements, and
//! rejection of torn, truncated and bit-flipped frames (mirroring the WAL's
//! checksum tests).

use ifdb::{AggFunc, Aggregate, Delete, Insert, Join, Order, Predicate, Select, Statement, Update};
use ifdb_client::protocol::{
    decode_template, encode_template, frame_into, read_frame, read_frame_id, try_take_frame,
    write_frame, write_frame_id, HaRole, Request, Response, WireRow,
};
use ifdb_difc::{Label, TagId};
use ifdb_storage::Datum;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Random generators (driven by a seed strategy; the vendored proptest has
// no combinator-rich Arbitrary, so structure is generated with StdRng).
// ---------------------------------------------------------------------

fn gen_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn gen_datum(rng: &mut StdRng) -> Datum {
    match rng.gen_range(0..7) {
        0 => Datum::Null,
        1 => Datum::Int(rng.gen()),
        2 => Datum::Float(f64::from_bits(rng.gen::<u64>() | 1)), // avoid NaN-vs-NaN eq issues? keep finite-ish
        3 => Datum::Text(gen_string(rng)),
        4 => Datum::Bool(rng.gen()),
        5 => Datum::Timestamp(rng.gen()),
        _ => Datum::IntArray((0..rng.gen_range(0..4)).map(|_| rng.gen()).collect()),
    }
}

/// A comparable datum: `Datum: PartialEq` treats NaN == NaN via canonical
/// compare, but keep floats finite to make assert_eq unambiguous.
fn gen_cmp_datum(rng: &mut StdRng) -> Datum {
    match gen_datum(rng) {
        Datum::Float(f) if !f.is_finite() => Datum::Float(0.5),
        d => d,
    }
}

fn gen_label(rng: &mut StdRng) -> Label {
    Label::from_tags((0..rng.gen_range(0..4)).map(|_| TagId(rng.gen_range(1..50))))
}

fn gen_pred(rng: &mut StdRng, depth: u32) -> Predicate {
    let leaf = depth >= 3 || rng.gen_bool(0.6);
    if leaf {
        match rng.gen_range(0..10) {
            0 => Predicate::True,
            1 => Predicate::Eq(gen_string(rng), gen_cmp_datum(rng)),
            2 => Predicate::Ne(gen_string(rng), gen_cmp_datum(rng)),
            3 => Predicate::Lt(gen_string(rng), gen_cmp_datum(rng)),
            4 => Predicate::Le(gen_string(rng), gen_cmp_datum(rng)),
            5 => Predicate::Gt(gen_string(rng), gen_cmp_datum(rng)),
            6 => Predicate::Ge(gen_string(rng), gen_cmp_datum(rng)),
            7 => Predicate::IsNull(gen_string(rng)),
            8 => Predicate::IsNotNull(gen_string(rng)),
            _ => Predicate::LabelContains(TagId(rng.gen_range(1..50))),
        }
    } else {
        match rng.gen_range(0..4) {
            0 => gen_pred(rng, depth + 1).and(gen_pred(rng, depth + 1)),
            1 => gen_pred(rng, depth + 1).or(gen_pred(rng, depth + 1)),
            2 => gen_pred(rng, depth + 1).negate(),
            _ => Predicate::LabelEquals(gen_label(rng)),
        }
    }
}

fn gen_statement(rng: &mut StdRng) -> Statement {
    match rng.gen_range(0..6) {
        0 => {
            let mut q = Select::star(&gen_string(rng)).filter(gen_pred(rng, 0));
            if rng.gen_bool(0.5) {
                q = q.project(&["a", "b"]);
            }
            if rng.gen_bool(0.5) {
                q = q.order(
                    "a",
                    if rng.gen_bool(0.5) {
                        Order::Asc
                    } else {
                        Order::Desc
                    },
                );
            }
            if rng.gen_bool(0.5) {
                q = q.take(rng.gen_range(0..100));
            }
            if rng.gen_bool(0.3) {
                q = q.with_exact_label(gen_label(rng));
            }
            Statement::Select(q)
        }
        1 => {
            let mut j = if rng.gen_bool(0.5) {
                Join::inner(&gen_string(rng), &gen_string(rng), ("x", "y"))
            } else {
                Join::left_outer(&gen_string(rng), &gen_string(rng), ("x", "y"))
            };
            j = j.filter(gen_pred(rng, 0));
            Statement::Join(j)
        }
        2 => Statement::Aggregate(Aggregate {
            from: gen_string(rng),
            predicate: gen_pred(rng, 0),
            group_by: rng.gen_bool(0.5).then(|| gen_string(rng)),
            aggregates: (0..rng.gen_range(0..3))
                .map(|_| {
                    let f = match rng.gen_range(0..5) {
                        0 => AggFunc::Count,
                        1 => AggFunc::Sum,
                        2 => AggFunc::Avg,
                        3 => AggFunc::Min,
                        _ => AggFunc::Max,
                    };
                    (f, gen_string(rng))
                })
                .collect(),
        }),
        3 => Statement::Insert(Insert {
            table: gen_string(rng),
            values: (0..rng.gen_range(0..6))
                .map(|_| gen_cmp_datum(rng))
                .collect(),
            declassifying: (0..rng.gen_range(0..3))
                .map(|_| TagId(rng.gen_range(1..50)))
                .collect(),
        }),
        4 => Statement::Update(Update {
            table: gen_string(rng),
            predicate: gen_pred(rng, 0),
            set: (0..rng.gen_range(0..4))
                .map(|_| (gen_string(rng), gen_cmp_datum(rng)))
                .collect(),
        }),
        _ => Statement::Delete(Delete {
            table: gen_string(rng),
            predicate: gen_pred(rng, 0),
        }),
    }
}

fn gen_wire_rows(rng: &mut StdRng) -> Vec<WireRow> {
    (0..rng.gen_range(0..4))
        .map(|_| WireRow {
            label: (0..rng.gen_range(0..3)).map(|_| rng.gen()).collect(),
            values: (0..rng.gen_range(0..4))
                .map(|_| gen_cmp_datum(rng))
                .collect(),
        })
        .collect()
}

fn gen_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..21) {
        0 => Request::Hello {
            version: rng.gen(),
            user: gen_string(rng),
            password: gen_string(rng),
            platform_secret: rng.gen_bool(0.5).then(|| gen_string(rng)),
            label: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        1 => Request::Login {
            user: gen_string(rng),
            password: rng.gen_bool(0.5).then(|| gen_string(rng)),
        },
        2 => Request::Prepare {
            template: encode_template(&gen_statement(rng)).0,
        },
        3 => Request::Execute {
            stmt: rng.gen(),
            params: (0..rng.gen_range(0..5))
                .map(|_| gen_cmp_datum(rng))
                .collect(),
            fetch: rng.gen(),
        },
        4 => Request::Fetch {
            cursor: rng.gen(),
            max: rng.gen(),
        },
        5 => Request::CloseCursor { cursor: rng.gen() },
        6 => Request::Begin,
        7 => Request::Commit,
        8 => Request::Abort,
        9 => Request::AddSecrecy { tag: rng.gen() },
        10 => Request::RaiseLabel {
            tags: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        11 => Request::Declassify { tag: rng.gen() },
        12 => Request::DeclassifyAll {
            tags: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        13 => Request::Delegate {
            grantee: rng.gen(),
            tag: rng.gen(),
        },
        14 => Request::CallProcedure {
            name: gen_string(rng),
            args: (0..rng.gen_range(0..4))
                .map(|_| gen_cmp_datum(rng))
                .collect(),
        },
        15 => Request::ReplPoll {
            secret: gen_string(rng),
            from_seq: rng.gen(),
            max: rng.gen(),
            applied_seq: rng.gen(),
            generation: rng.gen(),
        },
        16 => Request::Watermark,
        17 => Request::Promote {
            secret: gen_string(rng),
        },
        18 => Request::Fence {
            secret: gen_string(rng),
            generation: rng.gen(),
        },
        19 => Request::HaStatus,
        _ => Request::Goodbye,
    }
}

fn gen_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..12) {
        0 => Response::HelloOk {
            principal: rng.gen(),
            label: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        1 => Response::Ok {
            label: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
            seq: rng.gen(),
        },
        2 => Response::Error {
            code: rng.gen_range(0u64..256) as u8,
            detail: gen_string(rng),
            label0: (0..rng.gen_range(0..3)).map(|_| rng.gen()).collect(),
            label1: (0..rng.gen_range(0..3)).map(|_| rng.gen()).collect(),
            aux: rng.gen(),
            session_label: rng
                .gen_bool(0.5)
                .then(|| (0..rng.gen_range(0..3)).map(|_| rng.gen()).collect()),
        },
        3 => Response::Prepared { id: rng.gen() },
        4 => Response::Rows {
            columns: (0..rng.gen_range(0..4)).map(|_| gen_string(rng)).collect(),
            rows: gen_wire_rows(rng),
            cursor: rng.gen(),
            label: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        5 => Response::Affected {
            n: rng.gen(),
            label: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
            seq: rng.gen(),
        },
        6 => Response::LabelIs {
            tags: (0..rng.gen_range(0..4)).map(|_| rng.gen()).collect(),
        },
        7 => Response::Batch {
            rows: gen_wire_rows(rng),
            done: rng.gen(),
        },
        8 => Response::ProcResult {
            label: (0..rng.gen_range(0..3)).map(|_| rng.gen()).collect(),
            columns: (0..rng.gen_range(0..3)).map(|_| gen_string(rng)).collect(),
            rows: gen_wire_rows(rng),
        },
        9 => Response::ReplBatch {
            epoch: rng.gen(),
            generation: rng.gen(),
            reset: rng.gen(),
            first_seq: rng.gen(),
            end_seq: rng.gen(),
            records: (0..rng.gen_range(0..4))
                .map(|_| {
                    (0..rng.gen_range(0..16))
                        .map(|_| rng.gen_range(0u64..256) as u8)
                        .collect()
                })
                .collect(),
        },
        10 => Response::HaStatus {
            role: match rng.gen_range(0..3) {
                0 => HaRole::Primary,
                1 => HaRole::Replica,
                _ => HaRole::Fenced,
            },
            generation: rng.gen(),
            epoch: rng.gen(),
            seq: rng.gen(),
        },
        _ => Response::Watermark {
            seq: rng.gen(),
            epoch: rng.gen(),
        },
    }
}

/// Parses every complete frame at the head of `buf` (the reactor's
/// incremental assembly loop). `Ok` carries the `(req_id, message)` pairs of
/// the whole frames present; `Err` means the stream is unrecoverably corrupt.
fn parse_all(buf: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, ()> {
    let mut out = Vec::new();
    let mut off = 0;
    loop {
        match try_take_frame(&buf[off..]) {
            Ok(Some((n, id, msg))) => {
                off += n;
                out.push((id, msg));
            }
            Ok(None) => return Ok(out),
            Err(_) => return Err(()),
        }
    }
}

proptest! {
    #[test]
    fn statement_templates_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stmt = gen_statement(&mut rng);
        let (template, params) = encode_template(&stmt);
        let back = decode_template(&template, &params).expect("decode");
        prop_assert_eq!(back, stmt);
    }

    #[test]
    fn requests_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = gen_request(&mut rng);
        let back = Request::decode(&req.encode()).expect("decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resp = gen_response(&mut rng);
        let back = Response::decode(&resp.encode()).expect("decode");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn corrupted_frames_never_decode_by_luck(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = gen_request(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode()).unwrap();

        // Truncation anywhere: either a clean EOF (cut before any byte) or
        // an error — never a successful parse of a partial frame.
        let cut = rng.gen_range(0..framed.len());
        match read_frame(&mut &framed[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame parsed"),
            Err(_) => {}
        }

        // A single bit flip anywhere in the frame must not yield the
        // original message. Flips in the payload or checksum are caught by
        // the checksum; flips in the length field either error or (if they
        // shrink the frame) fail the checksum over the shorter payload.
        let byte = rng.gen_range(0..framed.len());
        let bit = rng.gen_range(0u32..8);
        let mut corrupt = framed.clone();
        corrupt[byte] ^= 1u8 << bit;
        if let Ok(Some(payload)) = read_frame(&mut corrupt.as_slice()) {
            prop_assert!(
                Request::decode(&payload).map(|r| r != req).unwrap_or(true),
                "bit-flipped frame reproduced the original message"
            );
        }
    }

    /// A pipelined flush — several id-carrying frames back to back — round-
    /// trips through both the incremental parser (`try_take_frame`, the
    /// reactor's read path) and the blocking reader (`read_frame_id`), and
    /// any byte-prefix of the stream yields exactly the whole frames it
    /// contains, in order, never a partial one.
    #[test]
    fn pipelined_frames_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..6usize);
        let mut originals = Vec::with_capacity(n);
        let mut buf = Vec::new();
        for _ in 0..n {
            let req = gen_request(&mut rng);
            let id = rng.gen::<u32>();
            frame_into(&mut buf, id, &req.encode()).unwrap();
            originals.push((id, req));
        }

        // frame_into and write_frame_id produce identical bytes.
        let (id0, req0) = &originals[0];
        let mut via_writer = Vec::new();
        write_frame_id(&mut via_writer, *id0, &req0.encode()).unwrap();
        let mut via_into = Vec::new();
        frame_into(&mut via_into, *id0, &req0.encode()).unwrap();
        prop_assert_eq!(via_writer, via_into);

        // Full stream: every frame, every id, every message.
        let full = parse_all(&buf).expect("valid stream");
        prop_assert_eq!(full.len(), n);
        for ((id, req), (got_id, msg)) in originals.iter().zip(&full) {
            prop_assert_eq!(*got_id, *id);
            prop_assert_eq!(&Request::decode(msg).expect("decode"), req);
        }

        // Any prefix: only the complete frames, in order (the incremental
        // assembler must wait for the rest, not guess).
        let cut = rng.gen_range(0..=buf.len());
        let prefix = parse_all(&buf[..cut]).expect("prefix of a valid stream");
        prop_assert!(prefix.len() <= n);
        for ((id, req), (got_id, msg)) in originals.iter().zip(&prefix) {
            prop_assert_eq!(*got_id, *id);
            prop_assert_eq!(&Request::decode(msg).expect("decode"), req);
        }

        // The blocking reader sees the same stream.
        let mut reader = buf.as_slice();
        for (id, req) in &originals {
            let (got_id, msg) = read_frame_id(&mut reader).unwrap().expect("frame");
            prop_assert_eq!(got_id, *id);
            prop_assert_eq!(&Request::decode(&msg).expect("decode"), req);
        }
        prop_assert!(read_frame_id(&mut reader).unwrap().is_none());
    }

    /// Mid-pipeline corruption: truncation yields exactly the preceding
    /// whole frames, and a single bit flip anywhere in a multi-frame stream
    /// never lets the full original pipeline decode intact — the damage is
    /// always surfaced as an error, a short parse, or a changed message.
    #[test]
    fn corrupted_pipelines_never_decode_by_luck(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..5usize);
        let mut originals = Vec::with_capacity(n);
        let mut buf = Vec::new();
        for _ in 0..n {
            let req = gen_request(&mut rng);
            let id = rng.gen::<u32>();
            frame_into(&mut buf, id, &req.encode()).unwrap();
            originals.push((id, req.encode()));
        }

        let byte = rng.gen_range(0..buf.len());
        let bit = rng.gen_range(0u32..8);
        let mut corrupt = buf.clone();
        corrupt[byte] ^= 1u8 << bit;
        if let Ok(frames) = parse_all(&corrupt) {
            let intact = frames.len() == originals.len()
                && originals
                    .iter()
                    .zip(&frames)
                    .all(|((id, msg), (got_id, got_msg))| got_id == id && got_msg == msg);
            prop_assert!(!intact, "bit-flipped pipeline reproduced every frame");
        }
    }
}
