//! Error types for the IFDB engine.

use std::fmt;

use ifdb_difc::{DifcError, Label, TagId};
use ifdb_storage::StorageError;

/// Result alias used throughout the `ifdb` crate.
pub type IfdbResult<T> = Result<T, IfdbError>;

/// Errors raised by the IFDB engine.
#[derive(Debug, Clone, PartialEq)]
pub enum IfdbError {
    /// An error from the DIFC model (missing authority, contaminated
    /// authority update, blocked release, ...).
    Difc(DifcError),
    /// An error from the storage engine (write conflicts, I/O, corruption).
    Storage(StorageError),
    /// The named table does not exist in the catalog.
    UnknownTable(String),
    /// The named view does not exist in the catalog.
    UnknownView(String),
    /// The named column does not exist.
    UnknownColumn(String),
    /// The named stored procedure does not exist.
    UnknownProcedure(String),
    /// Attempt to update or delete a tuple whose label is strictly lower than
    /// the process label (the Write Rule of Section 4.2: such writes must
    /// fail rather than silently relabel data).
    WriteRuleViolation {
        /// Label of the affected tuple.
        tuple_label: Label,
        /// Label of the writing process.
        process_label: Label,
    },
    /// A uniqueness constraint was violated by a tuple visible to the
    /// process. (Conflicts with *higher-labeled* tuples do not raise this
    /// error; they polyinstantiate instead, per Section 5.2.1.)
    UniqueViolation {
        /// Name of the violated constraint.
        constraint: String,
    },
    /// A foreign-key insert referenced a tuple that does not exist.
    ForeignKeyViolation {
        /// Name of the violated constraint.
        constraint: String,
    },
    /// A foreign-key insert or referenced-table delete requires tags to be
    /// declassified explicitly via a `DECLASSIFYING` clause (Section 5.2.2).
    DeclassifyingRequired {
        /// Name of the constraint.
        constraint: String,
        /// The tags in the symmetric difference of the two tuples' labels
        /// that were not covered by the statement's `DECLASSIFYING` clause.
        missing: Label,
    },
    /// The referenced table still has rows referring to the tuple being
    /// deleted.
    RestrictViolation {
        /// Name of the constraint.
        constraint: String,
    },
    /// A transaction attempted to commit while holding a label that is more
    /// contaminated than some tuple in its write set (Section 5.1).
    CommitLabelViolation {
        /// The commit-time process label.
        commit_label: Label,
        /// The offending tuple's label.
        tuple_label: Label,
    },
    /// The transaction clearance rule: a serializable transaction may add a
    /// tag to its label only if it is authoritative for the tag.
    ClearanceViolation {
        /// The tag that could not be added.
        tag: TagId,
    },
    /// A label constraint on a table was violated.
    LabelConstraintViolation {
        /// The table with the constraint.
        table: String,
        /// Explanation of what was expected.
        detail: String,
    },
    /// A write to a table recovered by `Database::open` whose first-boot DDL
    /// has not been re-run yet. Constraint metadata (uniques, foreign keys,
    /// label constraints) is code, not logged data, so writes are refused —
    /// rather than silently running unconstrained — until
    /// `Database::create_table` re-attaches it.
    ConstraintsPending {
        /// The recovered table.
        table: String,
    },
    /// The statement is not valid (e.g. no active transaction to commit,
    /// updating a view that is not updatable, bad aggregate).
    InvalidStatement(String),
    /// An error reported by a remote `ifdb-server` that has no structural
    /// local equivalent (server-side admission control, statement timeouts,
    /// protocol violations, or error kinds whose payload does not round-trip
    /// the wire). The code is the wire protocol's error code.
    Remote {
        /// The wire protocol error code.
        code: u16,
        /// Human-readable description from the server.
        detail: String,
    },
    /// A trigger rejected the operation.
    TriggerRejected {
        /// The trigger's name.
        trigger: String,
        /// The trigger's reason.
        reason: String,
    },
    /// A statement exhausted one of its [`ExecutionConstraints`] budgets
    /// (rows scanned or execution time) and was killed fail-closed: no
    /// partial result is returned. Maps to `BUDGET_EXCEEDED` on the wire.
    ///
    /// [`ExecutionConstraints`]: crate::qos::ExecutionConstraints
    BudgetExceeded {
        /// The exhausted resource (`"rows"` or `"time_ms"`).
        resource: String,
        /// The configured limit.
        limit: u64,
        /// Consumption at the moment of the kill.
        used: u64,
    },
    /// The server refused admission because the principal is over its
    /// per-principal quota (in-flight statements or requests per second).
    /// Maps to `QUOTA_EXCEEDED` on the wire; the client may retry later.
    QuotaExceeded {
        /// What was exceeded.
        detail: String,
    },
    /// Only the administrator may perform schema changes.
    NotAdministrator,
    /// The session (or the whole database handle) is serving reads for a
    /// log-shipping replica: writes, transactions that write, and
    /// authority-state mutations must go to the primary.
    ReadOnlyReplica,
}

impl fmt::Display for IfdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IfdbError::Difc(e) => write!(f, "{e}"),
            IfdbError::Storage(e) => write!(f, "{e}"),
            IfdbError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            IfdbError::UnknownView(n) => write!(f, "unknown view {n:?}"),
            IfdbError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
            IfdbError::UnknownProcedure(n) => write!(f, "unknown procedure {n:?}"),
            IfdbError::WriteRuleViolation {
                tuple_label,
                process_label,
            } => write!(
                f,
                "write rule violation: cannot modify tuple labeled {tuple_label} from a process labeled {process_label}"
            ),
            IfdbError::UniqueViolation { constraint } => {
                write!(f, "unique constraint {constraint} violated")
            }
            IfdbError::ForeignKeyViolation { constraint } => {
                write!(f, "foreign key constraint {constraint} violated")
            }
            IfdbError::DeclassifyingRequired {
                constraint,
                missing,
            } => write!(
                f,
                "foreign key {constraint} requires DECLASSIFYING clause covering {missing}"
            ),
            IfdbError::RestrictViolation { constraint } => {
                write!(f, "cannot delete: rows still reference it via {constraint}")
            }
            IfdbError::CommitLabelViolation {
                commit_label,
                tuple_label,
            } => write!(
                f,
                "commit label {commit_label} exceeds write-set tuple label {tuple_label}"
            ),
            IfdbError::ClearanceViolation { tag } => write!(
                f,
                "transaction clearance rule: cannot add tag {tag} without authority"
            ),
            IfdbError::LabelConstraintViolation { table, detail } => {
                write!(f, "label constraint on {table} violated: {detail}")
            }
            IfdbError::ConstraintsPending { table } => write!(
                f,
                "table {table} was recovered without constraint metadata; re-run its CREATE TABLE definition (Database::create_table) before writing"
            ),
            IfdbError::InvalidStatement(s) => write!(f, "invalid statement: {s}"),
            IfdbError::Remote { code, detail } => {
                write!(f, "remote server error (code {code}): {detail}")
            }
            IfdbError::TriggerRejected { trigger, reason } => {
                write!(f, "trigger {trigger} rejected the operation: {reason}")
            }
            IfdbError::BudgetExceeded {
                resource,
                limit,
                used,
            } => write!(
                f,
                "execution budget exceeded: {resource} used {used} of {limit}"
            ),
            IfdbError::QuotaExceeded { detail } => {
                write!(f, "admission quota exceeded: {detail}")
            }
            IfdbError::NotAdministrator => write!(f, "operation requires the administrator"),
            IfdbError::ReadOnlyReplica => write!(
                f,
                "this session is read-only (log-shipping replica); route writes to the primary"
            ),
        }
    }
}

impl std::error::Error for IfdbError {}

impl From<DifcError> for IfdbError {
    fn from(e: DifcError) -> Self {
        IfdbError::Difc(e)
    }
}

impl From<StorageError> for IfdbError {
    fn from(e: StorageError) -> Self {
        IfdbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_source_errors() {
        let d: IfdbError = DifcError::UnknownTag(TagId(1)).into();
        assert!(matches!(d, IfdbError::Difc(_)));
        let s: IfdbError = StorageError::UnknownTable("x".into()).into();
        assert!(matches!(s, IfdbError::Storage(_)));
    }

    #[test]
    fn display_names_the_rule() {
        let e = IfdbError::CommitLabelViolation {
            commit_label: Label::empty(),
            tuple_label: Label::singleton(TagId(1)),
        };
        assert!(e.to_string().contains("commit label"));
        let w = IfdbError::WriteRuleViolation {
            tuple_label: Label::empty(),
            process_label: Label::singleton(TagId(1)),
        };
        assert!(w.to_string().contains("write rule"));
    }
}
