//! Engine-level tests exercising the paper's scenarios.

use crate::prelude::*;
use ifdb_storage::{DataType, Datum};

/// Builds the HIVPatients example database of Figure 2.
fn medical_db() -> (Database, PrincipalId, PrincipalId, TagId, TagId) {
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let bob = db.create_principal("bob", PrincipalKind::User);
    let alice_medical = db.create_tag(alice, "alice_medical", &[]).unwrap();
    let bob_medical = db.create_tag(bob, "bob_medical", &[]).unwrap();
    db.create_table(
        TableDef::new("HIVPatients")
            .column("patient_name", DataType::Text)
            .column("patient_dob", DataType::Text)
            .primary_key(&["patient_name", "patient_dob"]),
    )
    .unwrap();
    (db, alice, bob, alice_medical, bob_medical)
}

fn insert_patient(db: &Database, who: PrincipalId, tag: TagId, name: &str, dob: &str) {
    let mut s = db.session(who);
    s.add_secrecy(tag).unwrap();
    s.insert(&Insert::new(
        "HIVPatients",
        vec![Datum::from(name), Datum::from(dob)],
    ))
    .unwrap();
}

#[test]
fn label_confinement_rule_filters_queries() {
    let (db, alice, bob, alice_medical, bob_medical) = medical_db();
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");
    insert_patient(&db, bob, bob_medical, "Bob", "6/26/78");

    // A process with {bob_medical} sees only Bob's tuple.
    let mut s = db.session(bob);
    s.add_secrecy(bob_medical).unwrap();
    let rows = s.select(&Select::star("HIVPatients")).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.first().unwrap().get_text("patient_name"), Some("Bob"));

    // An empty-labeled process sees nothing.
    let mut anon = db.anonymous_session();
    assert!(anon
        .select(&Select::star("HIVPatients"))
        .unwrap()
        .is_empty());

    // A process with both tags sees both.
    let mut both = db.session(alice);
    both.add_secrecy(alice_medical).unwrap();
    both.add_secrecy(bob_medical).unwrap();
    assert_eq!(both.select(&Select::star("HIVPatients")).unwrap().len(), 2);
}

#[test]
fn write_rule_blocks_lower_labeled_updates() {
    let (db, alice, _bob, alice_medical, bob_medical) = medical_db();
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");

    // A process with a *larger* label sees Alice's tuple but may not modify
    // it (that would move data to a label that doesn't reflect the process's
    // contamination).
    let mut s = db.session(alice);
    s.add_secrecy(alice_medical).unwrap();
    s.add_secrecy(bob_medical).unwrap();
    let err = s
        .update(&Update::new(
            "HIVPatients",
            Predicate::Eq("patient_name".into(), Datum::from("Alice")),
            vec![("patient_dob", Datum::from("1/1/99"))],
        ))
        .unwrap_err();
    assert!(matches!(err, IfdbError::WriteRuleViolation { .. }));

    // With exactly Alice's label, the update succeeds.
    let mut ok = db.session(alice);
    ok.add_secrecy(alice_medical).unwrap();
    assert_eq!(
        ok.update(&Update::new(
            "HIVPatients",
            Predicate::Eq("patient_name".into(), Datum::from("Alice")),
            vec![("patient_dob", Datum::from("1/1/99"))],
        ))
        .unwrap(),
        1
    );
}

#[test]
fn inserts_carry_exactly_the_process_label() {
    let (db, alice, _bob, alice_medical, _bob_medical) = medical_db();
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");
    let mut s = db.session(alice);
    s.add_secrecy(alice_medical).unwrap();
    let rows = s.select(&Select::star("HIVPatients")).unwrap();
    assert_eq!(rows.first().unwrap().label, Label::singleton(alice_medical));
}

#[test]
fn polyinstantiation_instead_of_leaking_uniqueness_conflicts() {
    let (db, alice, bob, alice_medical, _bob_medical) = medical_db();
    // Insert (Alice, 2/1/60) with {alice_medical}.
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");

    // Insert 2 of Section 5.2.1: same key, conflicting tuple *visible* →
    // uniqueness error (reveals nothing new).
    let mut visible = db.session(alice);
    visible.add_secrecy(alice_medical).unwrap();
    let err = visible
        .insert(&Insert::new(
            "HIVPatients",
            vec![Datum::from("Alice"), Datum::from("2/1/60")],
        ))
        .unwrap_err();
    assert!(matches!(err, IfdbError::UniqueViolation { .. }));

    // Insert 3: an empty-labeled process cannot see the conflict; rejecting
    // it would leak, so the insert succeeds (polyinstantiation).
    let mut lower = db.session(bob);
    lower
        .insert(&Insert::new(
            "HIVPatients",
            vec![Datum::from("Alice"), Datum::from("2/1/60")],
        ))
        .unwrap();

    // A high-labeled reader now sees both tuples, distinguished by label.
    let mut reader = db.session(alice);
    reader.add_secrecy(alice_medical).unwrap();
    let rows = reader.select(&Select::star("HIVPatients")).unwrap();
    let alice_rows: Vec<_> = rows
        .iter()
        .filter(|r| r.get_text("patient_name") == Some("Alice"))
        .collect();
    assert_eq!(alice_rows.len(), 2, "polyinstantiated duplicate is visible");

    // Requesting an exact label hides the erroneous empty-labeled tuple.
    let exact = reader
        .select(&Select::star("HIVPatients").with_exact_label(Label::singleton(alice_medical)))
        .unwrap();
    assert_eq!(exact.len(), 1);
}

#[test]
fn label_constraints_prevent_polyinstantiation_and_mislabeling() {
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let alice_medical = db.create_tag(alice, "alice_medical", &[]).unwrap();
    let required = Label::singleton(alice_medical);
    let required_clone = required.clone();
    db.create_table(
        TableDef::new("HIVPatients")
            .column("patient_name", DataType::Text)
            .column("patient_dob", DataType::Text)
            .primary_key(&["patient_name"])
            .label_exact_from_row("hiv_label_constraint", move |_row| required_clone.clone()),
    )
    .unwrap();

    // Correctly labeled insert succeeds.
    let mut s = db.session(alice);
    s.add_secrecy(alice_medical).unwrap();
    s.insert(&Insert::new(
        "HIVPatients",
        vec![Datum::from("Alice"), Datum::from("2/1/60")],
    ))
    .unwrap();

    // A mislabeled (empty-label) insert is rejected by the constraint, which
    // also prevents the polyinstantiated duplicate.
    let mut wrong = db.anonymous_session();
    let err = wrong
        .insert(&Insert::new(
            "HIVPatients",
            vec![Datum::from("Alice"), Datum::from("2/1/60")],
        ))
        .unwrap_err();
    assert!(matches!(err, IfdbError::LabelConstraintViolation { .. }));
}

#[test]
fn transaction_commit_label_rule_blocks_the_hiv_leak() {
    // The Section 5.1 example: write a public tuple, then raise the label and
    // decide whether to commit based on secret data. The commit must fail.
    let (db, alice, bob, alice_medical, _bob) = medical_db();
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");
    db.create_table(
        TableDef::new("Foo")
            .column("note", DataType::Text)
            .primary_key(&["note"]),
    )
    .unwrap();

    let mut s = db.session(bob);
    s.begin().unwrap();
    s.insert(&Insert::new("Foo", vec![Datum::from("Alice has HIV")]))
        .unwrap();
    s.add_secrecy(alice_medical).unwrap();
    let found = s
        .select(
            &Select::star("HIVPatients")
                .filter(Predicate::Eq("patient_name".into(), Datum::from("Alice"))),
        )
        .unwrap();
    assert_eq!(found.len(), 1, "the secret condition is observable in-txn");
    // The transaction tries to commit while contaminated; the commit label
    // rule rejects it and the public tuple is never exposed.
    let err = s.commit().unwrap_err();
    assert!(matches!(err, IfdbError::CommitLabelViolation { .. }));

    let mut reader = db.anonymous_session();
    assert!(reader.select(&Select::star("Foo")).unwrap().is_empty());
}

#[test]
fn commit_succeeds_after_declassification() {
    let (db, alice, _bob, alice_medical, _bobm) = medical_db();
    db.create_table(
        TableDef::new("Foo")
            .column("note", DataType::Text)
            .primary_key(&["note"]),
    )
    .unwrap();
    let mut s = db.session(alice);
    s.begin().unwrap();
    s.insert(&Insert::new("Foo", vec![Datum::from("public note")]))
        .unwrap();
    s.add_secrecy(alice_medical).unwrap();
    // Alice owns the tag, so she may declassify before committing.
    s.declassify(alice_medical).unwrap();
    s.commit().unwrap();
    let mut reader = db.anonymous_session();
    assert_eq!(reader.select(&Select::star("Foo")).unwrap().len(), 1);
}

#[test]
fn serializable_clearance_rule_requires_authority_to_raise_label() {
    let (db, _alice, bob, alice_medical, bob_medical) = medical_db();
    let mut s = db.session(bob);
    s.set_serializable(true);
    s.begin().unwrap();
    // Bob owns bob_medical, so he may raise to it.
    s.add_secrecy(bob_medical).unwrap();
    // But not to Alice's tag.
    let err = s.add_secrecy(alice_medical).unwrap_err();
    assert!(matches!(err, IfdbError::ClearanceViolation { .. }));
    s.abort().unwrap();
}

#[test]
fn foreign_key_rule_demands_declassifying_clause() {
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let ingest = db.create_principal("ingest", PrincipalKind::Service);
    let alice_cars = db.create_tag(alice, "alice_cars", &[]).unwrap();
    let alice_drives = db.create_tag(alice, "alice_drives", &[]).unwrap();
    db.create_table(
        TableDef::new("Cars")
            .column("carid", DataType::Int)
            .column("owner", DataType::Text)
            .primary_key(&["carid"]),
    )
    .unwrap();
    db.create_table(
        TableDef::new("Drives")
            .column("driveid", DataType::Int)
            .column("carid", DataType::Int)
            .primary_key(&["driveid"])
            .foreign_key("drives_carid_fkey", &["carid"], "Cars", &["carid"]),
    )
    .unwrap();

    // Alice registers her car under {alice_cars}.
    let mut alice_session = db.session(alice);
    alice_session.add_secrecy(alice_cars).unwrap();
    alice_session
        .insert(&Insert::new(
            "Cars",
            vec![Datum::Int(1), Datum::from("alice")],
        ))
        .unwrap();
    // Alice delegates both tags to the ingest service (empty label required).
    let mut alice_clean = db.session(alice);
    alice_clean.delegate(ingest, alice_cars).unwrap();
    alice_clean.delegate(ingest, alice_drives).unwrap();

    // The ingest service inserts a drive labeled {alice_drives} referencing
    // the {alice_cars}-labeled car. The symmetric difference is
    // {alice_drives, alice_cars}, so both must be declassified explicitly.
    let mut svc = db.session(ingest);
    svc.add_secrecy(alice_drives).unwrap();
    let plain = Insert::new("Drives", vec![Datum::Int(10), Datum::Int(1)]);
    let err = svc.insert(&plain).unwrap_err();
    assert!(matches!(err, IfdbError::DeclassifyingRequired { .. }));

    let ok = Insert::new("Drives", vec![Datum::Int(10), Datum::Int(1)])
        .declassifying(&[alice_drives, alice_cars]);
    svc.insert(&ok).unwrap();

    // A referencing insert to a nonexistent car is a plain FK violation.
    let missing = Insert::new("Drives", vec![Datum::Int(11), Datum::Int(99)])
        .declassifying(&[alice_drives, alice_cars]);
    assert!(matches!(
        svc.insert(&missing).unwrap_err(),
        IfdbError::ForeignKeyViolation { .. }
    ));

    // And a principal without authority cannot vouch for the tags even if it
    // names them.
    let mallory = db.create_principal("mallory", PrincipalKind::User);
    let mut m = db.session(mallory);
    m.add_secrecy(alice_drives).unwrap();
    let attempt = Insert::new("Drives", vec![Datum::Int(12), Datum::Int(1)])
        .declassifying(&[alice_drives, alice_cars]);
    assert!(m.insert(&attempt).is_err());
}

#[test]
fn delete_restricted_while_references_exist() {
    let db = Database::in_memory();
    let admin = db.create_principal("admin", PrincipalKind::Administrator);
    db.create_table(
        TableDef::new("Users")
            .column("userid", DataType::Int)
            .primary_key(&["userid"]),
    )
    .unwrap();
    db.create_table(
        TableDef::new("Friends")
            .column("userid", DataType::Int)
            .column("friendid", DataType::Int)
            .primary_key(&["userid", "friendid"])
            .foreign_key("friends_userid_fkey", &["userid"], "Users", &["userid"]),
    )
    .unwrap();
    let mut s = db.session(admin);
    s.insert(&Insert::new("Users", vec![Datum::Int(1)]))
        .unwrap();
    s.insert(&Insert::new("Friends", vec![Datum::Int(1), Datum::Int(2)]))
        .unwrap();
    let err = s
        .delete(&Delete::new(
            "Users",
            Predicate::Eq("userid".into(), Datum::Int(1)),
        ))
        .unwrap_err();
    assert!(matches!(err, IfdbError::RestrictViolation { .. }));
    // After the referencing row goes away, the delete succeeds.
    s.delete(&Delete::new("Friends", Predicate::True)).unwrap();
    assert_eq!(
        s.delete(&Delete::new(
            "Users",
            Predicate::Eq("userid".into(), Datum::Int(1)),
        ))
        .unwrap(),
        1
    );
}

#[test]
fn declassifying_view_exposes_projection_of_sensitive_table() {
    // The PCMembers example of Section 4.3.
    let db = Database::in_memory();
    let chair = db.create_principal("chair", PrincipalKind::Role);
    let all_contacts = db.create_compound_tag(chair, "all_contacts", &[]).unwrap();
    let cathy = db.create_principal("cathy", PrincipalKind::User);
    let cathy_contact = db
        .create_tag(cathy, "cathy_contact", &[all_contacts])
        .unwrap();
    db.create_table(
        TableDef::new("ContactInfo")
            .column("contactId", DataType::Int)
            .column("firstName", DataType::Text)
            .column("lastName", DataType::Text)
            .column("email", DataType::Text)
            .column("isPCMember", DataType::Bool)
            .primary_key(&["contactId"]),
    )
    .unwrap();
    // The chair owns the all_contacts compound, so it can create the
    // declassifying view.
    db.create_declassifying_view(
        chair,
        "PCMembers",
        ViewSource::Select(
            Select::star("ContactInfo")
                .filter(Predicate::Eq("isPCMember".into(), Datum::Bool(true)))
                .project(&["firstName", "lastName"]),
        ),
        Label::singleton(all_contacts),
    )
    .unwrap();

    // Cathy registers; her row is protected by her contact tag.
    let mut cs = db.session(cathy);
    cs.add_secrecy(cathy_contact).unwrap();
    cs.insert(&Insert::new(
        "ContactInfo",
        vec![
            Datum::Int(1),
            Datum::from("Cathy"),
            Datum::from("Jones"),
            Datum::from("cathy@example.org"),
            Datum::Bool(true),
        ],
    ))
    .unwrap();

    // An uncontaminated, unprivileged session cannot read ContactInfo...
    let mut anon = db.anonymous_session();
    assert!(anon
        .select(&Select::star("ContactInfo"))
        .unwrap()
        .is_empty());
    // ...but sees the PC membership through the declassifying view, because
    // cathy_contact is a member of all_contacts, which the view declassifies.
    let pc = anon.select(&Select::star("PCMembers")).unwrap();
    assert_eq!(pc.len(), 1);
    assert_eq!(pc.first().unwrap().get_text("firstName"), Some("Cathy"));
    // The full contact information (email) is not part of the view.
    assert!(pc.first().unwrap().get("email").is_none());
}

#[test]
fn ordinary_views_and_outer_joins_simulate_field_level_labels() {
    // The PaymentContact example of Section 4.4: a standard outer-join view
    // shows NULLs for the fields the process may not see.
    let db = Database::in_memory();
    let user = db.create_principal("dana", PrincipalKind::User);
    let pay_tag = db.create_tag(user, "dana_payment", &[]).unwrap();
    let contact_tag = db.create_tag(user, "dana_contact", &[]).unwrap();
    db.create_table(
        TableDef::new("Payment")
            .column("userid", DataType::Int)
            .column("card", DataType::Text)
            .primary_key(&["userid"]),
    )
    .unwrap();
    db.create_table(
        TableDef::new("Contact")
            .column("userid", DataType::Int)
            .column("email", DataType::Text)
            .primary_key(&["userid"]),
    )
    .unwrap();
    db.create_view(
        "PaymentContact",
        ViewSource::Join(Join::left_outer("Payment", "Contact", ("userid", "userid"))),
    )
    .unwrap();

    let mut s = db.session(user);
    s.add_secrecy(pay_tag).unwrap();
    s.insert(&Insert::new(
        "Payment",
        vec![Datum::Int(1), Datum::from("4111-....")],
    ))
    .unwrap();
    s.declassify(pay_tag).unwrap();
    s.add_secrecy(contact_tag).unwrap();
    s.insert(&Insert::new(
        "Contact",
        vec![Datum::Int(1), Datum::from("dana@example.org")],
    ))
    .unwrap();
    s.declassify(contact_tag).unwrap();

    // A process holding only the payment tag sees the payment fields and
    // NULLs where the contact fields would be.
    let mut pay_only = db.session(user);
    pay_only.add_secrecy(pay_tag).unwrap();
    let rows = pay_only.select(&Select::star("PaymentContact")).unwrap();
    assert_eq!(rows.len(), 1);
    let row = rows.first().unwrap();
    assert_eq!(row.get_text("card"), Some("4111-...."));
    assert!(row.get("email").unwrap().is_null());

    // A process holding both tags sees the joined row in full.
    let mut both = db.session(user);
    both.add_secrecy(pay_tag).unwrap();
    both.add_secrecy(contact_tag).unwrap();
    let rows = both.select(&Select::star("PaymentContact")).unwrap();
    assert_eq!(
        rows.first().unwrap().get_text("email"),
        Some("dana@example.org")
    );
}

#[test]
fn stored_authority_closure_declassifies_without_contaminating_caller() {
    use crate::catalog::StoredProcedure;
    use std::sync::Arc;

    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let stats_principal = db.create_principal("traffic_stats", PrincipalKind::Closure);
    let alice_location = db.create_tag(alice, "alice_location", &[]).unwrap();
    db.create_table(
        TableDef::new("Locations")
            .column("userid", DataType::Int)
            .column("speed", DataType::Float)
            .primary_key(&["userid"]),
    )
    .unwrap();
    let mut setup = db.session(alice);
    setup.delegate(stats_principal, alice_location).unwrap();
    setup.add_secrecy(alice_location).unwrap();
    setup
        .insert(&Insert::new(
            "Locations",
            vec![Datum::Int(1), Datum::Float(61.0)],
        ))
        .unwrap();

    // The stored authority closure raises its label to read everyone's
    // locations, computes the average speed, and declassifies the result.
    db.create_procedure(StoredProcedure {
        name: "avg_speed".into(),
        authority: Some(stats_principal),
        body: Arc::new(move |session, _args| {
            session.add_secrecy(alice_location)?;
            let result = session.select_aggregate(&Aggregate {
                from: "Locations".into(),
                predicate: Predicate::True,
                group_by: None,
                aggregates: vec![(AggFunc::Avg, "speed".into())],
            })?;
            session.declassify(alice_location)?;
            Ok(result)
        }),
    })
    .unwrap();

    // An uncontaminated, unprivileged caller invokes the closure and can
    // release its declassified result to the outside world.
    let mut caller = db.anonymous_session();
    let avg = caller.call_procedure("avg_speed", &[]).unwrap();
    assert_eq!(avg.first().unwrap().get_float("avg_speed"), Some(61.0));
    assert!(caller.label().is_empty());
    assert!(caller.check_release_to_world().is_ok());

    // Calling the same computation *without* the closure's authority leaves
    // the caller contaminated and unable to release what it read.
    let mut direct = db.anonymous_session();
    direct.add_secrecy(alice_location).unwrap();
    direct
        .select_aggregate(&Aggregate {
            from: "Locations".into(),
            predicate: Predicate::True,
            group_by: None,
            aggregates: vec![(AggFunc::Avg, "speed".into())],
        })
        .unwrap();
    assert!(direct.check_release_to_world().is_err());
}

#[test]
fn triggers_run_as_authority_closures_do_not_contaminate_caller() {
    use crate::catalog::{TriggerDef, TriggerEvent, TriggerTiming};
    use std::sync::Arc;

    // The CarTel ingest pattern: inserting a Location fires a trigger that
    // reads Cars (labeled with the owner's car tag) and updates Drives. The
    // trigger is an authority closure for the location tag, so the inserting
    // process is not left contaminated by what the trigger read.
    let db = Database::in_memory();
    let alice = db.create_principal("alice", PrincipalKind::User);
    let closure_principal = db.create_principal("driveupdate", PrincipalKind::Closure);
    let alice_drives = db.create_tag(alice, "alice_drives", &[]).unwrap();
    let alice_location = db.create_tag(alice, "alice_location", &[]).unwrap();
    db.create_table(
        TableDef::new("Locations")
            .column("seq", DataType::Int)
            .column("userid", DataType::Int)
            .primary_key(&["seq"]),
    )
    .unwrap();
    db.create_table(
        TableDef::new("Drives")
            .column("userid", DataType::Int)
            .column("points", DataType::Int)
            .primary_key(&["userid"]),
    )
    .unwrap();
    let mut setup = db.session(alice);
    setup.delegate(closure_principal, alice_location).unwrap();

    db.create_trigger(TriggerDef {
        name: "driveupdate".into(),
        table: "Locations".into(),
        events: vec![TriggerEvent::Insert],
        timing: TriggerTiming::Immediate,
        authority: Some(closure_principal),
        body: Arc::new(move |session, inv| {
            let userid = inv.new.as_ref().unwrap()[1].clone();
            // Maintain the per-user drive summary in the Drives table.
            let existing = session.select(
                &Select::star("Drives").filter(Predicate::Eq("userid".into(), userid.clone())),
            )?;
            if existing.is_empty() {
                session.insert(&Insert::new("Drives", vec![userid, Datum::Int(1)]))?;
            } else {
                let points = existing.first().unwrap().get_int("points").unwrap() + 1;
                session.update(&Update::new(
                    "Drives",
                    Predicate::Eq("userid".into(), userid),
                    vec![("points", Datum::Int(points))],
                ))?;
            }
            Ok(())
        }),
    })
    .unwrap();

    // Alice's ingest process inserts raw locations with the location+drives
    // labels.
    let mut ingest = db.session(alice);
    ingest.add_secrecy(alice_drives).unwrap();
    ingest.add_secrecy(alice_location).unwrap();
    ingest
        .insert(&Insert::new(
            "Locations",
            vec![Datum::Int(1), Datum::Int(7)],
        ))
        .unwrap();
    ingest
        .insert(&Insert::new(
            "Locations",
            vec![Datum::Int(2), Datum::Int(7)],
        ))
        .unwrap();

    // The Drives table was maintained by the trigger.
    let drives = ingest.select(&Select::star("Drives")).unwrap();
    assert_eq!(drives.len(), 1);
    assert_eq!(drives.first().unwrap().get_int("points"), Some(2));
}

#[test]
fn baseline_mode_skips_label_enforcement() {
    let db = Database::new(DatabaseConfig::baseline());
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("T")
            .column("a", DataType::Int)
            .primary_key(&["a"]),
    )
    .unwrap();
    let mut s = db.session(user);
    s.insert(&Insert::new("T", vec![Datum::Int(1)])).unwrap();
    // Any other session sees the row; there are no labels.
    let mut o = db.anonymous_session();
    let rows = o.select(&Select::star("T")).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows.first().unwrap().label.is_empty());
}

#[test]
fn aggregates_and_ordering_work_under_confinement() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    let t1 = db.create_tag(user, "t1", &[]).unwrap();
    db.create_table(
        TableDef::new("Scores")
            .column("player", DataType::Text)
            .column("score", DataType::Int)
            .primary_key(&["player"]),
    )
    .unwrap();
    let mut s = db.session(user);
    s.add_secrecy(t1).unwrap();
    for (p, v) in [("a", 10), ("b", 30), ("c", 20)] {
        s.insert(&Insert::new("Scores", vec![Datum::from(p), Datum::Int(v)]))
            .unwrap();
    }
    let ordered = s
        .select(&Select::star("Scores").order("score", Order::Desc).take(2))
        .unwrap();
    assert_eq!(ordered.len(), 2);
    assert_eq!(ordered.first().unwrap().get_text("player"), Some("b"));

    let agg = s
        .select_aggregate(&Aggregate {
            from: "Scores".into(),
            predicate: Predicate::True,
            group_by: None,
            aggregates: vec![
                (AggFunc::Count, "score".into()),
                (AggFunc::Sum, "score".into()),
                (AggFunc::Max, "score".into()),
            ],
        })
        .unwrap();
    let row = agg.first().unwrap();
    assert_eq!(row.get_int("count"), Some(3));
    assert_eq!(row.get_float("sum_score"), Some(60.0));
    assert_eq!(row.get_float("max_score"), Some(30.0));
    // The aggregate's label reflects the data it covered.
    assert_eq!(row.label, Label::singleton(t1));

    // An uncontaminated session aggregates over nothing.
    let mut anon = db.anonymous_session();
    let empty = anon
        .select_aggregate(&Aggregate {
            from: "Scores".into(),
            predicate: Predicate::True,
            group_by: None,
            aggregates: vec![(AggFunc::Count, "score".into())],
        })
        .unwrap();
    assert_eq!(empty.first().unwrap().get_int("count"), Some(0));
}

#[test]
fn write_conflicts_surface_as_storage_errors() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("Counter")
            .column("id", DataType::Int)
            .column("n", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    let mut setup = db.session(user);
    setup
        .insert(&Insert::new("Counter", vec![Datum::Int(1), Datum::Int(0)]))
        .unwrap();

    let mut s1 = db.session(user);
    let mut s2 = db.session(user);
    s1.begin().unwrap();
    s2.begin().unwrap();
    s1.update(&Update::new(
        "Counter",
        Predicate::Eq("id".into(), Datum::Int(1)),
        vec![("n", Datum::Int(1))],
    ))
    .unwrap();
    let err = s2
        .update(&Update::new(
            "Counter",
            Predicate::Eq("id".into(), Datum::Int(1)),
            vec![("n", Datum::Int(2))],
        ))
        .unwrap_err();
    assert!(matches!(err, IfdbError::Storage(_)));
    s1.commit().unwrap();
    s2.abort().unwrap();
}

#[test]
fn unauthenticated_session_cannot_release_what_it_reads() {
    let (db, alice, _bob, alice_medical, _bm) = medical_db();
    insert_patient(&db, alice, alice_medical, "Alice", "2/1/60");
    let mut anon = db.anonymous_session();
    // The anonymous session raises its label trying to read everything.
    anon.add_secrecy(alice_medical).unwrap();
    let rows = anon.select(&Select::star("HIVPatients")).unwrap();
    assert_eq!(rows.len(), 1, "contaminated process can read");
    // But it can never send the data to the outside world.
    assert!(anon.check_release_to_world().is_err());
    assert!(anon.declassify(alice_medical).is_err());
    assert!(!db.audit().is_empty());
}

#[test]
fn deferred_triggers_run_with_query_label_at_commit() {
    use crate::catalog::{TriggerDef, TriggerEvent, TriggerTiming};
    use parking_lot::Mutex;
    use std::sync::Arc;

    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    let tag = db.create_tag(user, "t", &[]).unwrap();
    db.create_table(
        TableDef::new("Events")
            .column("id", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    let observed: Arc<Mutex<Vec<Label>>> = Arc::new(Mutex::new(Vec::new()));
    let observed_clone = observed.clone();
    db.create_trigger(TriggerDef {
        name: "audit_events".into(),
        table: "Events".into(),
        events: vec![TriggerEvent::Insert],
        timing: TriggerTiming::Deferred,
        authority: None,
        body: Arc::new(move |session, _inv| {
            observed_clone.lock().push(session.label().clone());
            Ok(())
        }),
    })
    .unwrap();

    let mut s = db.session(user);
    s.begin().unwrap();
    s.add_secrecy(tag).unwrap();
    s.insert(&Insert::new("Events", vec![Datum::Int(1)]))
        .unwrap();
    // Declassify before commit so the commit label rule passes; the deferred
    // trigger must still observe the label of the *query*, not the commit
    // label.
    s.declassify(tag).unwrap();
    s.commit().unwrap();
    let labels = observed.lock();
    assert_eq!(labels.len(), 1);
    assert_eq!(labels[0], Label::singleton(tag));
}

/// Builds a 200-row table with five label populations (empty, three single
/// tags, one two-tag label) and mixed data for executor tests.
fn mixed_label_db() -> (Database, PrincipalId, Vec<TagId>) {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    let tags: Vec<TagId> = (0..4)
        .map(|i| db.create_tag(user, &format!("t{i}"), &[]).unwrap())
        .collect();
    db.create_table(
        TableDef::new("D")
            .column("id", DataType::Int)
            .column("grp", DataType::Int)
            .nullable_column("v", DataType::Float)
            .primary_key(&["id"]),
    )
    .unwrap();
    for i in 0..200i64 {
        let mut s = db.session(user);
        match i % 5 {
            0 => {}
            1 => s.add_secrecy(tags[0]).unwrap(),
            2 => s.add_secrecy(tags[1]).unwrap(),
            3 => s.add_secrecy(tags[2]).unwrap(),
            _ => {
                s.add_secrecy(tags[0]).unwrap();
                s.add_secrecy(tags[1]).unwrap();
            }
        }
        let v = if i % 7 == 0 {
            Datum::Null
        } else {
            Datum::Float(i as f64 / 3.0)
        };
        s.insert(&Insert::new(
            "D",
            vec![Datum::Int(i), Datum::Int(i % 10), v],
        ))
        .unwrap();
    }
    (db, user, tags)
}

#[test]
fn streaming_executor_matches_reference_executor() {
    let (db, user, tags) = mixed_label_db();
    // A plain filtered view and a declassifying view over everything, so the
    // differential covers the view pipeline and the declassify-cover memo.
    db.create_view(
        "Mid",
        ViewSource::Select(
            Select::star("D")
                .filter(Predicate::Ge("id".into(), Datum::Int(40)))
                .project(&["id", "grp"]),
        ),
    )
    .unwrap();
    db.create_declassifying_view(
        user,
        "AllD",
        ViewSource::Select(Select::star("D")),
        Label::from_tags(tags.iter().copied()),
    )
    .unwrap();
    let queries = vec![
        Select::star("Mid").filter(Predicate::Eq("id".into(), Datum::Int(50))),
        Select::star("Mid"),
        Select::star("AllD"),
        Select::star("AllD").filter(Predicate::Ge("id".into(), Datum::Int(100))),
        Select::star("D"),
        Select::star("D").filter(Predicate::Eq("id".into(), Datum::Int(42))),
        Select::star("D").filter(
            Predicate::Ge("id".into(), Datum::Int(50))
                .and(Predicate::Lt("id".into(), Datum::Int(120))),
        ),
        Select::star("D").filter(Predicate::Eq("grp".into(), Datum::Int(3))),
        Select::star("D").filter(
            Predicate::IsNull("v".into()).or(Predicate::Gt("v".into(), Datum::Float(40.0))),
        ),
        Select::star("D").filter(Predicate::Eq("grp".into(), Datum::Int(0)).negate()),
        Select::star("D")
            .project(&["id", "v"])
            .order("id", Order::Desc)
            .take(17),
        Select::star("D").with_exact_label(Label::empty()),
        Select::star("D").filter(Predicate::LabelContains(tags[0])),
    ];
    let reader_labels = [
        Label::empty(),
        Label::from_tags([tags[0], tags[1]]),
        Label::from_tags(tags.iter().copied()),
    ];
    for label in &reader_labels {
        for q in &queries {
            let mut fast_session = db.session(user);
            fast_session.raise_label(label).unwrap();
            let fast = fast_session.select(q).unwrap();
            let mut ref_session = db.session(user);
            ref_session.raise_label(label).unwrap();
            let reference = ref_session.select_reference(q).unwrap();
            let key = |r: &Row| format!("{:?}|{}", r.values, r.label);
            let mut a: Vec<String> = fast.iter().map(key).collect();
            let mut b: Vec<String> = reference.iter().map(key).collect();
            // Index-driven scans may emit in key order rather than heap
            // order; only ORDER BY pins the sequence.
            if q.order_by.is_none() {
                a.sort();
                b.sort();
            }
            assert_eq!(a, b, "query {q:?} under label {label}");
        }
    }
}

#[test]
fn secondary_index_equality_avoids_full_scan() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("T")
            .column("id", DataType::Int)
            .column("cat", DataType::Int)
            .primary_key(&["id"])
            .secondary_index("t_cat", &["cat"]),
    )
    .unwrap();
    let mut s = db.session(user);
    for i in 0..500 {
        s.insert(&Insert::new("T", vec![Datum::Int(i), Datum::Int(i % 20)]))
            .unwrap();
    }
    let before = db.engine().stats();
    let r = s
        .select(&Select::star("T").filter(Predicate::Eq("cat".into(), Datum::Int(7))))
        .unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 25);
    assert_eq!(
        after.full_table_scans, before.full_table_scans,
        "equality on an indexed column must not scan the heap"
    );
    assert!(after.index_point_lookups > before.index_point_lookups);
}

#[test]
fn late_secondary_index_is_picked_up_by_planner() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("T")
            .column("id", DataType::Int)
            .column("cat", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    let mut s = db.session(user);
    for i in 0..100 {
        s.insert(&Insert::new("T", vec![Datum::Int(i), Datum::Int(i % 4)]))
            .unwrap();
    }
    // Back-filled after the data exists.
    db.create_secondary_index("T", "t_cat", &["cat"]).unwrap();
    let before = db.engine().stats();
    let r = s
        .select(&Select::star("T").filter(Predicate::Eq("cat".into(), Datum::Int(1))))
        .unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 25);
    assert_eq!(after.full_table_scans, before.full_table_scans);
}

#[test]
fn indexed_range_query_avoids_full_scan() {
    let (db, user, tags) = mixed_label_db();
    // An all-seeing session, so every row in range is returned.
    let mut s = db.session(user);
    s.raise_label(&Label::from_tags(tags.iter().copied()))
        .unwrap();
    let before = db.engine().stats();
    let r = s
        .select(
            &Select::star("D").filter(
                Predicate::Ge("id".into(), Datum::Int(100))
                    .and(Predicate::Lt("id".into(), Datum::Int(120))),
            ),
        )
        .unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 20);
    assert_eq!(
        after.full_table_scans, before.full_table_scans,
        "a bounded primary-key range must use the index"
    );
    assert!(after.index_range_scans > before.index_range_scans);
}

#[test]
fn view_pushdown_reaches_primary_key_index() {
    let (db, user, tags) = mixed_label_db();
    db.create_view(
        "Evens",
        ViewSource::Select(Select::star("D").filter(Predicate::Eq("grp".into(), Datum::Int(2)))),
    )
    .unwrap();
    let mut s = db.session(user);
    s.raise_label(&Label::from_tags(tags.iter().copied()))
        .unwrap();
    let before = db.engine().stats();
    let r = s
        .select(&Select::star("Evens").filter(Predicate::Eq("id".into(), Datum::Int(12))))
        .unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 1);
    assert_eq!(
        after.full_table_scans, before.full_table_scans,
        "a PK equality through a view must become a point lookup"
    );
    assert!(after.index_point_lookups > before.index_point_lookups);
}

#[test]
fn join_key_equality_propagates_to_both_sides() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("Users")
            .column("userid", DataType::Int)
            .column("name", DataType::Text)
            .primary_key(&["userid"]),
    )
    .unwrap();
    db.create_table(
        TableDef::new("Orders")
            .column("orderid", DataType::Int)
            .column("userid", DataType::Int)
            .primary_key(&["orderid"])
            .secondary_index("orders_userid", &["userid"]),
    )
    .unwrap();
    let mut s = db.session(user);
    for u in 0..50 {
        s.insert(&Insert::new(
            "Users",
            vec![Datum::Int(u), Datum::Text(format!("user{u}"))],
        ))
        .unwrap();
        for k in 0..4 {
            s.insert(&Insert::new(
                "Orders",
                vec![Datum::Int(u * 10 + k), Datum::Int(u)],
            ))
            .unwrap();
        }
    }
    let before = db.engine().stats();
    let join = Join::inner("Users", "Orders", ("userid", "userid"))
        .filter(Predicate::Eq("userid".into(), Datum::Int(3)));
    let r = s.select_join(&join).unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 4);
    assert_eq!(
        after.full_table_scans, before.full_table_scans,
        "pinning the join key must turn both sides into index lookups"
    );
    assert!(after.index_point_lookups >= before.index_point_lookups + 2);
}

#[test]
fn limit_without_order_stops_scan_early() {
    let db = Database::in_memory();
    let user = db.create_principal("u", PrincipalKind::User);
    db.create_table(
        TableDef::new("Big")
            .column("id", DataType::Int)
            .primary_key(&["id"]),
    )
    .unwrap();
    let mut s = db.session(user);
    s.begin().unwrap();
    for i in 0..1000 {
        s.insert(&Insert::new("Big", vec![Datum::Int(i)])).unwrap();
    }
    s.commit().unwrap();
    let before = db.engine().stats();
    let r = s.select(&Select::star("Big").take(3)).unwrap();
    let after = db.engine().stats();
    assert_eq!(r.len(), 3);
    assert!(
        after.tuples_scanned - before.tuples_scanned < 100,
        "LIMIT without ORDER BY must stop the scan early (scanned {})",
        after.tuples_scanned - before.tuples_scanned
    );
}

#[test]
fn session_stats_count_statements_and_label_syncs() {
    let (db, alice, _bob, alice_medical, _bm) = medical_db();
    let mut s = db.session(alice);
    s.select(&Select::star("HIVPatients")).unwrap();
    s.add_secrecy(alice_medical).unwrap();
    s.select(&Select::star("HIVPatients")).unwrap();
    s.select(&Select::star("HIVPatients")).unwrap();
    let stats = s.stats();
    assert_eq!(stats.statements, 3);
    assert_eq!(stats.label_syncs, 1, "only the label change forces a sync");
}
