//! IFDB: decentralized information flow control for a relational database.
//!
//! This crate is the Rust reproduction of the core contribution of
//! *IFDB: Decentralized Information Flow Control for Databases*
//! (Schultz & Liskov, EuroSys 2013). It layers the paper's **Query by Label**
//! model on top of the MVCC storage engine in `ifdb-storage`, using the DIFC
//! model objects from `ifdb-difc`:
//!
//! * every tuple carries an immutable label; queries see only tuples whose
//!   labels are subsets of the process label, and writes are labeled exactly
//!   with the process label ([`query`], [`exec`]);
//! * declassifying views and stored authority closures bind authority to
//!   code and view definitions ([`catalog`]);
//! * transactions enforce commit labels and run deferred triggers with the
//!   label of the query that queued them ([`session`]);
//! * uniqueness constraints polyinstantiate instead of leaking, and foreign
//!   keys demand explicit `DECLASSIFYING` clauses ([`exec`]).
//!
//! # Quick start
//!
//! ```
//! use ifdb::prelude::*;
//! use ifdb_storage::{DataType, Datum};
//!
//! // Set up the database, a user and her tag.
//! let db = Database::in_memory();
//! let alice = db.create_principal("alice", PrincipalKind::User);
//! let alice_medical = db.create_tag(alice, "alice_medical", &[]).unwrap();
//! db.create_table(
//!     TableDef::new("PatientRecords")
//!         .column("patient", DataType::Text)
//!         .column("condition", DataType::Text)
//!         .primary_key(&["patient"]),
//! )
//! .unwrap();
//!
//! // A session acting for Alice writes her record under her tag.
//! let mut session = db.session(alice);
//! session.add_secrecy(alice_medical).unwrap();
//! session
//!     .insert(&Insert::new(
//!         "PatientRecords",
//!         vec![Datum::from("Alice"), Datum::from("flu")],
//!     ))
//!     .unwrap();
//!
//! // An uncontaminated session sees nothing; Alice's session sees her row.
//! let mut public = db.anonymous_session();
//! assert!(public.select(&Select::star("PatientRecords")).unwrap().is_empty());
//! assert_eq!(session.select(&Select::star("PatientRecords")).unwrap().len(), 1);
//! ```

pub mod api;
pub mod catalog;
pub mod database;
pub mod error;
pub mod exec;
pub(crate) mod plan;
pub mod qos;
pub mod query;
pub mod row;
pub mod session;

pub use api::{SessionApi, Statement, StatementResult};
pub use catalog::{
    ForeignKey, IndexSpec, LabelConstraint, StoredProcedure, TableDef, TriggerDef, TriggerEvent,
    TriggerInvocation, TriggerTiming, UniqueConstraint, ViewDef, ViewSource,
};
pub use database::{Database, DatabaseBuilder, DatabaseConfig};
pub use error::{IfdbError, IfdbResult};
pub use ifdb_storage::{DataType, Datum, DurabilityConfig, StorageError, StorageKind};
pub use qos::{ExecutionConstraints, PrincipalQuota, QosConfig, StatementBudget};
pub use query::{
    AggFunc, Aggregate, Delete, Insert, Join, JoinKind, Order, Predicate, Select, Update,
};
pub use row::{ResultSet, Row};
pub use session::{Session, SessionStats, WriteRecord};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::api::{SessionApi, Statement, StatementResult};
    pub use crate::catalog::{TableDef, TriggerEvent, TriggerTiming, ViewSource};
    pub use crate::database::{Database, DatabaseBuilder, DatabaseConfig};
    pub use crate::error::{IfdbError, IfdbResult};
    pub use crate::qos::{ExecutionConstraints, PrincipalQuota, QosConfig};
    pub use crate::query::{
        AggFunc, Aggregate, Delete, Insert, Join, JoinKind, Order, Predicate, Select, Update,
    };
    pub use crate::row::{ResultSet, Row};
    pub use crate::session::Session;
    pub use ifdb_difc::principal::PrincipalKind;
    pub use ifdb_difc::{Label, PrincipalId, TagId};
    pub use ifdb_storage::{DataType, Datum, DurabilityConfig};
}

#[cfg(test)]
mod tests;
