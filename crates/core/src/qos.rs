//! Execution budgets and per-principal admission quotas.
//!
//! Multi-tenant protection for the shared database process: a hostile or
//! runaway principal must not be able to monopolize the engine. Two
//! mechanisms compose:
//!
//! * **Execution budgets** ([`ExecutionConstraints`]) bound what one
//!   statement may consume — rows scanned and wall-clock time — enforced
//!   *inside* the streaming executor by a cheap per-row probe
//!   ([`StatementBudget`]). A statement that exhausts a budget is killed
//!   fail-closed with [`IfdbError::BudgetExceeded`]: no partial result, the
//!   implicit transaction aborts, and the kill is recorded in the audit
//!   chain.
//! * **Admission quotas** ([`PrincipalQuota`]) bound how much *concurrent
//!   and sustained* service one principal gets at the server: in-flight
//!   statements, requests per second, and a scheduling weight used by the
//!   reactor's executor pool. These are enforced in `ifdb-server`; the types
//!   live here so the client protocol, the server and the benches share
//!   them.
//!
//! Both are hot-reloadable at the server via the `Reconfigure` wire request;
//! nothing here requires a restart.
//!
//! [`IfdbError::BudgetExceeded`]: crate::error::IfdbError::BudgetExceeded

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::error::{IfdbError, IfdbResult};

/// Per-statement resource limits. `None` means unlimited; the default is
/// fully unlimited, so budgets are strictly opt-in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionConstraints {
    /// Maximum tuple versions a single statement may scan, across every
    /// table and index access it makes (joins and constraint checks count).
    pub max_rows_scanned: Option<u64>,
    /// Maximum wall-clock execution time for a single statement, in
    /// milliseconds. Checked every [`TIME_PROBE_INTERVAL`] scanned rows, so
    /// enforcement granularity is that many rows, not instruction-exact.
    pub max_execution_millis: Option<u64>,
}

/// How many scanned rows pass between wall-clock probes: frequent enough to
/// bound overshoot, rare enough that `Instant::now` stays off the per-row
/// path.
pub const TIME_PROBE_INTERVAL: u64 = 1024;

impl ExecutionConstraints {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the number of rows one statement may scan.
    pub fn with_max_rows(mut self, rows: u64) -> Self {
        self.max_rows_scanned = Some(rows);
        self
    }

    /// Caps one statement's wall-clock execution time in milliseconds.
    pub fn with_max_millis(mut self, millis: u64) -> Self {
        self.max_execution_millis = Some(millis);
        self
    }

    /// `true` when no limit is set — the executor skips arming a budget.
    pub fn is_unlimited(&self) -> bool {
        self.max_rows_scanned.is_none() && self.max_execution_millis.is_none()
    }
}

/// The live budget of the statement currently executing: armed at statement
/// entry from the session's [`ExecutionConstraints`], charged by the
/// executor's scan loop. Counters are atomic so the probe works through the
/// shared references the streaming scan closures hold.
#[derive(Debug)]
pub struct StatementBudget {
    max_rows: u64,
    max_millis: Option<u64>,
    started: Instant,
    rows: AtomicU64,
}

impl StatementBudget {
    /// Arms a fresh budget for one statement; `None` when the constraints
    /// are unlimited (no probe overhead at all).
    pub fn arm(constraints: &ExecutionConstraints) -> Option<Self> {
        if constraints.is_unlimited() {
            return None;
        }
        Some(StatementBudget {
            max_rows: constraints.max_rows_scanned.unwrap_or(u64::MAX),
            max_millis: constraints.max_execution_millis,
            started: Instant::now(),
            rows: AtomicU64::new(0),
        })
    }

    /// Charges one scanned row against the budget. The row cap is an exact
    /// comparison on the incremented counter; the time cap is probed every
    /// [`TIME_PROBE_INTERVAL`] rows (and on the first row, so a statement
    /// resuming after a long stall is caught promptly).
    pub fn charge_row(&self) -> IfdbResult<()> {
        let scanned = self.rows.fetch_add(1, Ordering::Relaxed) + 1;
        if scanned > self.max_rows {
            return Err(IfdbError::BudgetExceeded {
                resource: "rows".into(),
                limit: self.max_rows,
                used: scanned,
            });
        }
        if scanned % TIME_PROBE_INTERVAL == 1 {
            if let Some(max_millis) = self.max_millis {
                let elapsed = self.started.elapsed().as_millis() as u64;
                if elapsed > max_millis {
                    return Err(IfdbError::BudgetExceeded {
                        resource: "time_ms".into(),
                        limit: max_millis,
                        used: elapsed,
                    });
                }
            }
        }
        Ok(())
    }

    /// Rows charged so far.
    pub fn rows_scanned(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// Admission limits for one principal at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrincipalQuota {
    /// Statements this principal may have executing concurrently; further
    /// requests queue behind its own work rather than a neighbor's.
    pub max_in_flight: u32,
    /// Sustained admissions per second (token bucket with a one-second
    /// burst); `0` means unlimited.
    pub max_requests_per_sec: u32,
    /// Relative scheduling weight in the executor pool's round-robin: a
    /// weight-2 principal drains twice as many queued statements per turn as
    /// a weight-1 one. Clamped to at least 1.
    pub weight: u32,
}

impl Default for PrincipalQuota {
    fn default() -> Self {
        PrincipalQuota {
            max_in_flight: 0, // unlimited
            max_requests_per_sec: 0,
            weight: 1,
        }
    }
}

impl PrincipalQuota {
    /// No limits, weight 1 (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps concurrent in-flight statements.
    pub fn with_max_in_flight(mut self, n: u32) -> Self {
        self.max_in_flight = n;
        self
    }

    /// Caps sustained admissions per second.
    pub fn with_max_rps(mut self, n: u32) -> Self {
        self.max_requests_per_sec = n;
        self
    }

    /// Sets the scheduling weight (clamped to at least 1 when used).
    pub fn with_weight(mut self, w: u32) -> Self {
        self.weight = w;
        self
    }
}

/// The complete QoS policy a server runs under: statement budgets applied to
/// every session, a default admission quota, and per-principal overrides.
/// This is the unit the `Reconfigure` wire request swaps atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosConfig {
    /// Budgets applied to every statement.
    pub constraints: ExecutionConstraints,
    /// Quota for principals without an override.
    pub default_quota: PrincipalQuota,
    /// Per-principal overrides, keyed by principal id.
    pub overrides: Vec<(u64, PrincipalQuota)>,
}

impl QosConfig {
    /// The quota in force for `principal`.
    pub fn quota_for(&self, principal: u64) -> PrincipalQuota {
        self.overrides
            .iter()
            .find(|(p, _)| *p == principal)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }

    /// Serializes the policy to the flat `u64` list carried by the
    /// `Reconfigure` wire request. Round-trips through [`Self::from_wire`].
    pub fn to_wire(&self) -> Vec<u64> {
        let mut out = vec![
            self.constraints.max_rows_scanned.map_or(0, |v| v + 1),
            self.constraints.max_execution_millis.map_or(0, |v| v + 1),
            self.default_quota.max_in_flight as u64,
            self.default_quota.max_requests_per_sec as u64,
            self.default_quota.weight as u64,
            self.overrides.len() as u64,
        ];
        for (principal, q) in &self.overrides {
            out.push(*principal);
            out.push(q.max_in_flight as u64);
            out.push(q.max_requests_per_sec as u64);
            out.push(q.weight as u64);
        }
        out
    }

    /// Inverse of [`Self::to_wire`]; `None` on a malformed payload.
    pub fn from_wire(words: &[u64]) -> Option<Self> {
        if words.len() < 6 {
            return None;
        }
        let opt = |v: u64| if v == 0 { None } else { Some(v - 1) };
        let n = words[5] as usize;
        if words.len() != 6 + n * 4 {
            return None;
        }
        let mut overrides = Vec::with_capacity(n);
        for chunk in words[6..].chunks_exact(4) {
            overrides.push((
                chunk[0],
                PrincipalQuota {
                    max_in_flight: u32::try_from(chunk[1]).ok()?,
                    max_requests_per_sec: u32::try_from(chunk[2]).ok()?,
                    weight: u32::try_from(chunk[3]).ok()?,
                },
            ));
        }
        Some(QosConfig {
            constraints: ExecutionConstraints {
                max_rows_scanned: opt(words[0]),
                max_execution_millis: opt(words[1]),
            },
            default_quota: PrincipalQuota {
                max_in_flight: u32::try_from(words[2]).ok()?,
                max_requests_per_sec: u32::try_from(words[3]).ok()?,
                weight: u32::try_from(words[4]).ok()?,
            },
            overrides,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_constraints_arm_no_budget() {
        assert!(StatementBudget::arm(&ExecutionConstraints::unlimited()).is_none());
    }

    #[test]
    fn row_budget_kills_at_the_limit() {
        let budget = StatementBudget::arm(&ExecutionConstraints::unlimited().with_max_rows(3))
            .expect("limited");
        for _ in 0..3 {
            budget.charge_row().unwrap();
        }
        let err = budget.charge_row().unwrap_err();
        assert!(
            matches!(err, IfdbError::BudgetExceeded { ref resource, limit: 3, used: 4 } if resource == "rows"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn time_budget_is_probed() {
        let budget = StatementBudget::arm(&ExecutionConstraints::unlimited().with_max_millis(0))
            .expect("limited");
        std::thread::sleep(std::time::Duration::from_millis(2));
        // The very first row probes the clock.
        let err = budget.charge_row().unwrap_err();
        assert!(
            matches!(err, IfdbError::BudgetExceeded { ref resource, .. } if resource == "time_ms")
        );
    }

    #[test]
    fn qos_config_round_trips_the_wire() {
        let configs = vec![
            QosConfig::default(),
            QosConfig {
                constraints: ExecutionConstraints::unlimited()
                    .with_max_rows(10_000)
                    .with_max_millis(250),
                default_quota: PrincipalQuota::unlimited()
                    .with_max_in_flight(4)
                    .with_max_rps(100),
                overrides: vec![
                    (7, PrincipalQuota::unlimited().with_weight(4)),
                    (9, PrincipalQuota::unlimited().with_max_in_flight(1)),
                ],
            },
            // A zero limit is distinct from "unlimited" on the wire.
            QosConfig {
                constraints: ExecutionConstraints::unlimited().with_max_rows(0),
                ..Default::default()
            },
        ];
        for c in configs {
            assert_eq!(QosConfig::from_wire(&c.to_wire()), Some(c.clone()));
        }
        assert_eq!(QosConfig::from_wire(&[]), None);
        assert_eq!(QosConfig::from_wire(&[0, 0, 0, 0, 0, 2, 1]), None);
    }

    #[test]
    fn quota_lookup_prefers_overrides() {
        let cfg = QosConfig {
            default_quota: PrincipalQuota::unlimited().with_max_in_flight(8),
            overrides: vec![(3, PrincipalQuota::unlimited().with_max_in_flight(1))],
            ..Default::default()
        };
        assert_eq!(cfg.quota_for(3).max_in_flight, 1);
        assert_eq!(cfg.quota_for(4).max_in_flight, 8);
    }
}
