//! The bind/plan layer: statements are bound once per execution.
//!
//! The seed executor resolved column names by per-row string search,
//! re-decided index applicability per scan, and knew only one access path
//! beyond the full scan (primary-key equality). This module binds a
//! statement's predicate to column *offsets* ([`CompiledPredicate`]) and
//! chooses an [`AccessPath`] up front:
//!
//! * full-key equality on any index (primary or secondary) → point lookup;
//! * equality on a key prefix → ordered prefix scan;
//! * equality prefix plus bounds on the final key column → index range scan.
//!
//! Planner input predicates are *hints*: they are implied by the statement's
//! full predicate (see [`Predicate::push_down`]), the residual filter is
//! always re-applied, and index bounds are widened to inclusive bounds — so
//! a coarser-than-optimal plan is never incorrect, only slower.

use std::cmp::Ordering;

use ifdb_difc::{Label, TagId};
use ifdb_storage::Datum;

use crate::catalog::TableInfo;
use crate::error::{IfdbError, IfdbResult};
use crate::query::Predicate;

/// A predicate compiled against a fixed column layout: names are resolved to
/// offsets once, so per-row evaluation does no string comparison and cannot
/// fail.
#[derive(Debug, Clone)]
pub(crate) enum CompiledPredicate {
    /// Always true.
    True,
    /// `values[i] == v`.
    Eq(usize, Datum),
    /// `values[i] != v` (and comparable).
    Ne(usize, Datum),
    /// `values[i] < v`.
    Lt(usize, Datum),
    /// `values[i] <= v`.
    Le(usize, Datum),
    /// `values[i] > v`.
    Gt(usize, Datum),
    /// `values[i] >= v`.
    Ge(usize, Datum),
    /// `values[i] IS NULL`.
    IsNull(usize),
    /// `values[i] IS NOT NULL`.
    IsNotNull(usize),
    /// Conjunction.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Disjunction.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
    /// The row's label contains the tag.
    LabelContains(TagId),
    /// The row's label is exactly this label.
    LabelEquals(Label),
}

impl CompiledPredicate {
    /// Binds `pred` to `columns`, resolving every column reference to its
    /// offset. Unknown columns fail here, once per statement, preserving the
    /// seed executor's error surface.
    pub(crate) fn compile(pred: &Predicate, columns: &[String]) -> IfdbResult<CompiledPredicate> {
        let col = |c: &str| -> IfdbResult<usize> {
            columns
                .iter()
                .position(|x| x == c)
                .ok_or_else(|| IfdbError::UnknownColumn(c.to_string()))
        };
        Ok(match pred {
            Predicate::True => CompiledPredicate::True,
            Predicate::Eq(c, v) => CompiledPredicate::Eq(col(c)?, v.clone()),
            Predicate::Ne(c, v) => CompiledPredicate::Ne(col(c)?, v.clone()),
            Predicate::Lt(c, v) => CompiledPredicate::Lt(col(c)?, v.clone()),
            Predicate::Le(c, v) => CompiledPredicate::Le(col(c)?, v.clone()),
            Predicate::Gt(c, v) => CompiledPredicate::Gt(col(c)?, v.clone()),
            Predicate::Ge(c, v) => CompiledPredicate::Ge(col(c)?, v.clone()),
            Predicate::IsNull(c) => CompiledPredicate::IsNull(col(c)?),
            Predicate::IsNotNull(c) => CompiledPredicate::IsNotNull(col(c)?),
            Predicate::And(a, b) => CompiledPredicate::And(
                Box::new(Self::compile(a, columns)?),
                Box::new(Self::compile(b, columns)?),
            ),
            Predicate::Or(a, b) => CompiledPredicate::Or(
                Box::new(Self::compile(a, columns)?),
                Box::new(Self::compile(b, columns)?),
            ),
            Predicate::Not(a) => CompiledPredicate::Not(Box::new(Self::compile(a, columns)?)),
            Predicate::LabelContains(t) => CompiledPredicate::LabelContains(*t),
            Predicate::LabelEquals(l) => CompiledPredicate::LabelEquals(l.clone()),
        })
    }

    /// Evaluates the predicate against a row's values and effective label.
    pub(crate) fn matches(&self, values: &[Datum], label: &Label) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Eq(i, v) => values[*i].compare(v) == Some(Ordering::Equal),
            CompiledPredicate::Ne(i, v) => {
                let o = values[*i].compare(v);
                o.is_some() && o != Some(Ordering::Equal)
            }
            CompiledPredicate::Lt(i, v) => values[*i].compare(v) == Some(Ordering::Less),
            CompiledPredicate::Le(i, v) => matches!(
                values[*i].compare(v),
                Some(Ordering::Less) | Some(Ordering::Equal)
            ),
            CompiledPredicate::Gt(i, v) => values[*i].compare(v) == Some(Ordering::Greater),
            CompiledPredicate::Ge(i, v) => matches!(
                values[*i].compare(v),
                Some(Ordering::Greater) | Some(Ordering::Equal)
            ),
            CompiledPredicate::IsNull(i) => values[*i].is_null(),
            CompiledPredicate::IsNotNull(i) => !values[*i].is_null(),
            CompiledPredicate::And(a, b) => a.matches(values, label) && b.matches(values, label),
            CompiledPredicate::Or(a, b) => a.matches(values, label) || b.matches(values, label),
            CompiledPredicate::Not(a) => !a.matches(values, label),
            CompiledPredicate::LabelContains(t) => label.contains(*t),
            CompiledPredicate::LabelEquals(l) => label == l,
        }
    }

    /// Returns `true` if the predicate is the constant `True`.
    #[cfg(test)]
    pub(crate) fn is_true(&self) -> bool {
        matches!(self, CompiledPredicate::True)
    }
}

/// How the executor reaches the rows of one base table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AccessPath {
    /// Examine every visible version.
    FullScan,
    /// Point lookup: every index key column pinned by equality.
    IndexEq {
        /// Index name.
        index: String,
        /// The pinned key.
        key: Vec<Datum>,
    },
    /// Ordered scan of the keys starting with `prefix` (equality on the
    /// leading key columns).
    IndexPrefix {
        /// Index name.
        index: String,
        /// The pinned key prefix.
        prefix: Vec<Datum>,
    },
    /// Range scan: equality prefix plus inclusive bounds on the final key
    /// column. Strict statement bounds are widened here and re-checked by
    /// the residual filter.
    IndexRange {
        /// Index name.
        index: String,
        /// Inclusive lower key bound.
        low: Option<Vec<Datum>>,
        /// Inclusive upper key bound.
        high: Option<Vec<Datum>>,
    },
}

/// One bound base-table scan: the access path plus the residual filter,
/// compiled against the table's column layout.
#[derive(Debug)]
pub(crate) struct TableScanPlan {
    /// How rows are fetched.
    pub(crate) access: AccessPath,
    /// Offset-compiled filter applied to every fetched row (the push-down of
    /// the statement predicate onto this table).
    pub(crate) filter: CompiledPredicate,
}

/// Binds a scan of `info` under `hint`: pushes the supported conjuncts of
/// the hint down onto the table's columns, compiles them, and chooses the
/// access path.
pub(crate) fn plan_table_scan(info: &TableInfo, hint: &Predicate) -> IfdbResult<TableScanPlan> {
    let names = info.column_names();
    let pushed = hint.push_down(&|c| names.iter().any(|n| n == c).then(|| c.to_string()));
    let filter = CompiledPredicate::compile(&pushed, &names)?;
    let access = choose_access_path(info, &pushed);
    Ok(TableScanPlan { access, filter })
}

fn choose_access_path(info: &TableInfo, hint: &Predicate) -> AccessPath {
    if matches!(hint, Predicate::True) {
        return AccessPath::FullScan;
    }
    // Full-key equality beats everything; the PK index is listed first.
    for (name, cols) in info.index_specs() {
        let key: Option<Vec<Datum>> = cols.iter().map(|c| hint.equality_on(c).cloned()).collect();
        if let Some(key) = key {
            return AccessPath::IndexEq {
                index: name.to_string(),
                key,
            };
        }
    }
    // Otherwise the longest equality prefix wins, extended by a range over
    // the final key column when the hint bounds it.
    let mut best: Option<(AccessPath, usize)> = None;
    let mut consider = |path: AccessPath, matched: usize| {
        if best.as_ref().is_none_or(|(_, m)| matched > *m) {
            best = Some((path, matched));
        }
    };
    for (name, cols) in info.index_specs() {
        let mut prefix = Vec::new();
        for c in cols {
            match hint.equality_on(c) {
                Some(v) => prefix.push(v.clone()),
                None => break,
            }
        }
        // A bounded column is only usable as the *last* key column: the
        // inclusive upper bound would otherwise cut off longer keys that
        // share the bounded value. With a non-empty equality prefix, both
        // bounds must be present — a missing bound would make the range run
        // to the index edge across *other* prefix groups, which the prefix
        // scan below serves strictly better.
        if prefix.len() + 1 == cols.len() {
            let range_col = &cols[prefix.len()];
            let (lo, hi) = hint.bounds_on(range_col);
            let usable = if prefix.is_empty() {
                lo.is_some() || hi.is_some()
            } else {
                lo.is_some() && hi.is_some()
            };
            if usable {
                let mk = |b: Option<&Datum>| {
                    b.map(|v| {
                        let mut k = prefix.clone();
                        k.push(v.clone());
                        k
                    })
                };
                consider(
                    AccessPath::IndexRange {
                        index: name.to_string(),
                        low: mk(lo),
                        high: mk(hi),
                    },
                    prefix.len() + 1,
                );
                continue;
            }
        }
        if !prefix.is_empty() {
            let matched = prefix.len();
            consider(
                AccessPath::IndexPrefix {
                    index: name.to_string(),
                    prefix,
                },
                matched,
            );
        }
    }
    best.map(|(p, _)| p).unwrap_or(AccessPath::FullScan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexSpec;
    use ifdb_storage::{ColumnDef, DataType, TableId, TableSchema};

    fn info() -> TableInfo {
        TableInfo {
            id: TableId(1),
            schema: TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                    ColumnDef::new("c", DataType::Text),
                ],
            ),
            primary_key: vec!["a".into(), "b".into()],
            uniques: vec![],
            foreign_keys: vec![],
            label_constraints: vec![],
            pk_index: Some("t_pkey".into()),
            indexes: vec![IndexSpec {
                name: "t_c".into(),
                columns: vec!["c".into()],
            }],
            constraints_pending: false,
        }
    }

    fn eq(col: &str, v: i64) -> Predicate {
        Predicate::Eq(col.into(), Datum::Int(v))
    }

    #[test]
    fn full_key_equality_picks_point_lookup() {
        let plan = plan_table_scan(&info(), &eq("a", 1).and(eq("b", 2))).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEq {
                index: "t_pkey".into(),
                key: vec![Datum::Int(1), Datum::Int(2)],
            }
        );
    }

    #[test]
    fn secondary_index_equality_picks_point_lookup() {
        let p = Predicate::Eq("c".into(), Datum::from("x"));
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexEq {
                index: "t_c".into(),
                key: vec![Datum::from("x")],
            }
        );
    }

    #[test]
    fn prefix_equality_picks_prefix_scan() {
        let plan = plan_table_scan(&info(), &eq("a", 7)).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexPrefix {
                index: "t_pkey".into(),
                prefix: vec![Datum::Int(7)],
            }
        );
    }

    #[test]
    fn prefix_plus_bounds_picks_range_scan() {
        let p = eq("a", 7).and(
            Predicate::Ge("b".into(), Datum::Int(3)).and(Predicate::Lt("b".into(), Datum::Int(9))),
        );
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexRange {
                index: "t_pkey".into(),
                low: Some(vec![Datum::Int(7), Datum::Int(3)]),
                high: Some(vec![Datum::Int(7), Datum::Int(9)]),
            }
        );
    }

    #[test]
    fn one_sided_bounds() {
        // With an equality prefix, a one-sided bound must not produce a
        // range running to the index edge — the prefix scan is strictly
        // tighter.
        let p = eq("a", 7).and(Predicate::Ge("b".into(), Datum::Int(3)));
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexPrefix {
                index: "t_pkey".into(),
                prefix: vec![Datum::Int(7)],
            }
        );
        // On a single-column index there is no other prefix group, so the
        // one-sided range is fine.
        let p = Predicate::Ge("c".into(), Datum::from("m"));
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(
            plan.access,
            AccessPath::IndexRange {
                index: "t_c".into(),
                low: Some(vec![Datum::from("m")]),
                high: None,
            }
        );
    }

    #[test]
    fn unsupported_hints_fall_back_to_full_scan() {
        let plan = plan_table_scan(&info(), &Predicate::True).unwrap();
        assert_eq!(plan.access, AccessPath::FullScan);
        // A bound on a non-final key column cannot use the index.
        let p = Predicate::Ge("a".into(), Datum::Int(3));
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(plan.access, AccessPath::FullScan);
        // Disjunctions are not index hints, and unknown columns are dropped
        // from the push-down rather than failing the scan of this table.
        let p = eq("a", 1).or(eq("b", 2));
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(plan.access, AccessPath::FullScan);
        assert!(!plan.filter.is_true());
        let p = eq("zzz", 1);
        let plan = plan_table_scan(&info(), &p).unwrap();
        assert_eq!(plan.access, AccessPath::FullScan);
        assert!(plan.filter.is_true());
    }

    #[test]
    fn compiled_predicate_matches_like_interpreter() {
        let names: Vec<String> = vec!["x".into(), "y".into()];
        let p = Predicate::Ge("x".into(), Datum::Int(5))
            .and(Predicate::IsNotNull("y".into()))
            .or(Predicate::IsNull("y".into()));
        let c = CompiledPredicate::compile(&p, &names).unwrap();
        let l = Label::empty();
        assert!(c.matches(&[Datum::Int(6), Datum::Int(0)], &l));
        assert!(!c.matches(&[Datum::Int(4), Datum::Int(0)], &l));
        assert!(c.matches(&[Datum::Int(4), Datum::Null], &l));
        assert!(
            CompiledPredicate::compile(&Predicate::Eq("zzz".into(), Datum::Int(1)), &names)
                .is_err()
        );
    }
}
