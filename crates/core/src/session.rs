//! Sessions: the per-process connection to the database.
//!
//! A [`Session`] corresponds to one client process in the paper's
//! architecture: it carries the process's DIFC state (principal and label),
//! shares that state with the database on every statement (the coalesced,
//! lazy label synchronization of Section 7.2 is modelled by the
//! `label_syncs` counter), and manages transactions, including the commit
//! label rule and deferred triggers of Section 5.
//!
//! Durability is inherited from the database's
//! [`DurabilityConfig`](ifdb_storage::DurabilityConfig): with
//! `sync_on_commit`, [`Session::commit`] returns only once the commit record
//! has reached the device, and under group commit concurrent sessions share
//! one fsync — many client processes commit for the price of one device
//! flush, which is what makes labeled (larger) tuples affordable to log
//! (Section 8.3).

use ifdb_difc::audit::AuditEvent;
use ifdb_difc::{AuthorityCache, Label, PrincipalId, ProcessState, TagId};
use ifdb_storage::{Snapshot, TxnId};
use std::sync::Arc;

use crate::catalog::{TriggerDef, TriggerInvocation};
use crate::database::Database;
use crate::error::{IfdbError, IfdbResult};
use crate::qos::{ExecutionConstraints, StatementBudget};

/// A record of one tuple written during a transaction, kept for the commit
/// label rule (Section 5.1).
#[derive(Debug, Clone)]
pub struct WriteRecord {
    /// The table written.
    pub table: String,
    /// The label the tuple was written with.
    pub label: Label,
}

/// State of the transaction a session currently has open.
pub(crate) struct TxnState {
    pub(crate) id: TxnId,
    pub(crate) snapshot: Snapshot,
    pub(crate) write_set: Vec<WriteRecord>,
    pub(crate) deferred: Vec<(Arc<TriggerDef>, TriggerInvocation)>,
    pub(crate) implicit: bool,
}

/// Counters exposed by a session, used by the performance harnesses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements executed.
    pub statements: u64,
    /// Number of times the process label had to be re-synchronized with the
    /// database (i.e. the label changed since the previous statement).
    pub label_syncs: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Statements killed because they exhausted an execution budget.
    pub budget_kills: u64,
}

/// A database session acting on behalf of one principal.
pub struct Session {
    pub(crate) db: Database,
    pub(crate) process: ProcessState,
    pub(crate) cache: AuthorityCache,
    pub(crate) txn: Option<TxnState>,
    pub(crate) serializable: bool,
    pub(crate) stats: SessionStats,
    /// Per-statement execution constraints (rows scanned / wall time).
    /// Inherited from the database config; overridable per session and
    /// hot-reloadable by the server on admission.
    pub(crate) constraints: ExecutionConstraints,
    /// Budget of the statement currently executing, if one is armed. Shared
    /// by `Arc` with the executor's per-row visit closures, which cannot
    /// borrow the session.
    pub(crate) budget: Option<Arc<StatementBudget>>,
    last_synced_epoch: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("principal", &self.process.principal())
            .field("label", &self.process.label())
            .field("in_txn", &self.txn.is_some())
            .finish()
    }
}

impl Session {
    pub(crate) fn new(db: Database, principal: PrincipalId) -> Self {
        let serializable = db.inner.serializable;
        let constraints = db.inner.constraints;
        Session {
            db,
            process: ProcessState::new(principal),
            cache: AuthorityCache::new(),
            txn: None,
            serializable,
            stats: SessionStats::default(),
            constraints,
            budget: None,
            last_synced_epoch: 0,
        }
    }

    /// The database this session is connected to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The acting principal.
    pub fn principal(&self) -> PrincipalId {
        self.process.principal()
    }

    /// The current process label.
    pub fn label(&self) -> &Label {
        self.process.label()
    }

    /// The process's DIFC state.
    pub fn process(&self) -> &ProcessState {
        &self.process
    }

    /// Session statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Switches the acting principal. In a deployment this is done by the
    /// trusted authentication component after verifying credentials.
    pub fn login(&mut self, principal: PrincipalId) {
        self.process.set_principal(principal);
    }

    /// Resets the session for reuse by a new request or connection acting as
    /// `principal`: any open transaction is aborted and the process label is
    /// cleared. This is a *trusted* operation — it discards contamination
    /// without an authority check — and exists for the connection-handshake
    /// path of `ifdb-server`, where a fresh process (with a fresh, empty
    /// label) takes over a pooled connection. Untrusted code lowers its label
    /// only through [`Session::declassify`].
    pub fn reset(&mut self, principal: PrincipalId) {
        if self.txn.is_some() {
            let _ = self.abort();
        }
        self.process.set_principal(principal);
        self.process.set_label_unchecked(Label::empty());
    }

    /// Enables or disables the serializable-mode transaction clearance rule.
    pub fn set_serializable(&mut self, on: bool) {
        self.serializable = on;
    }

    /// Replaces this session's per-statement execution constraints. Takes
    /// effect from the next statement; a statement already running keeps the
    /// budget it was armed with.
    pub fn set_execution_constraints(&mut self, constraints: ExecutionConstraints) {
        self.constraints = constraints;
    }

    /// The per-statement execution constraints currently in force.
    pub fn execution_constraints(&self) -> ExecutionConstraints {
        self.constraints
    }

    /// Arms a budget for a top-level statement. Returns `true` if this call
    /// armed it (and must disarm it); nested statements — trigger bodies,
    /// procedure bodies — find a budget already armed and charge against the
    /// outer statement's allowance rather than getting a fresh one.
    pub(crate) fn arm_budget(&mut self) -> bool {
        if self.budget.is_some() {
            return false;
        }
        match StatementBudget::arm(&self.constraints) {
            Some(b) => {
                self.budget = Some(Arc::new(b));
                true
            }
            None => false,
        }
    }

    /// Disarms the statement budget (when this frame armed it) and, on a
    /// budget kill, bumps the counter and records the tamper-evident
    /// [`AuditEvent::BudgetKill`]. Passing the result through keeps call
    /// sites to a single wrapping expression.
    pub(crate) fn disarm_budget<T>(&mut self, armed: bool, r: IfdbResult<T>) -> IfdbResult<T> {
        if armed {
            self.budget = None;
            if let Err(IfdbError::BudgetExceeded {
                resource,
                limit,
                used,
            }) = &r
            {
                self.stats.budget_kills += 1;
                self.db.record_audit(AuditEvent::BudgetKill {
                    principal: self.process.principal(),
                    resource: resource.clone(),
                    limit: *limit,
                    used: *used,
                });
            }
        }
        r
    }

    /// Returns `true` if this session refuses writes (it belongs to a
    /// read-only replica database).
    pub fn is_read_only(&self) -> bool {
        self.db.is_read_only()
    }

    /// Fails with [`IfdbError::ReadOnlyReplica`] when the session must not
    /// write. Checked at every DML entry point and at the authority-state
    /// mutations (`delegate`, `revoke`, `create_tag`) — the replica's
    /// authority state must stay a faithful reconstruction of the
    /// primary's, not drift through local grants.
    pub(crate) fn check_writable(&self) -> IfdbResult<()> {
        if self.db.is_read_only() {
            return Err(IfdbError::ReadOnlyReplica);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Label and authority operations
    // ------------------------------------------------------------------

    /// Adds `tag` to the process label (`addsecrecy`). Under the serializable
    /// clearance rule (Section 5.1), a transaction may add a tag only if the
    /// principal is authoritative for it.
    pub fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()> {
        if self.serializable && self.txn.is_some() {
            let auth = self.db.inner.auth.read();
            if !self
                .cache
                .has_authority(&auth, self.process.principal(), tag)
            {
                return Err(IfdbError::ClearanceViolation { tag });
            }
        }
        let raised = !self.process.label().contains(tag);
        self.process.add_secrecy(tag)?;
        if raised {
            self.db.record_audit(AuditEvent::LabelRaise {
                principal: self.process.principal(),
                added: Label::empty().with_tag(tag),
            });
        }
        Ok(())
    }

    /// Raises the process label to its union with `other`.
    pub fn raise_label(&mut self, other: &Label) -> IfdbResult<()> {
        if self.serializable && self.txn.is_some() {
            let auth = self.db.inner.auth.read();
            for tag in other.difference(self.process.label()).iter() {
                if !self
                    .cache
                    .has_authority(&auth, self.process.principal(), tag)
                {
                    return Err(IfdbError::ClearanceViolation { tag });
                }
            }
        }
        let added = other.difference(self.process.label());
        self.process.raise_to(other)?;
        if !added.is_empty() {
            self.db.record_audit(AuditEvent::LabelRaise {
                principal: self.process.principal(),
                added,
            });
        }
        Ok(())
    }

    /// Removes `tag` from the process label. Requires authority.
    pub fn declassify(&mut self, tag: TagId) -> IfdbResult<()> {
        let before = self.process.label().clone();
        {
            let auth = self.db.inner.auth.read();
            self.process.declassify(tag, &auth)?;
        }
        self.db.record_audit(AuditEvent::Declassify {
            principal: self.process.principal(),
            tag,
            label_before: before,
        });
        Ok(())
    }

    /// Removes every tag of `tags`, checking authority for each first.
    pub fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()> {
        let auth = self.db.inner.auth.read();
        self.process.declassify_all(tags, &auth)?;
        Ok(())
    }

    /// Creates a tag owned by the acting principal.
    pub fn create_tag(&mut self, name: &str, compounds: &[TagId]) -> IfdbResult<TagId> {
        self.check_writable()?;
        Ok(self
            .db
            .inner
            .auth
            .write()
            .create_tag(self.process.principal(), name, compounds)?)
    }

    /// Delegates authority for `tag` from the acting principal to `grantee`.
    /// The process must have an empty label (the authority state is an
    /// empty-labeled object, Section 3.2).
    pub fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        self.check_writable()?;
        let grantor = self.process.principal();
        self.db
            .inner
            .auth
            .write()
            .delegate(grantor, grantee, tag, self.process.label())?;
        self.db.record_audit(AuditEvent::Delegate {
            grantor,
            grantee,
            tag,
        });
        Ok(())
    }

    /// Revokes a delegation previously made by the acting principal.
    pub fn revoke(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        self.check_writable()?;
        let grantor = self.process.principal();
        self.db
            .inner
            .auth
            .write()
            .revoke(grantor, grantee, tag, self.process.label())?;
        self.db.record_audit(AuditEvent::Revoke {
            grantor,
            grantee,
            tag,
        });
        Ok(())
    }

    /// Checks that the process may release information to the outside world
    /// (an empty-labeled destination). Application platforms call this before
    /// writing to the client; a contaminated process is blocked and the
    /// attempt is audited.
    pub fn check_release_to_world(&self) -> IfdbResult<()> {
        match self.process.check_release_to_world() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.db.audit().record(AuditEvent::BlockedRelease {
                    principal: self.process.principal(),
                    label: self.process.label().clone(),
                });
                Err(e.into())
            }
        }
    }

    /// Returns `true` if the acting principal has authority for `tag`,
    /// consulting the session's authority cache.
    pub fn has_authority(&self, tag: TagId) -> bool {
        let auth = self.db.inner.auth.read();
        self.cache
            .has_authority(&auth, self.process.principal(), tag)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Returns `true` if an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.as_ref().map(|t| !t.implicit).unwrap_or(false)
    }

    /// Starts an explicit transaction.
    pub fn begin(&mut self) -> IfdbResult<()> {
        if self.txn.is_some() {
            return Err(IfdbError::InvalidStatement(
                "transaction already in progress".into(),
            ));
        }
        self.start_txn(false)?;
        Ok(())
    }

    pub(crate) fn start_txn(&mut self, implicit: bool) -> IfdbResult<()> {
        let id = self.db.inner.engine.begin()?;
        let snapshot = self.db.inner.engine.snapshot(id);
        self.txn = Some(TxnState {
            id,
            snapshot,
            write_set: Vec::new(),
            deferred: Vec::new(),
            implicit,
        });
        Ok(())
    }

    /// Ensures a transaction is open; returns `true` if an implicit one was
    /// started (and should be committed when the statement finishes).
    pub(crate) fn ensure_txn(&mut self) -> IfdbResult<bool> {
        if self.txn.is_some() {
            return Ok(false);
        }
        self.start_txn(true)?;
        Ok(true)
    }

    pub(crate) fn note_statement(&mut self) {
        self.stats.statements += 1;
        let epoch = self.process.label_epoch();
        if epoch != self.last_synced_epoch {
            // The platform piggybacks label changes on the next statement
            // (Section 7.2); each such change is one protocol-level sync.
            self.stats.label_syncs += 1;
            self.last_synced_epoch = epoch;
        }
    }

    /// Commits the current transaction.
    ///
    /// Commit enforces the *transaction commit label* rule of Section 5.1:
    /// the process label at the commit point must be a subset of the label of
    /// every tuple in the transaction's write set. Otherwise committing would
    /// encode information about high-labeled data in the existence of
    /// lower-labeled tuples (the "Alice has HIV" example), so the transaction
    /// is aborted and an error is returned.
    ///
    /// On a database configured with `sync_on_commit` durability, a
    /// successful return additionally means the transaction's log records
    /// are on the device and will survive [`Database::open`] after a crash;
    /// under group commit the fsync may have been performed by a concurrent
    /// session's commit.
    pub fn commit(&mut self) -> IfdbResult<()> {
        let state = self
            .txn
            .take()
            .ok_or_else(|| IfdbError::InvalidStatement("no transaction to commit".into()))?;
        // Deferred triggers run first; they may add writes. They run with the
        // label of the query that queued them, not the commit label
        // (Section 5.2.3).
        let mut state = state;
        if !state.deferred.is_empty() {
            let deferred = std::mem::take(&mut state.deferred);
            self.txn = Some(state);
            for (trigger, inv) in deferred {
                let result = self.run_trigger(&trigger, &inv);
                if let Err(e) = result {
                    let _ = self.abort();
                    return Err(e);
                }
            }
            state = self.txn.take().expect("txn restored for deferred triggers");
        }
        // Commit label rule.
        if self.db.difc_enabled() {
            let commit_label = self.process.label().clone();
            for w in &state.write_set {
                if !commit_label.is_subset_of(&w.label) {
                    self.db.inner.engine.abort(state.id)?;
                    self.stats.aborts += 1;
                    self.db.record_audit(AuditEvent::CommitRefused {
                        principal: self.process.principal(),
                        commit_label: commit_label.clone(),
                        tuple_label: w.label.clone(),
                    });
                    return Err(IfdbError::CommitLabelViolation {
                        commit_label,
                        tuple_label: w.label.clone(),
                    });
                }
            }
        }
        self.db.inner.engine.commit(state.id)?;
        self.stats.commits += 1;
        Ok(())
    }

    /// Prepares the current transaction for two-phase commit under the
    /// coordinator-assigned global id `gid` (phase one, participant side).
    ///
    /// Runs the full commit-time machinery — deferred triggers, then the
    /// transaction commit label rule of Section 5.1 — so a yes vote means
    /// this participant *will* commit if told to: nothing checked at commit
    /// time can fail afterwards. On success the transaction leaves this
    /// session (it is in-doubt, owned by the coordinator) and is resolved
    /// later via [`Database::decide_prepared`]. On failure the transaction
    /// is aborted, which is the participant's no vote.
    pub fn prepare_commit(&mut self, gid: u64) -> IfdbResult<()> {
        let state = self
            .txn
            .take()
            .ok_or_else(|| IfdbError::InvalidStatement("no transaction to prepare".into()))?;
        let mut state = state;
        if !state.deferred.is_empty() {
            let deferred = std::mem::take(&mut state.deferred);
            self.txn = Some(state);
            for (trigger, inv) in deferred {
                let result = self.run_trigger(&trigger, &inv);
                if let Err(e) = result {
                    let _ = self.abort();
                    return Err(e);
                }
            }
            state = self.txn.take().expect("txn restored for deferred triggers");
        }
        // Commit label rule, enforced per participant at prepare time: the
        // coordinator's Decide cannot re-check labels, so the vote is where
        // a violation must surface (aborting here aborts the whole global
        // transaction).
        if self.db.difc_enabled() {
            let commit_label = self.process.label().clone();
            for w in &state.write_set {
                if !commit_label.is_subset_of(&w.label) {
                    self.db.inner.engine.abort(state.id)?;
                    self.stats.aborts += 1;
                    self.db.record_audit(AuditEvent::CommitRefused {
                        principal: self.process.principal(),
                        commit_label: commit_label.clone(),
                        tuple_label: w.label.clone(),
                    });
                    return Err(IfdbError::CommitLabelViolation {
                        commit_label,
                        tuple_label: w.label.clone(),
                    });
                }
            }
        }
        self.db.inner.engine.prepare_commit(state.id, gid)?;
        Ok(())
    }

    /// Aborts the current transaction.
    pub fn abort(&mut self) -> IfdbResult<()> {
        let state = self
            .txn
            .take()
            .ok_or_else(|| IfdbError::InvalidStatement("no transaction to abort".into()))?;
        self.db.inner.engine.abort(state.id)?;
        self.stats.aborts += 1;
        Ok(())
    }

    pub(crate) fn finish_statement<T>(
        &mut self,
        implicit: bool,
        r: IfdbResult<T>,
    ) -> IfdbResult<T> {
        self.note_statement();
        if implicit {
            match &r {
                Ok(_) => {
                    self.commit()?;
                }
                Err(_) => {
                    let _ = self.abort();
                }
            }
        }
        r
    }

    pub(crate) fn current_txn(&self) -> IfdbResult<(TxnId, Snapshot)> {
        let t = self
            .txn
            .as_ref()
            .ok_or_else(|| IfdbError::InvalidStatement("no active transaction".into()))?;
        Ok((t.id, t.snapshot.clone()))
    }

    pub(crate) fn record_write(&mut self, table: &str, label: Label) {
        if let Some(t) = self.txn.as_mut() {
            t.write_set.push(WriteRecord {
                table: table.to_string(),
                label,
            });
        }
    }

    // ------------------------------------------------------------------
    // Triggers, closures and procedures
    // ------------------------------------------------------------------

    /// Runs a trigger body, honouring stored-authority-closure semantics: the
    /// body runs as the bound principal, and any contamination it picked up
    /// that the bound principal may declassify is removed when it returns, so
    /// the calling process is not contaminated by data the closure read
    /// internally (the CarTel `driveupdate` pattern of Section 6.1).
    pub(crate) fn run_trigger(
        &mut self,
        trigger: &TriggerDef,
        inv: &TriggerInvocation,
    ) -> IfdbResult<()> {
        // Deferred triggers run with the label of the query that queued them.
        let saved_label = self.process.label().clone();
        if inv.label != saved_label {
            self.process.set_label_unchecked(inv.label.clone());
        }
        let result = match trigger.authority {
            Some(principal) => self.with_principal(principal, |s| (trigger.body)(s, inv)),
            None => (trigger.body)(self, inv),
        };
        // Restore the label the query ran with, discarding contamination the
        // closure was allowed to remove.
        self.unwind_label(saved_label, trigger.authority);
        result.map_err(|e| match e {
            IfdbError::TriggerRejected { .. } => e,
            other => IfdbError::TriggerRejected {
                trigger: trigger.name.clone(),
                reason: other.to_string(),
            },
        })
    }

    /// Calls a stored procedure (or stored authority closure) by name.
    pub fn call_procedure(
        &mut self,
        name: &str,
        args: &[ifdb_storage::Datum],
    ) -> IfdbResult<crate::row::ResultSet> {
        let proc = {
            let catalog = self.db.inner.catalog.read();
            catalog.procedure(name)?
        };
        let saved_label = self.process.label().clone();
        let result = match proc.authority {
            Some(principal) => self.with_principal(principal, |s| (proc.body)(s, args)),
            None => (proc.body)(self, args),
        };
        if proc.authority.is_some() {
            self.unwind_label(saved_label, proc.authority);
        }
        result
    }

    /// Runs `body` with the process temporarily acting as `principal`
    /// (a reduced-authority call when `principal` holds less authority).
    pub fn with_principal<T>(
        &mut self,
        principal: PrincipalId,
        body: impl FnOnce(&mut Session) -> IfdbResult<T>,
    ) -> IfdbResult<T> {
        let saved = self.process.principal();
        self.process.set_principal(principal);
        let result = body(self);
        self.process.set_principal(saved);
        result
    }

    /// After an authority closure returns, restore the caller's label: the
    /// closure's internal contamination is discarded where the closure
    /// principal holds the authority to declassify it, and kept (propagated
    /// to the caller) where it does not. Ordinary (non-closure) bodies leave
    /// the label untouched — their contamination is the caller's.
    fn unwind_label(&mut self, saved: Label, closure_principal: Option<PrincipalId>) {
        let Some(principal) = closure_principal else {
            return;
        };
        let current = self.process.label().clone();
        let extra = current.difference(&saved);
        let mut kept = Label::empty();
        if !extra.is_empty() {
            let auth = self.db.inner.auth.read();
            for tag in extra.iter() {
                if auth.has_authority(principal, tag) {
                    self.db.record_audit(AuditEvent::Declassify {
                        principal,
                        tag,
                        label_before: current.clone(),
                    });
                } else {
                    kept = kept.with_tag(tag);
                }
            }
        }
        self.process.set_label_unchecked(saved.union(&kept));
    }
}

impl Drop for Session {
    /// A session dropped mid-transaction — a request script that panicked, a
    /// network connection that died — must not leave its transaction active:
    /// an abandoned active transaction pins every later snapshot's visibility
    /// horizon and blocks checkpointing forever. Commit and abort both take
    /// the transaction state out of the session first, so this fires only
    /// for genuinely abandoned transactions.
    fn drop(&mut self) {
        if let Some(state) = self.txn.take() {
            let _ = self.db.inner.engine.abort(state.id);
            self.stats.aborts += 1;
        }
    }
}
