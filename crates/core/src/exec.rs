//! Statement execution: Query by Label, constraints, triggers and views.
//!
//! This module implements the heart of the paper:
//!
//! * the **Label Confinement Rule** — a query runs on the subset of the
//!   database whose tuple labels are subsets of the process label;
//! * the **Write Rule** — inserts are labeled exactly with the process label,
//!   and updates/deletes may touch only tuples labeled exactly the process
//!   label (lower-labeled tuples cause an error, higher-labeled tuples are
//!   invisible and unaffected);
//! * **declassifying views**, which evaluate their underlying query with the
//!   view's bound authority and strip the declassified tags from result
//!   labels;
//! * **uniqueness constraints with polyinstantiation**, the **Foreign Key
//!   Rule** with the `DECLASSIFYING` clause, **label constraints**, and
//!   **triggers** (ordinary and stored authority closures, immediate and
//!   deferred).
//!
//! # Execution pipeline
//!
//! Statements are *bound* once (names → offsets, predicates compiled,
//! access path chosen — see the crate-private `plan` module) and then
//! *streamed*: rows flow
//! from the storage engine through per-scan filter/projection callbacks into
//! the statement's sink without materializing intermediate row sets.
//! Predicate hints push down through views and into both sides of joins, so
//! index access paths fire below view and join boundaries.
//!
//! The Query-by-Label decision itself — strip the tags covered by enclosing
//! declassifying views, then test the Information Flow Rule — is memoized
//! per scan by stored label ([`LabelDecisionMemo`]): each distinct label is
//! decided once, and the authority lock is taken only to expand the
//! declassify cover before the scan, never across it.

use std::collections::HashMap;
use std::sync::Arc;

use ifdb_difc::audit::AuditEvent;
use ifdb_difc::memo::{LabelDecision, LabelDecisionMemo};
use ifdb_difc::Label;
use ifdb_storage::{Datum, RowId, Snapshot, TableId, TupleVersion};

use crate::catalog::{TableInfo, TriggerEvent, TriggerInvocation, TriggerTiming, ViewSource};
use crate::error::{IfdbError, IfdbResult};
use crate::plan::{plan_table_scan, AccessPath, CompiledPredicate, TableScanPlan};
use crate::query::{
    AggFunc, Aggregate, Delete, Insert, Join, JoinKind, Order, Predicate, Select, Update,
};
use crate::row::{ResultSet, Row};
use crate::session::Session;

/// An intermediate row produced by a scan, before projection.
///
/// The row carries only the *effective* label (after any declassifying
/// views stripped their tags). The stored label is not materialized per
/// row: the consumers that need it — the Write Rule checks in UPDATE and
/// DELETE — scan with an empty declassify set, where the effective label
/// *is* the stored label.
#[derive(Debug, Clone)]
pub(crate) struct ScanRow {
    /// Physical location, when the row comes directly from a base table.
    pub(crate) row_id: Option<(TableId, RowId)>,
    /// The effective label after any declassifying views were applied.
    pub(crate) label: Label,
    /// The values.
    pub(crate) values: Vec<Datum>,
}

/// The rows and column names produced by a materializing scan. Only the
/// reference (seed) executor still produces these; the streaming pipeline
/// pushes [`ScanRow`]s into sinks instead.
#[derive(Debug, Clone)]
pub(crate) struct SourceRows {
    pub(crate) columns: Vec<String>,
    pub(crate) rows: Vec<ScanRow>,
}

/// A streaming row consumer. Returning `Ok(false)` stops the scan early
/// (used by LIMIT and existence checks).
type RowSink<'a> = dyn FnMut(ScanRow) -> IfdbResult<bool> + 'a;

fn col_index(columns: &[String], name: &str) -> IfdbResult<usize> {
    columns
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| IfdbError::UnknownColumn(name.to_string()))
}

/// Refuses writes to a table recovered by `Database::open` whose first-boot
/// DDL has not been re-run: its uniques, foreign keys and label constraints
/// are not attached, and writing without them would bypass enforcement
/// silently.
fn check_constraints_attached(info: &TableInfo) -> IfdbResult<()> {
    if info.constraints_pending {
        return Err(IfdbError::ConstraintsPending {
            table: info.schema.name.clone(),
        });
    }
    Ok(())
}

/// Evaluates a predicate against a row by column name. The streaming
/// pipeline compiles predicates to offsets instead
/// ([`CompiledPredicate`]); this interpreter remains for the reference
/// executor.
fn eval_predicate(
    pred: &Predicate,
    columns: &[String],
    values: &[Datum],
    label: &Label,
) -> IfdbResult<bool> {
    let cmp = |col: &str, val: &Datum| -> IfdbResult<Option<std::cmp::Ordering>> {
        let idx = col_index(columns, col)?;
        Ok(values[idx].compare(val))
    };
    Ok(match pred {
        Predicate::True => true,
        Predicate::Eq(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Equal),
        Predicate::Ne(c, v) => {
            let o = cmp(c, v)?;
            o.is_some() && o != Some(std::cmp::Ordering::Equal)
        }
        Predicate::Lt(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Less),
        Predicate::Le(c, v) => matches!(
            cmp(c, v)?,
            Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
        ),
        Predicate::Gt(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Greater),
        Predicate::Ge(c, v) => matches!(
            cmp(c, v)?,
            Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
        ),
        Predicate::IsNull(c) => values[col_index(columns, c)?].is_null(),
        Predicate::IsNotNull(c) => !values[col_index(columns, c)?].is_null(),
        Predicate::And(a, b) => {
            eval_predicate(a, columns, values, label)? && eval_predicate(b, columns, values, label)?
        }
        Predicate::Or(a, b) => {
            eval_predicate(a, columns, values, label)? || eval_predicate(b, columns, values, label)?
        }
        Predicate::Not(a) => !eval_predicate(a, columns, values, label)?,
        Predicate::LabelContains(tag) => label.contains(*tag),
        Predicate::LabelEquals(l) => label == l,
    })
}

/// The resolved column layout of a two-way join: left columns keep their
/// names, colliding right columns are prefixed with `"<table>."`.
struct JoinLayout {
    left: Vec<String>,
    right: Vec<String>,
    out: Vec<String>,
}

/// What a `FROM` name resolved to.
enum ResolvedSource {
    Table(Arc<TableInfo>),
    View(Arc<crate::catalog::ViewDef>),
}

impl Session {
    // ==================================================================
    // Binding: resolving source column layouts
    // ==================================================================

    fn resolve_source(&self, from: &str) -> IfdbResult<ResolvedSource> {
        let catalog = self.db.inner.catalog.read();
        if catalog.has_table(from) {
            Ok(ResolvedSource::Table(catalog.table(from)?))
        } else if catalog.has_view(from) {
            Ok(ResolvedSource::View(catalog.view(from)?))
        } else {
            Err(IfdbError::UnknownTable(from.to_string()))
        }
    }

    /// Resolves the output columns of a table, view or join without
    /// scanning anything.
    pub(crate) fn source_columns(&self, from: &str) -> IfdbResult<Vec<String>> {
        let view = match self.resolve_source(from)? {
            ResolvedSource::Table(info) => return Ok(info.column_names()),
            ResolvedSource::View(view) => view,
        };
        match &view.source {
            ViewSource::Select(sel) => {
                let inner = self.source_columns(&sel.from)?;
                match &sel.columns {
                    None => Ok(inner),
                    Some(cols) => {
                        for c in cols {
                            col_index(&inner, c)?;
                        }
                        Ok(cols.clone())
                    }
                }
            }
            ViewSource::Join(join) => Ok(self.join_layout(join)?.out),
        }
    }

    /// Returns `true` if the source resolves through tables and
    /// single-source views only (no join anywhere in the chain). Join
    /// boundaries may drop pushed-down conjuncts, so only join-free chains
    /// guarantee that a fully-pushed predicate was applied below.
    fn source_is_join_free(&self, from: &str) -> IfdbResult<bool> {
        let view = match self.resolve_source(from)? {
            ResolvedSource::Table(_) => return Ok(true),
            ResolvedSource::View(view) => view,
        };
        match &view.source {
            ViewSource::Select(sel) => self.source_is_join_free(&sel.from),
            ViewSource::Join(_) => Ok(false),
        }
    }

    fn join_layout(&self, join: &Join) -> IfdbResult<JoinLayout> {
        let left = self.source_columns(&join.left)?;
        let right = self.source_columns(&join.right)?;
        let mut out = left.clone();
        out.extend(right.iter().map(|c| {
            if left.contains(c) {
                format!("{}.{}", join.right, c)
            } else {
                c.clone()
            }
        }));
        Ok(JoinLayout { left, right, out })
    }

    // ==================================================================
    // Streaming scans over tables, views and joins
    // ==================================================================

    /// Streams a table or view into `sink`, applying Query by Label
    /// confinement with the accumulated set of tags that enclosing
    /// declassifying views may remove. `hint` is a predicate implied by the
    /// enclosing statement; it steers access-path choice and is pushed down
    /// as a pre-filter, while the statement re-applies its full predicate.
    pub(crate) fn stream_source(
        &mut self,
        from: &str,
        declassify: &Label,
        hint: &Predicate,
        sink: &mut RowSink<'_>,
    ) -> IfdbResult<()> {
        let view = match self.resolve_source(from)? {
            ResolvedSource::Table(info) => {
                return self.stream_base_table(&info, declassify, hint, sink)
            }
            ResolvedSource::View(view) => view,
        };
        let nested_declassify = declassify.union(&view.declassifies);
        if view.is_declassifying() {
            self.db.audit().record(AuditEvent::DeclassifyingView {
                name: view.name.clone(),
                tags: view.declassifies.clone(),
            });
        }
        match &view.source {
            ViewSource::Select(sel) => {
                let inner_cols = self.source_columns(&sel.from)?;
                let view_filter = CompiledPredicate::compile(&sel.predicate, &inner_cols)?;
                let projection: Option<Vec<usize>> = match &sel.columns {
                    None => None,
                    Some(cols) => Some(
                        cols.iter()
                            .map(|c| col_index(&inner_cols, c))
                            .collect::<IfdbResult<_>>()?,
                    ),
                };
                // The view's projection keeps column names, so outer hint
                // conjuncts over view outputs push straight through to the
                // inner source, joined with the view's own predicate.
                let pushed =
                    hint.push_down(&|c| inner_cols.iter().any(|n| n == c).then(|| c.to_string()));
                let combined = sel.predicate.clone().and_compact(pushed);
                self.stream_source(&sel.from, &nested_declassify, &combined, &mut |r| {
                    if !view_filter.matches(&r.values, &r.label) {
                        return Ok(true);
                    }
                    let row = match &projection {
                        None => r,
                        Some(idx) => ScanRow {
                            row_id: None,
                            label: r.label,
                            values: idx.iter().map(|i| r.values[*i].clone()).collect(),
                        },
                    };
                    sink(row)
                })
            }
            ViewSource::Join(join) => self.stream_join(join, &nested_declassify, hint, sink),
        }
    }

    /// Streams a base table through its bound scan plan. The Query-by-Label
    /// decision is memoized per distinct stored label; the authority lock is
    /// taken only to expand the declassify cover up front and is released
    /// before the first tuple is visited.
    fn stream_base_table(
        &mut self,
        info: &Arc<TableInfo>,
        declassify: &Label,
        hint: &Predicate,
        sink: &mut RowSink<'_>,
    ) -> IfdbResult<()> {
        let plan = plan_table_scan(info, hint)?;
        self.stream_base_table_plan(info, declassify, plan, sink)
    }

    fn stream_base_table_plan(
        &mut self,
        info: &Arc<TableInfo>,
        declassify: &Label,
        plan: TableScanPlan,
        sink: &mut RowSink<'_>,
    ) -> IfdbResult<()> {
        let (_, snapshot) = self.current_txn()?;
        let process_label = self.process.label().clone();
        let difc = self.db.difc_enabled();
        // A declassifying view that declassifies a *compound* tag covers
        // every (transitive) member of the compound. Expanding the cover to
        // a plain tag set here means the per-tuple decision below never
        // consults the authority state — the lock is dropped at the end of
        // this statement, not held across the scan.
        let expanded = if declassify.is_empty() {
            Label::empty()
        } else {
            self.db.inner.auth.read().expand_declassify(declassify)
        };
        let db = self.db.clone();
        let engine = &db.inner.engine;
        let table_id = info.id;

        // The per-scan budget probe: every tuple the scan touches — admitted
        // or not — is charged against the statement's execution budget, so a
        // full scan over invisible high-labeled data is throttled exactly
        // like one over visible data (no timing channel through the budget).
        let budget = self.budget.clone();
        let mut memo = LabelDecisionMemo::new();
        let mut visit = |rid: RowId, version: TupleVersion| -> IfdbResult<bool> {
            if let Some(b) = &budget {
                b.charge_row()?;
            }
            let (_, decision) = memo.decide_raw(&version.header.label, |stored| {
                let effective = if expanded.is_empty() {
                    stored.clone()
                } else {
                    stored.difference(&expanded)
                };
                let admit = !difc || effective.is_subset_of(&process_label);
                LabelDecision { effective, admit }
            });
            if !decision.admit || !plan.filter.matches(&version.data, &decision.effective) {
                return Ok(true);
            }
            sink(ScanRow {
                row_id: Some((table_id, rid)),
                label: decision.effective.clone(),
                values: version.data,
            })
        };

        match &plan.access {
            AccessPath::FullScan => {
                let mut result: IfdbResult<()> = Ok(());
                engine.scan_visible(&snapshot, table_id, |rid, version| {
                    match visit(rid, version) {
                        Ok(more) => more,
                        Err(e) => {
                            result = Err(e);
                            false
                        }
                    }
                })?;
                result
            }
            AccessPath::IndexEq { index, key } => {
                for rid in engine.index_lookup(table_id, index, key)? {
                    if let Some(v) = engine.fetch_visible(&snapshot, table_id, rid)? {
                        if !visit(rid, v)? {
                            break;
                        }
                    }
                }
                Ok(())
            }
            AccessPath::IndexPrefix { index, prefix } => {
                for (_, rid) in engine.index_prefix(table_id, index, prefix)? {
                    if let Some(v) = engine.fetch_visible(&snapshot, table_id, rid)? {
                        if !visit(rid, v)? {
                            break;
                        }
                    }
                }
                Ok(())
            }
            AccessPath::IndexRange { index, low, high } => {
                for (_, rid) in engine.index_range(table_id, index, low.as_ref(), high.as_ref())? {
                    if let Some(v) = engine.fetch_visible(&snapshot, table_id, rid)? {
                        if !visit(rid, v)? {
                            break;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Streams a hash join: the right side is built into a hash table (its
    /// hint pushed down), the left side streams through it. Equality hints
    /// propagate across the join key in both directions, so pinning either
    /// side's key turns the other side's scan into an index lookup.
    fn stream_join(
        &mut self,
        join: &Join,
        declassify: &Label,
        outer_hint: &Predicate,
        sink: &mut RowSink<'_>,
    ) -> IfdbResult<()> {
        let layout = self.join_layout(join)?;
        let join_filter = CompiledPredicate::compile(&join.predicate, &layout.out)?;
        let left_on = col_index(&layout.left, &join.on.0)?;
        let right_on = col_index(&layout.right, &join.on.1)?;

        // Everything known to hold of the joined row at this level.
        let combined = join.predicate.clone().and_compact(
            outer_hint.push_down(&|c| layout.out.iter().any(|n| n == c).then(|| c.to_string())),
        );
        // Left side: plain names resolve to the left on collisions.
        let mut left_hint =
            combined.push_down(&|c| layout.left.iter().any(|n| n == c).then(|| c.to_string()));
        // Right side: prefixed names map to their right column; plain names
        // only when they are unambiguously right-side. For LEFT OUTER joins
        // a right-side pre-filter would turn dropped matches into
        // NULL-padded rows, so only the join-key propagation below applies.
        let right_prefix = format!("{}.", join.right);
        let mut right_hint = if join.kind == JoinKind::Inner {
            combined.push_down(&|c: &str| {
                if let Some(s) = c.strip_prefix(&right_prefix) {
                    layout.right.iter().any(|n| n == s).then(|| s.to_string())
                } else if layout.right.iter().any(|n| n == c) && !layout.left.iter().any(|n| n == c)
                {
                    Some(c.to_string())
                } else {
                    None
                }
            })
        } else {
            Predicate::True
        };
        // Join-key equality propagation: pinning one side's key pins the
        // other side's too.
        if let Some(v) = combined.equality_on(&join.on.0) {
            right_hint = right_hint.and_compact(Predicate::Eq(join.on.1.clone(), v.clone()));
        }
        let right_on_out = if layout.left.contains(&join.on.1) {
            format!("{}.{}", join.right, join.on.1)
        } else {
            join.on.1.clone()
        };
        if let Some(v) = combined.equality_on(&right_on_out) {
            left_hint = left_hint.and_compact(Predicate::Eq(join.on.0.clone(), v.clone()));
        }

        // Build phase: hash the right side on its join column.
        let mut table: HashMap<Datum, Vec<ScanRow>> = HashMap::new();
        self.stream_source(&join.right, declassify, &right_hint, &mut |r| {
            table.entry(r.values[right_on].clone()).or_default().push(r);
            Ok(true)
        })?;

        // Probe phase: stream the left side through the hash table.
        let right_width = layout.right.len();
        self.stream_source(&join.left, declassify, &left_hint, &mut |l| match table
            .get(&l.values[left_on])
        {
            Some(rs) if !rs.is_empty() => {
                for r in rs {
                    let mut values = l.values.clone();
                    values.extend(r.values.iter().cloned());
                    let label = l.label.union(&r.label);
                    if join_filter.matches(&values, &label) {
                        let keep = sink(ScanRow {
                            row_id: None,
                            label,
                            values,
                        })?;
                        if !keep {
                            return Ok(false);
                        }
                    }
                }
                Ok(true)
            }
            _ => {
                if join.kind == JoinKind::LeftOuter {
                    let mut values = l.values.clone();
                    values.extend(std::iter::repeat_n(Datum::Null, right_width));
                    if join_filter.matches(&values, &l.label) {
                        return sink(ScanRow {
                            row_id: None,
                            label: l.label.clone(),
                            values,
                        });
                    }
                }
                Ok(true)
            }
        })
    }

    // ==================================================================
    // SELECT
    // ==================================================================

    /// Executes a single-source SELECT.
    pub fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.select_inner(q);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn select_inner(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        // Bind once: columns, predicate, ordering and projection offsets.
        let src_cols = self.source_columns(&q.from)?;
        let filter = CompiledPredicate::compile(&q.predicate, &src_cols)?;
        let order_idx = match &q.order_by {
            Some((col, order)) => Some((col_index(&src_cols, col)?, *order)),
            None => None,
        };
        let (out_columns, projector): (Vec<String>, Option<Vec<usize>>) = match &q.columns {
            None => (src_cols.clone(), None),
            Some(cols) => {
                let idx: Vec<usize> = cols
                    .iter()
                    .map(|c| col_index(&src_cols, c))
                    .collect::<IfdbResult<_>>()?;
                (cols.clone(), Some(idx))
            }
        };
        // Without ORDER BY, LIMIT can stop the scan as soon as it is
        // satisfied.
        let stop_at = if order_idx.is_none() { q.limit } else { None };
        let exact = q.exact_label.as_ref();
        // If every conjunct survives push-down (no label predicates) and the
        // source chain has no join boundary that could drop conjuncts, the
        // scan below already applied the whole predicate — skip re-checking
        // it per row.
        let prefiltered = self.source_is_join_free(&q.from)?
            && q.predicate
                .push_down(&|c| src_cols.iter().any(|n| n == c).then(|| c.to_string()))
                == q.predicate;
        let mut selected: Vec<ScanRow> = Vec::new();
        self.stream_source(&q.from, &Label::empty(), &q.predicate, &mut |r| {
            if let Some(e) = exact {
                if &r.label != e {
                    return Ok(true);
                }
            }
            if !prefiltered && !filter.matches(&r.values, &r.label) {
                return Ok(true);
            }
            selected.push(r);
            Ok(stop_at.is_none_or(|limit| selected.len() < limit))
        })?;
        if let Some((idx, order)) = order_idx {
            selected.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                match order {
                    Order::Asc => o,
                    Order::Desc => o.reverse(),
                }
            });
        }
        if let Some(limit) = q.limit {
            selected.truncate(limit);
        }
        let columns = Arc::new(out_columns);
        let rows = selected
            .into_iter()
            .map(|r| {
                let values = match &projector {
                    None => r.values,
                    Some(idx) => idx.iter().map(|i| r.values[*i].clone()).collect(),
                };
                Row {
                    columns: columns.clone(),
                    label: r.label,
                    values,
                }
            })
            .collect();
        Ok(ResultSet::new(rows))
    }

    /// Executes a two-way join query.
    pub fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = (|| {
            let layout = self.join_layout(join)?;
            let columns = Arc::new(layout.out);
            let mut rows = Vec::new();
            self.stream_join(join, &Label::empty(), &Predicate::True, &mut |r| {
                rows.push(Row {
                    columns: columns.clone(),
                    label: r.label,
                    values: r.values,
                });
                Ok(true)
            })?;
            Ok(ResultSet::new(rows))
        })();
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    /// Executes an aggregate query.
    pub fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.aggregate_inner(agg);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn aggregate_inner(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        /// Running state for one aggregate within one group.
        #[derive(Default, Clone)]
        struct Acc {
            rows: u64,
            sum: f64,
            numeric: u64,
            min: Option<f64>,
            max: Option<f64>,
        }

        let src_cols = self.source_columns(&agg.from)?;
        let filter = CompiledPredicate::compile(&agg.predicate, &src_cols)?;
        let group_idx = match &agg.group_by {
            Some(c) => Some(col_index(&src_cols, c)?),
            None => None,
        };
        let agg_cols: Vec<Option<usize>> = agg
            .aggregates
            .iter()
            .map(|(f, c)| match f {
                AggFunc::Count => Ok(None),
                _ => col_index(&src_cols, c).map(Some),
            })
            .collect::<IfdbResult<_>>()?;

        // Groups accumulate in first-seen order; group counts are small, so
        // the linear key search is cheaper than hashing.
        let mut groups: Vec<(Datum, Label, Vec<Acc>)> = Vec::new();
        let n_aggs = agg.aggregates.len();
        self.stream_source(&agg.from, &Label::empty(), &agg.predicate, &mut |r| {
            if !filter.matches(&r.values, &r.label) {
                return Ok(true);
            }
            let key = match group_idx {
                Some(i) => r.values[i].clone(),
                None => Datum::Null,
            };
            let entry = match groups.iter_mut().position(|(k, _, _)| *k == key) {
                Some(pos) => &mut groups[pos],
                None => {
                    groups.push((key, Label::empty(), vec![Acc::default(); n_aggs]));
                    groups.last_mut().expect("just pushed")
                }
            };
            entry.1 = entry.1.union(&r.label);
            for (acc, col) in entry.2.iter_mut().zip(&agg_cols) {
                acc.rows += 1;
                if let Some(i) = col {
                    if let Some(x) = r.values[*i].as_float() {
                        acc.sum += x;
                        acc.numeric += 1;
                        acc.min = Some(acc.min.map_or(x, |m| m.min(x)));
                        acc.max = Some(acc.max.map_or(x, |m| m.max(x)));
                    }
                }
            }
            Ok(true)
        })?;
        if groups.is_empty() && group_idx.is_none() {
            groups.push((Datum::Null, Label::empty(), vec![Acc::default(); n_aggs]));
        }

        // Output columns.
        let mut out_columns = Vec::new();
        if let Some(c) = &agg.group_by {
            out_columns.push(c.clone());
        }
        for (f, c) in &agg.aggregates {
            out_columns.push(match f {
                AggFunc::Count => "count".to_string(),
                AggFunc::Sum => format!("sum_{c}"),
                AggFunc::Avg => format!("avg_{c}"),
                AggFunc::Min => format!("min_{c}"),
                AggFunc::Max => format!("max_{c}"),
            });
        }
        let columns = Arc::new(out_columns);
        let mut rows = Vec::new();
        for (key, label, accs) in groups {
            let mut values = Vec::new();
            if group_idx.is_some() {
                values.push(key);
            }
            for ((f, _), acc) in agg.aggregates.iter().zip(accs) {
                let datum = match f {
                    AggFunc::Count => Datum::Int(acc.rows as i64),
                    AggFunc::Sum => Datum::Float(acc.sum),
                    AggFunc::Avg => {
                        if acc.numeric == 0 {
                            Datum::Null
                        } else {
                            Datum::Float(acc.sum / acc.numeric as f64)
                        }
                    }
                    AggFunc::Min => acc.min.map(Datum::Float).unwrap_or(Datum::Null),
                    AggFunc::Max => acc.max.map(Datum::Float).unwrap_or(Datum::Null),
                };
                values.push(datum);
            }
            rows.push(Row {
                columns: columns.clone(),
                label,
                values,
            });
        }
        Ok(ResultSet::new(rows))
    }

    // ==================================================================
    // INSERT
    // ==================================================================

    /// Executes an INSERT. The new tuple's label is exactly the process label
    /// (Write Rule); the `DECLASSIFYING` clause covers foreign-key label
    /// differences per Section 5.2.2.
    pub fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        self.check_writable()?;
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.insert_inner(ins);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn insert_inner(&mut self, ins: &Insert) -> IfdbResult<()> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&ins.table)?
        };
        check_constraints_attached(&info)?;
        let difc = self.db.difc_enabled();
        let label = if difc {
            self.process.label().clone()
        } else {
            Label::empty()
        };
        info.schema.check_tuple(&ins.values)?;

        // Label constraints.
        if difc {
            for c in &info.label_constraints {
                c.check(&info.schema.name, &ins.values, &label)?;
            }
        }
        // Uniqueness with polyinstantiation: only conflicts *visible to this
        // process* are errors.
        self.check_unique(&info, &ins.values, None)?;
        // Foreign keys with the DECLASSIFYING clause.
        self.check_foreign_keys(&info, &ins.values, &label, &ins.declassifying)?;

        let (txn, _) = self.current_txn()?;
        self.db
            .inner
            .engine
            .insert(txn, info.id, label.to_array(), ins.values.clone())?;
        self.record_write(&info.schema.name, label.clone());
        self.fire_triggers(&info, TriggerEvent::Insert, Some(ins.values.clone()), None)?;
        Ok(())
    }

    fn check_unique(
        &mut self,
        info: &Arc<TableInfo>,
        values: &[Datum],
        exclude: Option<RowId>,
    ) -> IfdbResult<()> {
        let mut constraints: Vec<(String, Vec<String>)> = Vec::new();
        if !info.primary_key.is_empty() {
            constraints.push((
                format!("{}_pkey", info.schema.name),
                info.primary_key.clone(),
            ));
        }
        for u in &info.uniques {
            constraints.push((u.name.clone(), u.columns.clone()));
        }
        if constraints.is_empty() {
            return Ok(());
        }
        let columns = info.column_names();
        for (name, cols) in constraints {
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| col_index(&columns, c))
                .collect::<IfdbResult<_>>()?;
            // An equality hint over the key columns: the planner turns it
            // into an index lookup (always, for the primary key), replacing
            // the seed executor's full table scan per constraint.
            let hint = idx.iter().zip(&cols).fold(Predicate::True, |acc, (i, c)| {
                acc.and_compact(Predicate::Eq(c.clone(), values[*i].clone()))
            });
            let mut conflict = false;
            self.stream_base_table(info, &Label::empty(), &hint, &mut |r| {
                if let (Some((_, rid)), Some(ex)) = (r.row_id, exclude) {
                    if rid == ex {
                        return Ok(true);
                    }
                }
                if idx.iter().all(|i| r.values[*i] == values[*i]) {
                    conflict = true;
                    return Ok(false);
                }
                Ok(true)
            })?;
            if conflict {
                return Err(IfdbError::UniqueViolation { constraint: name });
            }
        }
        Ok(())
    }

    fn check_foreign_keys(
        &mut self,
        info: &Arc<TableInfo>,
        values: &[Datum],
        label: &Label,
        declassifying: &[ifdb_difc::TagId],
    ) -> IfdbResult<()> {
        if info.foreign_keys.is_empty() {
            return Ok(());
        }
        let difc = self.db.difc_enabled();
        let columns = info.column_names();
        let declassify_label = Label::from_tags(declassifying.iter().copied());
        let (_, snapshot) = self.current_txn()?;
        for fk in &info.foreign_keys {
            let key: Vec<Datum> = fk
                .columns
                .iter()
                .map(|c| col_index(&columns, c).map(|i| values[i].clone()))
                .collect::<IfdbResult<_>>()?;
            if key.iter().any(Datum::is_null) {
                continue;
            }
            let ref_info = {
                let catalog = self.db.inner.catalog.read();
                catalog.table(&fk.ref_table)?
            };
            let referenced_label =
                self.find_referenced(&snapshot, &ref_info, &fk.ref_columns, &key)?;
            let Some(referenced_label) = referenced_label else {
                return Err(IfdbError::ForeignKeyViolation {
                    constraint: fk.name.clone(),
                });
            };
            if !difc {
                continue;
            }
            // Foreign Key Rule: the inserter must have authority for, and
            // explicitly declassify, every tag in the symmetric difference of
            // the two labels.
            let symdiff = label.symmetric_difference(&referenced_label);
            if symdiff.is_empty() {
                continue;
            }
            let missing = symdiff.difference(&declassify_label);
            if !missing.is_empty() {
                return Err(IfdbError::DeclassifyingRequired {
                    constraint: fk.name.clone(),
                    missing,
                });
            }
            {
                let auth = self.db.inner.auth.read();
                for tag in symdiff.iter() {
                    if !auth.has_authority(self.process.principal(), tag) {
                        return Err(IfdbError::Difc(ifdb_difc::DifcError::NoAuthority {
                            principal: self.process.principal(),
                            tag,
                        }));
                    }
                }
            }
            self.db.audit().record(AuditEvent::DeclassifyingView {
                name: fk.name.clone(),
                tags: symdiff,
            });
        }
        Ok(())
    }

    /// Finds a tuple in `ref_info` whose `ref_columns` equal `key`,
    /// *irrespective of its label* (referential constraints hold across
    /// labels; the Foreign Key Rule governs what the requester must vouch
    /// for). Served by any index on exactly those columns. Shared by the
    /// INSERT foreign-key check and the DELETE restrict check.
    fn find_referenced(
        &mut self,
        snapshot: &Snapshot,
        ref_info: &Arc<TableInfo>,
        ref_columns: &[String],
        key: &[Datum],
    ) -> IfdbResult<Option<Label>> {
        let columns = ref_info.column_names();
        let idx: Vec<usize> = ref_columns
            .iter()
            .map(|c| col_index(&columns, c))
            .collect::<IfdbResult<_>>()?;
        if let Some(index_name) = ref_info.index_on(ref_columns) {
            let rows = self
                .db
                .inner
                .engine
                .index_lookup(ref_info.id, index_name, &key.to_vec())?;
            for rid in rows {
                if let Some(v) = self
                    .db
                    .inner
                    .engine
                    .fetch_visible(snapshot, ref_info.id, rid)?
                {
                    return Ok(Some(Label::from_array(&v.header.label)));
                }
            }
            return Ok(None);
        }
        let mut found = None;
        self.db
            .inner
            .engine
            .scan_visible(snapshot, ref_info.id, |_, v| {
                if idx.iter().zip(key).all(|(i, k)| &v.data[*i] == k) {
                    found = Some(Label::from_array(&v.header.label));
                    false
                } else {
                    true
                }
            })?;
        Ok(found)
    }

    // ==================================================================
    // UPDATE and DELETE
    // ==================================================================

    /// Streams the base-table rows matching `predicate` (fully evaluated,
    /// not just the push-down) into a vector. Writes happen after the scan
    /// completes, so mutation never runs under an active heap traversal.
    fn collect_matching(
        &mut self,
        info: &Arc<TableInfo>,
        predicate: &Predicate,
    ) -> IfdbResult<Vec<ScanRow>> {
        let columns = info.column_names();
        let filter = CompiledPredicate::compile(predicate, &columns)?;
        let mut rows = Vec::new();
        self.stream_base_table(info, &Label::empty(), predicate, &mut |r| {
            if filter.matches(&r.values, &r.label) {
                rows.push(r);
            }
            Ok(true)
        })?;
        Ok(rows)
    }

    /// Executes an UPDATE. Only tuples labeled exactly the process label are
    /// affected; visible lower-labeled tuples cause a Write Rule error, and
    /// higher-labeled tuples are invisible and untouched. Returns the number
    /// of updated rows.
    pub fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        self.check_writable()?;
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.update_inner(upd);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn update_inner(&mut self, upd: &Update) -> IfdbResult<usize> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&upd.table)?
        };
        check_constraints_attached(&info)?;
        let difc = self.db.difc_enabled();
        let process_label = self.process.label().clone();
        let columns = info.column_names();
        let set_idx: Vec<(usize, Datum)> = upd
            .set
            .iter()
            .map(|(c, v)| col_index(&columns, c).map(|i| (i, v.clone())))
            .collect::<IfdbResult<_>>()?;

        let matched = self.collect_matching(&info, &upd.predicate)?;
        let (txn, _) = self.current_txn()?;
        let mut updated = 0;
        for r in matched {
            // The scan ran with an empty declassify set, so `r.label` is the
            // tuple's stored label. The tuple is visible (its label is a
            // subset of ours) but unless it is exactly ours the Write Rule
            // forbids the update.
            if difc && r.label != process_label {
                return Err(IfdbError::WriteRuleViolation {
                    tuple_label: r.label,
                    process_label,
                });
            }
            let (table_id, rid) = r.row_id.expect("base-table scan provides row ids");
            let mut new_values = r.values.clone();
            for (i, v) in &set_idx {
                new_values[*i] = v.clone();
            }
            info.schema.check_tuple(&new_values)?;
            if difc {
                for c in &info.label_constraints {
                    c.check(&info.schema.name, &new_values, &process_label)?;
                }
            }
            let write_label = if difc {
                process_label.clone()
            } else {
                Label::empty()
            };
            self.db.inner.engine.update(
                txn,
                table_id,
                rid,
                write_label.to_array(),
                new_values.clone(),
            )?;
            self.record_write(&info.schema.name, write_label);
            self.fire_triggers(
                &info,
                TriggerEvent::Update,
                Some(new_values),
                Some(r.values),
            )?;
            updated += 1;
        }
        Ok(updated)
    }

    /// Executes a DELETE, subject to the Write Rule and to referential
    /// integrity (a delete fails while referencing rows exist — the channel
    /// this opens was vouched for by the referencing inserter's
    /// `DECLASSIFYING` clause, Section 5.2.2). Returns the number of deleted
    /// rows.
    pub fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        self.check_writable()?;
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.delete_inner(del);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn delete_inner(&mut self, del: &Delete) -> IfdbResult<usize> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&del.table)?
        };
        check_constraints_attached(&info)?;
        let difc = self.db.difc_enabled();
        let process_label = self.process.label().clone();
        let referencing = {
            let catalog = self.db.inner.catalog.read();
            // A recovered table whose DDL has not been re-run has no
            // foreign-key metadata, so it could reference this table without
            // appearing in `referencing` — RESTRICT enforcement is
            // incomplete until every recovered table is re-attached.
            if let Some(pending) = catalog.first_constraints_pending() {
                return Err(IfdbError::ConstraintsPending { table: pending });
            }
            catalog.referencing(&info.schema.name)
        };
        let columns = info.column_names();

        let matched = self.collect_matching(&info, &del.predicate)?;
        let (txn, snapshot) = self.current_txn()?;
        let mut deleted = 0;
        for r in matched {
            // As in UPDATE: empty declassify set, so `r.label` is the stored
            // label, and the Write Rule demands an exact match.
            if difc && r.label != process_label {
                return Err(IfdbError::WriteRuleViolation {
                    tuple_label: r.label,
                    process_label,
                });
            }
            // Referential integrity: no referencing rows may remain,
            // regardless of their labels.
            for (ref_info, fk) in &referencing {
                let key: Vec<Datum> = fk
                    .ref_columns
                    .iter()
                    .map(|c| col_index(&columns, c).map(|i| r.values[i].clone()))
                    .collect::<IfdbResult<_>>()?;
                if self
                    .find_referenced(&snapshot, ref_info, &fk.columns, &key)?
                    .is_some()
                {
                    return Err(IfdbError::RestrictViolation {
                        constraint: fk.name.clone(),
                    });
                }
            }
            let (table_id, rid) = r.row_id.expect("base-table scan provides row ids");
            self.db.inner.engine.delete(txn, table_id, rid)?;
            let write_label = if difc {
                process_label.clone()
            } else {
                Label::empty()
            };
            self.record_write(&info.schema.name, write_label);
            self.fire_triggers(&info, TriggerEvent::Delete, None, Some(r.values))?;
            deleted += 1;
        }
        Ok(deleted)
    }

    // ==================================================================
    // Triggers
    // ==================================================================

    fn fire_triggers(
        &mut self,
        info: &Arc<TableInfo>,
        event: TriggerEvent,
        new: Option<Vec<Datum>>,
        old: Option<Vec<Datum>>,
    ) -> IfdbResult<()> {
        let triggers = {
            let catalog = self.db.inner.catalog.read();
            catalog.triggers_for(&info.schema.name, event)
        };
        if triggers.is_empty() {
            return Ok(());
        }
        let inv = TriggerInvocation {
            table: info.schema.name.clone(),
            event,
            new,
            old,
            label: self.process.label().clone(),
        };
        for trigger in triggers {
            match trigger.timing {
                TriggerTiming::Immediate => self.run_trigger(&trigger, &inv)?,
                TriggerTiming::Deferred => {
                    if let Some(txn) = self.txn.as_mut() {
                        txn.deferred.push((trigger, inv.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    // ==================================================================
    // Reference executor (the seed implementation)
    // ==================================================================

    /// The seed executor's SELECT over a base table, retained verbatim as a
    /// reference implementation: it materializes the whole scan, resolves
    /// column names by per-row string search, and re-decides the declassify
    /// cover and Information Flow Rule for every tuple while holding the
    /// authority lock across the scan. Differential tests pin the streaming
    /// pipeline to it, and the `scan_hot` benchmark quantifies the gap.
    #[doc(hidden)]
    pub fn select_reference(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let armed = self.arm_budget();
        let r = self.select_reference_inner(q);
        let r = self.disarm_budget(armed, r);
        self.finish_statement(implicit, r)
    }

    fn select_reference_inner(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        let src = self.scan_source_reference(&q.from, &Label::empty(), &q.predicate)?;
        let mut selected: Vec<ScanRow> = Vec::new();
        for r in src.rows {
            if let Some(exact) = &q.exact_label {
                if &r.label != exact {
                    continue;
                }
            }
            if eval_predicate(&q.predicate, &src.columns, &r.values, &r.label)? {
                selected.push(r);
            }
        }
        if let Some((col, order)) = &q.order_by {
            let idx = col_index(&src.columns, col)?;
            selected.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                match order {
                    Order::Asc => o,
                    Order::Desc => o.reverse(),
                }
            });
        }
        if let Some(limit) = q.limit {
            selected.truncate(limit);
        }
        let (out_columns, projector): (Vec<String>, Option<Vec<usize>>) = match &q.columns {
            None => (src.columns.clone(), None),
            Some(cols) => {
                let idx: Vec<usize> = cols
                    .iter()
                    .map(|c| col_index(&src.columns, c))
                    .collect::<IfdbResult<_>>()?;
                (cols.clone(), Some(idx))
            }
        };
        let columns = Arc::new(out_columns);
        let rows = selected
            .into_iter()
            .map(|r| {
                let values = match &projector {
                    None => r.values,
                    Some(idx) => idx.iter().map(|i| r.values[*i].clone()).collect(),
                };
                Row {
                    columns: columns.clone(),
                    label: r.label,
                    values,
                }
            })
            .collect();
        Ok(ResultSet::new(rows))
    }

    /// The seed executor's recursive materializing scan over tables, views
    /// and joins.
    fn scan_source_reference(
        &mut self,
        from: &str,
        declassify: &Label,
        hint: &Predicate,
    ) -> IfdbResult<SourceRows> {
        let view = match self.resolve_source(from)? {
            ResolvedSource::Table(info) => {
                return self.scan_base_table_reference(&info, declassify, hint)
            }
            ResolvedSource::View(view) => view,
        };
        let nested_declassify = declassify.union(&view.declassifies);
        if view.is_declassifying() {
            self.db.audit().record(AuditEvent::DeclassifyingView {
                name: view.name.clone(),
                tags: view.declassifies.clone(),
            });
        }
        match &view.source {
            ViewSource::Select(sel) => {
                let src =
                    self.scan_source_reference(&sel.from, &nested_declassify, &sel.predicate)?;
                let mut rows = Vec::new();
                for r in src.rows {
                    if eval_predicate(&sel.predicate, &src.columns, &r.values, &r.label)? {
                        rows.push(r);
                    }
                }
                // Apply the view's projection, if any.
                let (columns, rows) = match &sel.columns {
                    None => (src.columns, rows),
                    Some(cols) => {
                        let idx: Vec<usize> = cols
                            .iter()
                            .map(|c| col_index(&src.columns, c))
                            .collect::<IfdbResult<_>>()?;
                        let projected = rows
                            .into_iter()
                            .map(|r| ScanRow {
                                row_id: None,
                                label: r.label.clone(),
                                values: idx.iter().map(|i| r.values[*i].clone()).collect(),
                            })
                            .collect();
                        (cols.clone(), projected)
                    }
                };
                Ok(SourceRows { columns, rows })
            }
            ViewSource::Join(join) => self.scan_join_reference(join, &nested_declassify),
        }
    }

    fn scan_join_reference(&mut self, join: &Join, declassify: &Label) -> IfdbResult<SourceRows> {
        let left = self.scan_source_reference(&join.left, declassify, &Predicate::True)?;
        let right = self.scan_source_reference(&join.right, declassify, &Predicate::True)?;
        let left_on = col_index(&left.columns, &join.on.0)?;
        let right_on = col_index(&right.columns, &join.on.1)?;

        // Output columns: left names as-is, right names prefixed on collision.
        let mut columns = left.columns.clone();
        let right_names: Vec<String> = right
            .columns
            .iter()
            .map(|c| {
                if left.columns.contains(c) {
                    format!("{}.{}", join.right, c)
                } else {
                    c.clone()
                }
            })
            .collect();
        columns.extend(right_names);

        // Hash the right side on its join column.
        let mut table: HashMap<Datum, Vec<&ScanRow>> = HashMap::new();
        for r in &right.rows {
            table.entry(r.values[right_on].clone()).or_default().push(r);
        }

        let right_width = right.columns.len();
        let mut rows = Vec::new();
        for l in &left.rows {
            let matches = table.get(&l.values[left_on]);
            match matches {
                Some(rs) if !rs.is_empty() => {
                    for r in rs {
                        let mut values = l.values.clone();
                        values.extend(r.values.iter().cloned());
                        let label = l.label.union(&r.label);
                        let row = ScanRow {
                            row_id: None,
                            label: label.clone(),
                            values,
                        };
                        if eval_predicate(&join.predicate, &columns, &row.values, &row.label)? {
                            rows.push(row);
                        }
                    }
                }
                _ => {
                    if join.kind == JoinKind::LeftOuter {
                        let mut values = l.values.clone();
                        values.extend(std::iter::repeat_n(Datum::Null, right_width));
                        let row = ScanRow {
                            row_id: None,
                            label: l.label.clone(),
                            values,
                        };
                        if eval_predicate(&join.predicate, &columns, &row.values, &row.label)? {
                            rows.push(row);
                        }
                    }
                }
            }
        }
        Ok(SourceRows { columns, rows })
    }

    fn scan_base_table_reference(
        &mut self,
        info: &Arc<TableInfo>,
        declassify: &Label,
        hint: &Predicate,
    ) -> IfdbResult<SourceRows> {
        let (_, snapshot) = self.current_txn()?;
        let process_label = self.process.label().clone();
        let difc = self.db.difc_enabled();
        let columns = info.column_names();
        let budget = self.budget.clone();

        // Per-tuple declassify-cover resolution under the authority read
        // lock, held across the entire scan — exactly the seed behavior the
        // streaming pipeline replaced.
        let auth = self.db.inner.auth.read();
        let declassify_covers = |tag: ifdb_difc::TagId| {
            declassify.contains(tag)
                || auth
                    .enclosing_compounds(tag)
                    .iter()
                    .any(|c| declassify.contains(*c))
        };

        let mut rows = Vec::new();
        let mut consider = |stored_label: Label, values: Vec<Datum>, rid: (TableId, RowId)| {
            let effective = if declassify.is_empty() {
                stored_label.clone()
            } else {
                Label::from_tags(stored_label.iter().filter(|t| !declassify_covers(*t)))
            };
            if difc && !effective.is_subset_of(&process_label) {
                return;
            }
            rows.push(ScanRow {
                row_id: Some(rid),
                label: effective,
                values,
            });
        };

        // The seed planner: the primary-key index only, equality on every
        // key column.
        let use_index = info.pk_index.as_ref().and_then(|idx| {
            let key: Option<Vec<Datum>> = info
                .primary_key
                .iter()
                .map(|c| hint.equality_on(c).cloned())
                .collect();
            key.map(|k| (idx.clone(), k))
        });

        if let Some((index_name, key)) = use_index {
            let row_ids = self
                .db
                .inner
                .engine
                .index_lookup(info.id, &index_name, &key)?;
            for rid in row_ids {
                if let Some(b) = &budget {
                    b.charge_row()?;
                }
                if let Some(version) = self
                    .db
                    .inner
                    .engine
                    .fetch_visible(&snapshot, info.id, rid)?
                {
                    consider(
                        Label::from_array(&version.header.label),
                        version.data,
                        (info.id, rid),
                    );
                }
            }
        } else {
            let mut scan_err: IfdbResult<()> = Ok(());
            self.db
                .inner
                .engine
                .scan_visible(&snapshot, info.id, |rid, version| {
                    if let Some(b) = &budget {
                        if let Err(e) = b.charge_row() {
                            scan_err = Err(e);
                            return false;
                        }
                    }
                    consider(
                        Label::from_array(&version.header.label),
                        version.data,
                        (info.id, rid),
                    );
                    true
                })?;
            scan_err?;
        }
        Ok(SourceRows { columns, rows })
    }
}
