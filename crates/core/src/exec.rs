//! Statement execution: Query by Label, constraints, triggers and views.
//!
//! This module implements the heart of the paper:
//!
//! * the **Label Confinement Rule** — a query runs on the subset of the
//!   database whose tuple labels are subsets of the process label;
//! * the **Write Rule** — inserts are labeled exactly with the process label,
//!   and updates/deletes may touch only tuples labeled exactly the process
//!   label (lower-labeled tuples cause an error, higher-labeled tuples are
//!   invisible and unaffected);
//! * **declassifying views**, which evaluate their underlying query with the
//!   view's bound authority and strip the declassified tags from result
//!   labels;
//! * **uniqueness constraints with polyinstantiation**, the **Foreign Key
//!   Rule** with the `DECLASSIFYING` clause, **label constraints**, and
//!   **triggers** (ordinary and stored authority closures, immediate and
//!   deferred).

use std::collections::HashMap;
use std::sync::Arc;

use ifdb_difc::audit::AuditEvent;
use ifdb_difc::Label;
use ifdb_storage::{Datum, RowId, Snapshot, TableId};

use crate::catalog::{TableInfo, TriggerEvent, TriggerInvocation, TriggerTiming, ViewSource};
use crate::error::{IfdbError, IfdbResult};
use crate::query::{AggFunc, Aggregate, Delete, Insert, Join, JoinKind, Order, Predicate, Select, Update};
use crate::row::{ResultSet, Row};
use crate::session::Session;

/// An intermediate row produced by a scan, before projection.
#[derive(Debug, Clone)]
pub(crate) struct ScanRow {
    /// Physical location, when the row comes directly from a base table.
    pub(crate) row_id: Option<(TableId, RowId)>,
    /// The stored (original) label of the tuple.
    pub(crate) stored_label: Label,
    /// The effective label after any declassifying views were applied.
    pub(crate) label: Label,
    /// The values.
    pub(crate) values: Vec<Datum>,
}

/// The rows and column names produced by scanning a table, view, or join.
#[derive(Debug, Clone)]
pub(crate) struct SourceRows {
    pub(crate) columns: Vec<String>,
    pub(crate) rows: Vec<ScanRow>,
}

fn col_index(columns: &[String], name: &str) -> IfdbResult<usize> {
    columns
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| IfdbError::UnknownColumn(name.to_string()))
}

/// Evaluates a predicate against a row.
fn eval_predicate(
    pred: &Predicate,
    columns: &[String],
    values: &[Datum],
    label: &Label,
) -> IfdbResult<bool> {
    let cmp = |col: &str, val: &Datum| -> IfdbResult<Option<std::cmp::Ordering>> {
        let idx = col_index(columns, col)?;
        Ok(values[idx].compare(val))
    };
    Ok(match pred {
        Predicate::True => true,
        Predicate::Eq(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Equal),
        Predicate::Ne(c, v) => {
            let o = cmp(c, v)?;
            o.is_some() && o != Some(std::cmp::Ordering::Equal)
        }
        Predicate::Lt(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Less),
        Predicate::Le(c, v) => matches!(
            cmp(c, v)?,
            Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
        ),
        Predicate::Gt(c, v) => cmp(c, v)? == Some(std::cmp::Ordering::Greater),
        Predicate::Ge(c, v) => matches!(
            cmp(c, v)?,
            Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
        ),
        Predicate::IsNull(c) => values[col_index(columns, c)?].is_null(),
        Predicate::IsNotNull(c) => !values[col_index(columns, c)?].is_null(),
        Predicate::And(a, b) => {
            eval_predicate(a, columns, values, label)? && eval_predicate(b, columns, values, label)?
        }
        Predicate::Or(a, b) => {
            eval_predicate(a, columns, values, label)? || eval_predicate(b, columns, values, label)?
        }
        Predicate::Not(a) => !eval_predicate(a, columns, values, label)?,
        Predicate::LabelContains(tag) => label.contains(*tag),
        Predicate::LabelEquals(l) => label == l,
    })
}

impl Session {
    // ==================================================================
    // Scanning tables, views and joins
    // ==================================================================

    /// Scans a table or view, applying Query by Label confinement with the
    /// accumulated set of tags that enclosing declassifying views may remove.
    pub(crate) fn scan_source(
        &mut self,
        from: &str,
        declassify: &Label,
        hint: &Predicate,
    ) -> IfdbResult<SourceRows> {
        let (table_info, view_def) = {
            let catalog = self.db.inner.catalog.read();
            if catalog.has_table(from) {
                (Some(catalog.table(from)?), None)
            } else if catalog.has_view(from) {
                (None, Some(catalog.view(from)?))
            } else {
                return Err(IfdbError::UnknownTable(from.to_string()));
            }
        };
        if let Some(info) = table_info {
            return self.scan_base_table(&info, declassify, hint);
        }
        let view = view_def.expect("either table or view");
        let nested_declassify = declassify.union(&view.declassifies);
        if view.is_declassifying() {
            self.db.audit().record(AuditEvent::DeclassifyingView {
                name: view.name.clone(),
                tags: view.declassifies.clone(),
            });
        }
        match &view.source {
            ViewSource::Select(sel) => {
                let src = self.scan_source(&sel.from, &nested_declassify, &sel.predicate)?;
                let mut rows = Vec::new();
                for r in src.rows {
                    if eval_predicate(&sel.predicate, &src.columns, &r.values, &r.label)? {
                        rows.push(r);
                    }
                }
                // Apply the view's projection, if any.
                let (columns, rows) = match &sel.columns {
                    None => (src.columns, rows),
                    Some(cols) => {
                        let idx: Vec<usize> = cols
                            .iter()
                            .map(|c| col_index(&src.columns, c))
                            .collect::<IfdbResult<_>>()?;
                        let projected = rows
                            .into_iter()
                            .map(|r| ScanRow {
                                row_id: None,
                                stored_label: r.stored_label.clone(),
                                label: r.label.clone(),
                                values: idx.iter().map(|i| r.values[*i].clone()).collect(),
                            })
                            .collect();
                        (cols.clone(), projected)
                    }
                };
                Ok(SourceRows { columns, rows })
            }
            ViewSource::Join(join) => self.scan_join(join, &nested_declassify),
        }
    }

    fn scan_base_table(
        &mut self,
        info: &Arc<TableInfo>,
        declassify: &Label,
        hint: &Predicate,
    ) -> IfdbResult<SourceRows> {
        let (_, snapshot) = self.current_txn()?;
        let process_label = self.process.label().clone();
        let difc = self.db.difc_enabled();
        let columns: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();

        // A declassifying view that declassifies a *compound* tag covers every
        // member of the compound (the PCMembers view holds authority for
        // all_contacts and thereby declassifies each user's contact tag).
        let auth = self.db.inner.auth.read();
        let declassify_covers = |tag: ifdb_difc::TagId| {
            declassify.contains(tag)
                || auth
                    .enclosing_compounds(tag)
                    .iter()
                    .any(|c| declassify.contains(*c))
        };

        let mut rows = Vec::new();
        let mut consider = |stored_label: Label, values: Vec<Datum>, rid: (TableId, RowId)| {
            let effective = if declassify.is_empty() {
                stored_label.clone()
            } else {
                Label::from_tags(stored_label.iter().filter(|t| !declassify_covers(*t)))
            };
            if difc && !effective.is_subset_of(&process_label) {
                return;
            }
            rows.push(ScanRow {
                row_id: Some(rid),
                stored_label,
                label: effective,
                values,
            });
        };

        // Planner: use the primary-key index when the predicate pins every
        // key column by equality.
        let use_index = info.pk_index.as_ref().and_then(|idx| {
            let key: Option<Vec<Datum>> = info
                .primary_key
                .iter()
                .map(|c| hint.equality_on(c).cloned())
                .collect();
            key.map(|k| (idx.clone(), k))
        });

        if let Some((index_name, key)) = use_index {
            let row_ids = self
                .db
                .inner
                .engine
                .index_lookup(info.id, &index_name, &key)?;
            for rid in row_ids {
                if let Some(version) = self
                    .db
                    .inner
                    .engine
                    .fetch_visible(&snapshot, info.id, rid)?
                {
                    consider(
                        Label::from_array(&version.header.label),
                        version.data,
                        (info.id, rid),
                    );
                }
            }
        } else {
            self.db
                .inner
                .engine
                .scan_visible(&snapshot, info.id, |rid, version| {
                    consider(
                        Label::from_array(&version.header.label),
                        version.data,
                        (info.id, rid),
                    );
                    true
                })?;
        }
        Ok(SourceRows { columns, rows })
    }

    fn scan_join(&mut self, join: &Join, declassify: &Label) -> IfdbResult<SourceRows> {
        let left = self.scan_source(&join.left, declassify, &Predicate::True)?;
        let right = self.scan_source(&join.right, declassify, &Predicate::True)?;
        let left_on = col_index(&left.columns, &join.on.0)?;
        let right_on = col_index(&right.columns, &join.on.1)?;

        // Output columns: left names as-is, right names prefixed on collision.
        let mut columns = left.columns.clone();
        let right_names: Vec<String> = right
            .columns
            .iter()
            .map(|c| {
                if left.columns.contains(c) {
                    format!("{}.{}", join.right, c)
                } else {
                    c.clone()
                }
            })
            .collect();
        columns.extend(right_names);

        // Hash the right side on its join column.
        let mut table: HashMap<Datum, Vec<&ScanRow>> = HashMap::new();
        for r in &right.rows {
            table.entry(r.values[right_on].clone()).or_default().push(r);
        }

        let right_width = right.columns.len();
        let mut rows = Vec::new();
        for l in &left.rows {
            let matches = table.get(&l.values[left_on]);
            match matches {
                Some(rs) if !rs.is_empty() => {
                    for r in rs {
                        let mut values = l.values.clone();
                        values.extend(r.values.iter().cloned());
                        let label = l.label.union(&r.label);
                        let row = ScanRow {
                            row_id: None,
                            stored_label: l.stored_label.union(&r.stored_label),
                            label: label.clone(),
                            values,
                        };
                        if eval_predicate(&join.predicate, &columns, &row.values, &row.label)? {
                            rows.push(row);
                        }
                    }
                }
                _ => {
                    if join.kind == JoinKind::LeftOuter {
                        let mut values = l.values.clone();
                        values.extend(std::iter::repeat_n(Datum::Null, right_width));
                        let row = ScanRow {
                            row_id: None,
                            stored_label: l.stored_label.clone(),
                            label: l.label.clone(),
                            values,
                        };
                        if eval_predicate(&join.predicate, &columns, &row.values, &row.label)? {
                            rows.push(row);
                        }
                    }
                }
            }
        }
        Ok(SourceRows { columns, rows })
    }

    // ==================================================================
    // SELECT
    // ==================================================================

    /// Executes a single-source SELECT.
    pub fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let r = self.select_inner(q);
        self.finish_statement(implicit, r)
    }

    fn select_inner(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        let src = self.scan_source(&q.from, &Label::empty(), &q.predicate)?;
        let mut selected: Vec<ScanRow> = Vec::new();
        for r in src.rows {
            if let Some(exact) = &q.exact_label {
                if &r.label != exact {
                    continue;
                }
            }
            if eval_predicate(&q.predicate, &src.columns, &r.values, &r.label)? {
                selected.push(r);
            }
        }
        if let Some((col, order)) = &q.order_by {
            let idx = col_index(&src.columns, col)?;
            selected.sort_by(|a, b| {
                let o = a.values[idx].cmp(&b.values[idx]);
                match order {
                    Order::Asc => o,
                    Order::Desc => o.reverse(),
                }
            });
        }
        if let Some(limit) = q.limit {
            selected.truncate(limit);
        }
        let (out_columns, projector): (Vec<String>, Option<Vec<usize>>) = match &q.columns {
            None => (src.columns.clone(), None),
            Some(cols) => {
                let idx: Vec<usize> = cols
                    .iter()
                    .map(|c| col_index(&src.columns, c))
                    .collect::<IfdbResult<_>>()?;
                (cols.clone(), Some(idx))
            }
        };
        let columns = Arc::new(out_columns);
        let rows = selected
            .into_iter()
            .map(|r| {
                let values = match &projector {
                    None => r.values,
                    Some(idx) => idx.iter().map(|i| r.values[*i].clone()).collect(),
                };
                Row {
                    columns: columns.clone(),
                    label: r.label,
                    values,
                }
            })
            .collect();
        Ok(ResultSet::new(rows))
    }

    /// Executes a two-way join query.
    pub fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let r = (|| {
            let src = self.scan_join(join, &Label::empty())?;
            let columns = Arc::new(src.columns);
            Ok(ResultSet::new(
                src.rows
                    .into_iter()
                    .map(|r| Row {
                        columns: columns.clone(),
                        label: r.label,
                        values: r.values,
                    })
                    .collect(),
            ))
        })();
        self.finish_statement(implicit, r)
    }

    /// Executes an aggregate query.
    pub fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        let implicit = self.ensure_txn()?;
        let r = self.aggregate_inner(agg);
        self.finish_statement(implicit, r)
    }

    fn aggregate_inner(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        let src = self.scan_source(&agg.from, &Label::empty(), &agg.predicate)?;
        let mut filtered = Vec::new();
        for r in src.rows {
            if eval_predicate(&agg.predicate, &src.columns, &r.values, &r.label)? {
                filtered.push(r);
            }
        }
        // Group.
        let group_idx = match &agg.group_by {
            Some(c) => Some(col_index(&src.columns, c)?),
            None => None,
        };
        let mut groups: Vec<(Datum, Vec<&ScanRow>)> = Vec::new();
        for r in &filtered {
            let key = match group_idx {
                Some(i) => r.values[i].clone(),
                None => Datum::Null,
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(r),
                None => groups.push((key, vec![r])),
            }
        }
        if groups.is_empty() && group_idx.is_none() {
            groups.push((Datum::Null, Vec::new()));
        }
        // Output columns.
        let mut out_columns = Vec::new();
        if let Some(c) = &agg.group_by {
            out_columns.push(c.clone());
        }
        for (f, c) in &agg.aggregates {
            out_columns.push(match f {
                AggFunc::Count => "count".to_string(),
                AggFunc::Sum => format!("sum_{c}"),
                AggFunc::Avg => format!("avg_{c}"),
                AggFunc::Min => format!("min_{c}"),
                AggFunc::Max => format!("max_{c}"),
            });
        }
        let columns = Arc::new(out_columns);
        let mut rows = Vec::new();
        for (key, members) in groups {
            let mut values = Vec::new();
            if group_idx.is_some() {
                values.push(key);
            }
            let label = members
                .iter()
                .fold(Label::empty(), |acc, r| acc.union(&r.label));
            for (f, c) in &agg.aggregates {
                let datum = match f {
                    AggFunc::Count => Datum::Int(members.len() as i64),
                    _ => {
                        let idx = col_index(&src.columns, c)?;
                        let nums: Vec<f64> = members
                            .iter()
                            .filter_map(|r| r.values[idx].as_float())
                            .collect();
                        match f {
                            AggFunc::Sum => Datum::Float(nums.iter().sum()),
                            AggFunc::Avg => {
                                if nums.is_empty() {
                                    Datum::Null
                                } else {
                                    Datum::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                                }
                            }
                            AggFunc::Min => nums
                                .iter()
                                .copied()
                                .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.min(x))))
                                .map(Datum::Float)
                                .unwrap_or(Datum::Null),
                            AggFunc::Max => nums
                                .iter()
                                .copied()
                                .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x))))
                                .map(Datum::Float)
                                .unwrap_or(Datum::Null),
                            AggFunc::Count => unreachable!(),
                        }
                    }
                };
                values.push(datum);
            }
            rows.push(Row {
                columns: columns.clone(),
                label,
                values,
            });
        }
        Ok(ResultSet::new(rows))
    }

    // ==================================================================
    // INSERT
    // ==================================================================

    /// Executes an INSERT. The new tuple's label is exactly the process label
    /// (Write Rule); the `DECLASSIFYING` clause covers foreign-key label
    /// differences per Section 5.2.2.
    pub fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        let implicit = self.ensure_txn()?;
        let r = self.insert_inner(ins);
        self.finish_statement(implicit, r)
    }

    fn insert_inner(&mut self, ins: &Insert) -> IfdbResult<()> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&ins.table)?
        };
        let difc = self.db.difc_enabled();
        let label = if difc {
            self.process.label().clone()
        } else {
            Label::empty()
        };
        info.schema.check_tuple(&ins.values)?;

        // Label constraints.
        if difc {
            for c in &info.label_constraints {
                c.check(&info.schema.name, &ins.values, &label)?;
            }
        }
        // Uniqueness with polyinstantiation: only conflicts *visible to this
        // process* are errors.
        self.check_unique(&info, &ins.values, None)?;
        // Foreign keys with the DECLASSIFYING clause.
        self.check_foreign_keys(&info, &ins.values, &label, &ins.declassifying)?;

        let (txn, _) = self.current_txn()?;
        self.db
            .inner
            .engine
            .insert(txn, info.id, label.to_array(), ins.values.clone())?;
        self.record_write(&info.schema.name, label.clone());
        self.fire_triggers(&info, TriggerEvent::Insert, Some(ins.values.clone()), None)?;
        Ok(())
    }

    fn check_unique(
        &mut self,
        info: &Arc<TableInfo>,
        values: &[Datum],
        exclude: Option<RowId>,
    ) -> IfdbResult<()> {
        let mut constraints: Vec<(String, Vec<String>)> = Vec::new();
        if !info.primary_key.is_empty() {
            constraints.push((format!("{}_pkey", info.schema.name), info.primary_key.clone()));
        }
        for u in &info.uniques {
            constraints.push((u.name.clone(), u.columns.clone()));
        }
        if constraints.is_empty() {
            return Ok(());
        }
        let columns: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();
        let existing = self.scan_base_table(info, &Label::empty(), &Predicate::True)?;
        for (name, cols) in constraints {
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| col_index(&columns, c))
                .collect::<IfdbResult<_>>()?;
            let key: Vec<&Datum> = idx.iter().map(|i| &values[*i]).collect();
            for r in &existing.rows {
                if let (Some((_, rid)), Some(ex)) = (r.row_id, exclude) {
                    if rid == ex {
                        continue;
                    }
                }
                if idx.iter().zip(&key).all(|(i, k)| &&r.values[*i] == k) {
                    return Err(IfdbError::UniqueViolation { constraint: name });
                }
            }
        }
        Ok(())
    }

    fn check_foreign_keys(
        &mut self,
        info: &Arc<TableInfo>,
        values: &[Datum],
        label: &Label,
        declassifying: &[ifdb_difc::TagId],
    ) -> IfdbResult<()> {
        if info.foreign_keys.is_empty() {
            return Ok(());
        }
        let difc = self.db.difc_enabled();
        let columns: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();
        let declassify_label = Label::from_tags(declassifying.iter().copied());
        let (_, snapshot) = self.current_txn()?;
        for fk in &info.foreign_keys {
            let key: Vec<Datum> = fk
                .columns
                .iter()
                .map(|c| col_index(&columns, c).map(|i| values[i].clone()))
                .collect::<IfdbResult<_>>()?;
            if key.iter().any(Datum::is_null) {
                continue;
            }
            let ref_info = {
                let catalog = self.db.inner.catalog.read();
                catalog.table(&fk.ref_table)?
            };
            let referenced_label =
                self.find_referenced(&snapshot, &ref_info, &fk.ref_columns, &key)?;
            let Some(referenced_label) = referenced_label else {
                return Err(IfdbError::ForeignKeyViolation {
                    constraint: fk.name.clone(),
                });
            };
            if !difc {
                continue;
            }
            // Foreign Key Rule: the inserter must have authority for, and
            // explicitly declassify, every tag in the symmetric difference of
            // the two labels.
            let symdiff = label.symmetric_difference(&referenced_label);
            if symdiff.is_empty() {
                continue;
            }
            let missing = symdiff.difference(&declassify_label);
            if !missing.is_empty() {
                return Err(IfdbError::DeclassifyingRequired {
                    constraint: fk.name.clone(),
                    missing,
                });
            }
            {
                let auth = self.db.inner.auth.read();
                for tag in symdiff.iter() {
                    if !auth.has_authority(self.process.principal(), tag) {
                        return Err(IfdbError::Difc(ifdb_difc::DifcError::NoAuthority {
                            principal: self.process.principal(),
                            tag,
                        }));
                    }
                }
            }
            self.db.audit().record(AuditEvent::DeclassifyingView {
                name: fk.name.clone(),
                tags: symdiff,
            });
        }
        Ok(())
    }

    /// Finds a tuple in `ref_info` whose `ref_columns` equal `key`,
    /// *irrespective of its label* (the constraint must hold across labels;
    /// the Foreign Key Rule governs what the requester must vouch for).
    fn find_referenced(
        &mut self,
        snapshot: &Snapshot,
        ref_info: &Arc<TableInfo>,
        ref_columns: &[String],
        key: &[Datum],
    ) -> IfdbResult<Option<Label>> {
        let columns: Vec<String> = ref_info
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let idx: Vec<usize> = ref_columns
            .iter()
            .map(|c| col_index(&columns, c))
            .collect::<IfdbResult<_>>()?;
        // Use the PK index when the FK targets the primary key.
        if let (Some(index_name), true) = (
            ref_info.pk_index.as_ref(),
            ref_columns == ref_info.primary_key.as_slice(),
        ) {
            let rows = self
                .db
                .inner
                .engine
                .index_lookup(ref_info.id, index_name, &key.to_vec())?;
            for rid in rows {
                if let Some(v) = self
                    .db
                    .inner
                    .engine
                    .fetch_visible(snapshot, ref_info.id, rid)?
                {
                    return Ok(Some(Label::from_array(&v.header.label)));
                }
            }
            return Ok(None);
        }
        let mut found = None;
        self.db
            .inner
            .engine
            .scan_visible(snapshot, ref_info.id, |_, v| {
                if idx.iter().zip(key).all(|(i, k)| &v.data[*i] == k) {
                    found = Some(Label::from_array(&v.header.label));
                    false
                } else {
                    true
                }
            })?;
        Ok(found)
    }

    // ==================================================================
    // UPDATE and DELETE
    // ==================================================================

    /// Executes an UPDATE. Only tuples labeled exactly the process label are
    /// affected; visible lower-labeled tuples cause a Write Rule error, and
    /// higher-labeled tuples are invisible and untouched. Returns the number
    /// of updated rows.
    pub fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        let implicit = self.ensure_txn()?;
        let r = self.update_inner(upd);
        self.finish_statement(implicit, r)
    }

    fn update_inner(&mut self, upd: &Update) -> IfdbResult<usize> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&upd.table)?
        };
        let difc = self.db.difc_enabled();
        let process_label = self.process.label().clone();
        let columns: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();
        let set_idx: Vec<(usize, Datum)> = upd
            .set
            .iter()
            .map(|(c, v)| col_index(&columns, c).map(|i| (i, v.clone())))
            .collect::<IfdbResult<_>>()?;

        let candidates = self.scan_base_table(&info, &Label::empty(), &upd.predicate)?;
        let mut matched = Vec::new();
        for r in candidates.rows {
            if eval_predicate(&upd.predicate, &candidates.columns, &r.values, &r.label)? {
                matched.push(r);
            }
        }
        let (txn, _) = self.current_txn()?;
        let mut updated = 0;
        for r in matched {
            if difc && r.stored_label != process_label {
                // The tuple is visible (its label is a subset of ours) but
                // not exactly ours: the Write Rule forbids the update.
                return Err(IfdbError::WriteRuleViolation {
                    tuple_label: r.stored_label,
                    process_label,
                });
            }
            let (table_id, rid) = r.row_id.expect("base-table scan provides row ids");
            let mut new_values = r.values.clone();
            for (i, v) in &set_idx {
                new_values[*i] = v.clone();
            }
            info.schema.check_tuple(&new_values)?;
            if difc {
                for c in &info.label_constraints {
                    c.check(&info.schema.name, &new_values, &process_label)?;
                }
            }
            let write_label = if difc {
                process_label.clone()
            } else {
                Label::empty()
            };
            self.db
                .inner
                .engine
                .update(txn, table_id, rid, write_label.to_array(), new_values.clone())?;
            self.record_write(&info.schema.name, write_label);
            self.fire_triggers(
                &info,
                TriggerEvent::Update,
                Some(new_values),
                Some(r.values),
            )?;
            updated += 1;
        }
        Ok(updated)
    }

    /// Executes a DELETE, subject to the Write Rule and to referential
    /// integrity (a delete fails while referencing rows exist — the channel
    /// this opens was vouched for by the referencing inserter's
    /// `DECLASSIFYING` clause, Section 5.2.2). Returns the number of deleted
    /// rows.
    pub fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        let implicit = self.ensure_txn()?;
        let r = self.delete_inner(del);
        self.finish_statement(implicit, r)
    }

    fn delete_inner(&mut self, del: &Delete) -> IfdbResult<usize> {
        let info = {
            let catalog = self.db.inner.catalog.read();
            catalog.table(&del.table)?
        };
        let difc = self.db.difc_enabled();
        let process_label = self.process.label().clone();
        let referencing = {
            let catalog = self.db.inner.catalog.read();
            catalog.referencing(&info.schema.name)
        };
        let columns: Vec<String> = info.schema.columns.iter().map(|c| c.name.clone()).collect();

        let candidates = self.scan_base_table(&info, &Label::empty(), &del.predicate)?;
        let mut matched = Vec::new();
        for r in candidates.rows {
            if eval_predicate(&del.predicate, &candidates.columns, &r.values, &r.label)? {
                matched.push(r);
            }
        }
        let (txn, snapshot) = self.current_txn()?;
        let mut deleted = 0;
        for r in matched {
            if difc && r.stored_label != process_label {
                return Err(IfdbError::WriteRuleViolation {
                    tuple_label: r.stored_label,
                    process_label,
                });
            }
            // Referential integrity: no referencing rows may remain,
            // regardless of their labels.
            for (ref_info, fk) in &referencing {
                let key: Vec<Datum> = fk
                    .ref_columns
                    .iter()
                    .map(|c| col_index(&columns, c).map(|i| r.values[i].clone()))
                    .collect::<IfdbResult<_>>()?;
                let ref_cols: Vec<String> = ref_info
                    .schema
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                let idx: Vec<usize> = fk
                    .columns
                    .iter()
                    .map(|c| col_index(&ref_cols, c))
                    .collect::<IfdbResult<_>>()?;
                let mut exists = false;
                self.db
                    .inner
                    .engine
                    .scan_visible(&snapshot, ref_info.id, |_, v| {
                        if idx.iter().zip(&key).all(|(i, k)| &v.data[*i] == k) {
                            exists = true;
                            false
                        } else {
                            true
                        }
                    })?;
                if exists {
                    return Err(IfdbError::RestrictViolation {
                        constraint: fk.name.clone(),
                    });
                }
            }
            let (table_id, rid) = r.row_id.expect("base-table scan provides row ids");
            self.db.inner.engine.delete(txn, table_id, rid)?;
            let write_label = if difc {
                process_label.clone()
            } else {
                Label::empty()
            };
            self.record_write(&info.schema.name, write_label);
            self.fire_triggers(&info, TriggerEvent::Delete, None, Some(r.values))?;
            deleted += 1;
        }
        Ok(deleted)
    }

    // ==================================================================
    // Triggers
    // ==================================================================

    fn fire_triggers(
        &mut self,
        info: &Arc<TableInfo>,
        event: TriggerEvent,
        new: Option<Vec<Datum>>,
        old: Option<Vec<Datum>>,
    ) -> IfdbResult<()> {
        let triggers = {
            let catalog = self.db.inner.catalog.read();
            catalog.triggers_for(&info.schema.name, event)
        };
        if triggers.is_empty() {
            return Ok(());
        }
        let inv = TriggerInvocation {
            table: info.schema.name.clone(),
            event,
            new,
            old,
            label: self.process.label().clone(),
        };
        for trigger in triggers {
            match trigger.timing {
                TriggerTiming::Immediate => self.run_trigger(&trigger, &inv)?,
                TriggerTiming::Deferred => {
                    if let Some(txn) = self.txn.as_mut() {
                        txn.deferred.push((trigger, inv.clone()));
                    }
                }
            }
        }
        Ok(())
    }
}
