//! The statement-level session API, abstracted over transports.
//!
//! In the paper, application code never links the DBMS: PHP/Python processes
//! speak a wire protocol to the IFDB server, and the platform runtime tracks
//! the process label on both ends. This module defines the surface that is
//! transport-independent: [`SessionApi`] is everything a request script or a
//! workload driver may do with a database session, and [`Statement`] is the
//! closed statement form carried by the `ifdb-client`/`ifdb-server` wire
//! protocol.
//!
//! [`Session`] implements [`SessionApi`] directly (the in-process embedding),
//! and `ifdb_client::Connection` implements it over TCP, so application code
//! written against `&mut dyn SessionApi` runs unchanged in either deployment.

use ifdb_storage::Datum;

use ifdb_difc::{Label, PrincipalId, TagId};

use crate::error::IfdbResult;
use crate::query::{Aggregate, Delete, Insert, Join, Select, Update};
use crate::row::ResultSet;
use crate::session::Session;

/// A closed (fully parameterized) statement: the unit of execution carried by
/// the wire protocol and accepted by [`Session::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A single-source SELECT.
    Select(Select),
    /// A two-way join query.
    Join(Join),
    /// An aggregate query.
    Aggregate(Aggregate),
    /// An INSERT.
    Insert(Insert),
    /// An UPDATE.
    Update(Update),
    /// A DELETE.
    Delete(Delete),
}

/// What executing a [`Statement`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// Rows, for queries.
    Rows(ResultSet),
    /// Number of affected rows, for DML (inserts report 1).
    Affected(usize),
}

impl StatementResult {
    /// The result's rows; empty for DML results.
    pub fn into_rows(self) -> ResultSet {
        match self {
            StatementResult::Rows(rs) => rs,
            StatementResult::Affected(_) => ResultSet::default(),
        }
    }

    /// The affected-row count; 0 for queries.
    pub fn affected(&self) -> usize {
        match self {
            StatementResult::Rows(_) => 0,
            StatementResult::Affected(n) => *n,
        }
    }
}

/// The operations a database session supports, independent of whether the
/// session is in-process ([`Session`]) or remote (`ifdb_client::Connection`).
///
/// The trait is object-safe: platform request scripts take
/// `&mut dyn SessionApi` so the same script body runs against either
/// transport.
pub trait SessionApi {
    /// Executes a single-source SELECT.
    fn select(&mut self, q: &Select) -> IfdbResult<ResultSet>;
    /// Executes a two-way join query.
    fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet>;
    /// Executes an aggregate query.
    fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet>;
    /// Inserts a row.
    fn insert(&mut self, ins: &Insert) -> IfdbResult<()>;
    /// Updates rows, returning how many were updated.
    fn update(&mut self, upd: &Update) -> IfdbResult<usize>;
    /// Deletes rows, returning how many were deleted.
    fn delete(&mut self, del: &Delete) -> IfdbResult<usize>;
    /// Starts an explicit transaction.
    fn begin(&mut self) -> IfdbResult<()>;
    /// Commits the current transaction.
    fn commit(&mut self) -> IfdbResult<()>;
    /// Aborts the current transaction.
    fn abort(&mut self) -> IfdbResult<()>;
    /// Returns `true` if an explicit transaction is open.
    fn in_transaction(&self) -> bool;
    /// Adds `tag` to the process label.
    fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()>;
    /// Raises the process label to its union with `other`.
    fn raise_label(&mut self, other: &Label) -> IfdbResult<()>;
    /// Removes `tag` from the process label (requires authority).
    fn declassify(&mut self, tag: TagId) -> IfdbResult<()>;
    /// Removes every tag of `tags` (requires authority for each).
    fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()>;
    /// Delegates authority for `tag` to `grantee`.
    fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()>;
    /// Calls a stored procedure (or stored authority closure) by name.
    fn call_procedure(&mut self, name: &str, args: &[Datum]) -> IfdbResult<ResultSet>;
    /// The acting principal.
    fn principal(&self) -> PrincipalId;
    /// The current process label. Returned by value: a remote session hands
    /// out its mirrored copy.
    fn current_label(&self) -> Label;
    /// Checks that the process may release information to an empty-labeled
    /// destination (the output gate's check).
    fn check_release_to_world(&self) -> IfdbResult<()>;

    /// Executes a closed [`Statement`].
    fn execute(&mut self, stmt: &Statement) -> IfdbResult<StatementResult> {
        match stmt {
            Statement::Select(q) => self.select(q).map(StatementResult::Rows),
            Statement::Join(j) => self.select_join(j).map(StatementResult::Rows),
            Statement::Aggregate(a) => self.select_aggregate(a).map(StatementResult::Rows),
            Statement::Insert(i) => self.insert(i).map(|()| StatementResult::Affected(1)),
            Statement::Update(u) => self.update(u).map(StatementResult::Affected),
            Statement::Delete(d) => self.delete(d).map(StatementResult::Affected),
        }
    }

    /// Executes a batch of statements in order, returning one result per
    /// statement; a failing statement fails its own slot without aborting
    /// the rest of the batch (within a transaction, the session's usual
    /// error rules still apply to later statements).
    ///
    /// The default runs the batch sequentially; network-backed sessions
    /// override it to **pipeline** the whole batch in one round trip.
    /// Statement order — and therefore label-flow order — is identical
    /// either way.
    fn execute_batch(&mut self, stmts: &[Statement]) -> Vec<IfdbResult<StatementResult>> {
        stmts.iter().map(|s| self.execute(s)).collect()
    }
}

impl SessionApi for Session {
    fn select(&mut self, q: &Select) -> IfdbResult<ResultSet> {
        Session::select(self, q)
    }
    fn select_join(&mut self, join: &Join) -> IfdbResult<ResultSet> {
        Session::select_join(self, join)
    }
    fn select_aggregate(&mut self, agg: &Aggregate) -> IfdbResult<ResultSet> {
        Session::select_aggregate(self, agg)
    }
    fn insert(&mut self, ins: &Insert) -> IfdbResult<()> {
        Session::insert(self, ins)
    }
    fn update(&mut self, upd: &Update) -> IfdbResult<usize> {
        Session::update(self, upd)
    }
    fn delete(&mut self, del: &Delete) -> IfdbResult<usize> {
        Session::delete(self, del)
    }
    fn begin(&mut self) -> IfdbResult<()> {
        Session::begin(self)
    }
    fn commit(&mut self) -> IfdbResult<()> {
        Session::commit(self)
    }
    fn abort(&mut self) -> IfdbResult<()> {
        Session::abort(self)
    }
    fn in_transaction(&self) -> bool {
        Session::in_transaction(self)
    }
    fn add_secrecy(&mut self, tag: TagId) -> IfdbResult<()> {
        Session::add_secrecy(self, tag)
    }
    fn raise_label(&mut self, other: &Label) -> IfdbResult<()> {
        Session::raise_label(self, other)
    }
    fn declassify(&mut self, tag: TagId) -> IfdbResult<()> {
        Session::declassify(self, tag)
    }
    fn declassify_all(&mut self, tags: &Label) -> IfdbResult<()> {
        Session::declassify_all(self, tags)
    }
    fn delegate(&mut self, grantee: PrincipalId, tag: TagId) -> IfdbResult<()> {
        Session::delegate(self, grantee, tag)
    }
    fn call_procedure(&mut self, name: &str, args: &[Datum]) -> IfdbResult<ResultSet> {
        Session::call_procedure(self, name, args)
    }
    fn principal(&self) -> PrincipalId {
        Session::principal(self)
    }
    fn current_label(&self) -> Label {
        Session::label(self).clone()
    }
    fn check_release_to_world(&self) -> IfdbResult<()> {
        Session::check_release_to_world(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::database::Database;
    use crate::query::Predicate;
    use ifdb_storage::DataType;

    fn db_with_table() -> Database {
        let db = Database::in_memory();
        db.create_table(
            TableDef::new("t")
                .column("id", DataType::Int)
                .column("v", DataType::Text)
                .primary_key(&["id"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn execute_dispatches_all_statement_kinds() {
        let db = db_with_table();
        let mut s = db.anonymous_session();
        let api: &mut dyn SessionApi = &mut s;
        let r = api
            .execute(&Statement::Insert(Insert::new(
                "t",
                vec![Datum::Int(1), Datum::from("a")],
            )))
            .unwrap();
        assert_eq!(r.affected(), 1);
        let r = api.execute(&Statement::Select(Select::star("t"))).unwrap();
        assert_eq!(r.into_rows().len(), 1);
        let r = api
            .execute(&Statement::Update(Update::new(
                "t",
                Predicate::Eq("id".into(), Datum::Int(1)),
                vec![("v", Datum::from("b"))],
            )))
            .unwrap();
        assert_eq!(r.affected(), 1);
        let r = api
            .execute(&Statement::Aggregate(Aggregate {
                from: "t".into(),
                predicate: Predicate::True,
                group_by: None,
                aggregates: vec![(crate::query::AggFunc::Count, "id".into())],
            }))
            .unwrap();
        assert_eq!(r.into_rows().len(), 1);
        let r = api
            .execute(&Statement::Delete(Delete::new("t", Predicate::True)))
            .unwrap();
        assert_eq!(r.affected(), 1);
    }

    #[test]
    fn dyn_session_runs_transactions_and_labels() {
        let db = db_with_table();
        let mut s = db.anonymous_session();
        let api: &mut dyn SessionApi = &mut s;
        assert!(!api.in_transaction());
        api.begin().unwrap();
        assert!(api.in_transaction());
        api.insert(&Insert::new("t", vec![Datum::Int(7), Datum::from("x")]))
            .unwrap();
        api.abort().unwrap();
        assert!(api.select(&Select::star("t")).unwrap().is_empty());
        assert!(api.current_label().is_empty());
        api.check_release_to_world().unwrap();
    }
}
