//! The [`Database`] handle: storage, authority state, catalog and sessions.

use std::path::PathBuf;
use std::sync::Arc;

use ifdb_difc::audit::{AuditEvent, AuditLog};
use ifdb_difc::authority::AuthorityState;
use ifdb_difc::principal::PrincipalKind;
use ifdb_difc::{Label, PrincipalId, TagId};
use ifdb_storage::{DurabilityConfig, StorageEngine, StorageKind, TableSchema};
use parking_lot::RwLock;

use crate::catalog::{
    Catalog, IndexSpec, StoredProcedure, TableDef, TableInfo, TriggerDef, ViewDef, ViewSource,
};
use crate::error::{IfdbError, IfdbResult};
use crate::qos::ExecutionConstraints;
use crate::session::Session;

/// Configuration for creating a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Where tables keep their pages.
    pub storage: StorageKind,
    /// Whether DIFC enforcement is enabled. With `false` the engine behaves
    /// like the unmodified PostgreSQL baseline of the paper's evaluation:
    /// labels are neither stored nor checked.
    pub difc_enabled: bool,
    /// Whether sessions default to the (stricter) serializable clearance
    /// rule of Section 5.1. The prototype in the paper runs snapshot
    /// isolation, which does not need the rule, so the default is `false`.
    pub serializable: bool,
    /// Seed for the authority state's id generator (deterministic tests).
    pub authority_seed: Option<u64>,
    /// Commit durability: no-sync (default), sync-per-commit, or group
    /// commit, plus the optional periodic-checkpoint policy. Only meaningful
    /// for on-disk storage.
    pub durability: DurabilityConfig,
    /// Default per-statement execution budgets applied to every new session
    /// (sessions may be tightened further via
    /// [`Session::set_execution_constraints`]). Unlimited by default.
    ///
    /// [`Session::set_execution_constraints`]: crate::session::Session::set_execution_constraints
    pub constraints: ExecutionConstraints,
    /// Whether security-relevant audit events (declassify, delegate/revoke,
    /// label raises, commit-label refusals, budget kills) are additionally
    /// appended to the storage engine's tamper-evident, WAL-carried audit
    /// chain. The in-memory [`AuditLog`] records regardless. On by default;
    /// turned off only to measure the append overhead.
    pub audit_chain: bool,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            storage: StorageKind::InMemory,
            difc_enabled: true,
            serializable: false,
            authority_seed: None,
            durability: DurabilityConfig::default(),
            constraints: ExecutionConstraints::default(),
            audit_chain: true,
        }
    }
}

impl DatabaseConfig {
    /// An in-memory IFDB instance.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// An in-memory instance with DIFC disabled (the "PostgreSQL" baseline).
    pub fn baseline() -> Self {
        DatabaseConfig {
            difc_enabled: false,
            ..Self::default()
        }
    }

    /// An on-disk instance with the given heap directory and buffer pool
    /// size (in pages).
    pub fn on_disk(dir: PathBuf, buffer_pages: usize) -> Self {
        DatabaseConfig {
            storage: StorageKind::OnDisk { dir, buffer_pages },
            ..Self::default()
        }
    }

    /// Fixes the authority-state PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.authority_seed = Some(seed);
        self
    }

    /// Enables or disables DIFC enforcement.
    pub fn with_difc(mut self, enabled: bool) -> Self {
        self.difc_enabled = enabled;
        self
    }

    /// Sets the commit-durability configuration (see [`DurabilityConfig`]).
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the default per-statement execution budgets.
    pub fn with_constraints(mut self, constraints: ExecutionConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Enables or disables the durable (WAL-carried) audit chain.
    pub fn with_audit_chain(mut self, enabled: bool) -> Self {
        self.audit_chain = enabled;
        self
    }
}

pub(crate) struct DbInner {
    pub(crate) engine: StorageEngine,
    pub(crate) auth: RwLock<AuthorityState>,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) audit: AuditLog,
    pub(crate) difc_enabled: bool,
    pub(crate) serializable: bool,
    /// Default execution budgets copied into every new session.
    pub(crate) constraints: ExecutionConstraints,
    /// Whether chain-worthy audit events are appended to the WAL-carried
    /// audit chain (the in-memory log always records).
    pub(crate) audit_chain: bool,
    /// `true` when this handle serves a log-shipping replica: sessions are
    /// read-only (writes fail with [`IfdbError::ReadOnlyReplica`]) and data
    /// arrives exclusively through the replication apply loop.
    pub(crate) read_only: std::sync::atomic::AtomicBool,
}

/// A handle to an IFDB database. Cloning the handle is cheap; all clones
/// refer to the same database.
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("difc_enabled", &self.inner.difc_enabled)
            .field("tables", &self.inner.catalog.read().table_names().len())
            .finish()
    }
}

/// Builder for [`Database`] handles: the single construction path behind
/// which the historical constructors ([`Database::new`], [`Database::open`],
/// [`Database::open_with_tables`], [`Database::replica_over`]) are thin
/// wrappers. One fluent chain covers storage kind, durability, DIFC and
/// serializable modes, the authority seed, QoS budgets, the audit chain,
/// recovery (`recover`), first-boot DDL, and replica mode:
///
/// ```
/// use ifdb::prelude::*;
/// use ifdb_storage::DataType;
///
/// let db = Database::builder()
///     .seed(0x1FDB)
///     .first_boot_ddl([TableDef::new("t")
///         .column("id", DataType::Int)
///         .primary_key(&["id"])])
///     .build()
///     .unwrap();
/// assert!(db.difc_enabled());
/// ```
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    config: DatabaseConfig,
    recover: bool,
    tables: Vec<TableDef>,
    replica_engine: Option<StorageEngine>,
}

impl DatabaseBuilder {
    /// Replaces the whole configuration at once (the historical
    /// [`DatabaseConfig`]-taking constructors funnel through this).
    pub fn config(mut self, config: DatabaseConfig) -> Self {
        self.config = config;
        self
    }

    /// In-memory storage (the default).
    pub fn in_memory(mut self) -> Self {
        self.config.storage = StorageKind::InMemory;
        self
    }

    /// On-disk storage with the given heap directory and buffer pool size
    /// (in pages).
    pub fn on_disk(mut self, dir: PathBuf, buffer_pages: usize) -> Self {
        self.config.storage = StorageKind::OnDisk { dir, buffer_pages };
        self
    }

    /// Fixes the authority-state PRNG seed (deterministic principal and tag
    /// ids — required for recovery and replication to line labels up).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.authority_seed = Some(seed);
        self
    }

    /// Enables or disables DIFC enforcement (`false` is the paper's
    /// "unmodified PostgreSQL" baseline).
    pub fn difc(mut self, enabled: bool) -> Self {
        self.config.difc_enabled = enabled;
        self
    }

    /// Enables the serializable-mode transaction clearance rule.
    pub fn serializable(mut self, on: bool) -> Self {
        self.config.serializable = on;
        self
    }

    /// Sets the commit-durability configuration.
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.config.durability = durability;
        self
    }

    /// Sets the default per-statement execution budgets for sessions.
    pub fn constraints(mut self, constraints: ExecutionConstraints) -> Self {
        self.config.constraints = constraints;
        self
    }

    /// Enables or disables the durable (WAL-carried) audit chain.
    pub fn audit_chain(mut self, enabled: bool) -> Self {
        self.config.audit_chain = enabled;
        self
    }

    /// Recovers an existing on-disk database (replays the write-ahead log)
    /// instead of starting from a fresh log. Requires on-disk storage.
    pub fn recover(mut self) -> Self {
        self.recover = true;
        self
    }

    /// Runs the given table definitions through [`Database::create_table`]
    /// immediately after construction — on a fresh database this is the
    /// first-boot DDL; combined with [`recover`](Self::recover) it re-attaches
    /// constraint metadata so recovered tables come back writable.
    pub fn first_boot_ddl(mut self, tables: impl IntoIterator<Item = TableDef>) -> Self {
        self.tables.extend(tables);
        self
    }

    /// Wraps `engine` as a **read-only replica** database instead of
    /// creating storage from the configuration (see
    /// [`Database::replica_over`] for the replication contract).
    pub fn replica_over(mut self, engine: StorageEngine) -> Self {
        self.replica_engine = Some(engine);
        self
    }

    /// Builds the database, validating the combination first: `recover`
    /// requires on-disk storage, and replica mode excludes both `recover`
    /// (a replica's state arrives on the stream, not from its own log) and
    /// first-boot DDL (a replica cannot create tables; re-run DDL after the
    /// stream has delivered them).
    pub fn build(self) -> IfdbResult<Database> {
        if let Some(engine) = self.replica_engine {
            if self.recover {
                return Err(IfdbError::InvalidStatement(
                    "a replica cannot recover from its own log; its state arrives on the replication stream".into(),
                ));
            }
            if !self.tables.is_empty() {
                return Err(IfdbError::InvalidStatement(
                    "a replica cannot run first-boot DDL; re-run table definitions after the stream delivers the tables".into(),
                ));
            }
            engine
                .txns()
                .reserve_local_ids(ifdb_storage::REPLICA_LOCAL_TXN_BASE);
            // The replica's own log is never read (its state is a cache of
            // the primary's log), so local read transactions must not
            // accumulate Begin/Commit records in it forever.
            engine.wal().set_discard(true);
            let db = Database::from_engine(engine, self.config);
            db.inner
                .read_only
                .store(true, std::sync::atomic::Ordering::SeqCst);
            return Ok(db);
        }
        let db = if self.recover {
            let StorageKind::OnDisk { dir, buffer_pages } = &self.config.storage else {
                return Err(IfdbError::InvalidStatement(
                    "recovery requires on-disk storage".into(),
                ));
            };
            let engine = StorageEngine::open(dir, *buffer_pages, self.config.durability)?;
            let db = Database::from_engine(engine, self.config.clone());
            db.resync_catalog()?;
            db
        } else {
            let engine =
                StorageEngine::with_config(self.config.storage.clone(), self.config.durability)?;
            Database::from_engine(engine, self.config)
        };
        for def in self.tables {
            db.create_table(def)?;
        }
        Ok(db)
    }
}

impl Database {
    /// Starts a [`DatabaseBuilder`] — the preferred construction path; the
    /// historical constructors are thin wrappers over it.
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// Creates a database with the given configuration. An on-disk database
    /// created this way starts from a fresh log; use [`Database::open`] to
    /// recover one from a previous run.
    ///
    /// Prefer [`Database::builder`] in new code.
    ///
    /// Panics if the write-ahead log cannot be created (on-disk storage
    /// only) — a database configured for durability must never silently run
    /// without a log. Use [`Database::try_new`] to handle the error instead.
    pub fn new(config: DatabaseConfig) -> Self {
        Self::try_new(config).expect("failed to create the storage engine")
    }

    /// Fallible form of [`Database::new`]: surfaces write-ahead-log creation
    /// errors (permissions, disk) instead of panicking.
    ///
    /// Prefer [`Database::builder`] in new code.
    pub fn try_new(config: DatabaseConfig) -> IfdbResult<Self> {
        Self::builder().config(config).build()
    }

    /// Opens (recovers) an on-disk database: the storage engine replays its
    /// write-ahead log ([`StorageEngine::open`]), and the relational catalog
    /// is reconstructed from the recovered schemas and indexes — the
    /// primary-key index is recognized by its `{table}_pkey` naming
    /// convention.
    ///
    /// Two kinds of state are *code*, not logged data, and must be
    /// re-established by the application after opening, exactly as on first
    /// boot:
    ///
    /// * **Constraints and views** — re-run the first-boot DDL:
    ///   [`Database::create_table`] with the same [`TableDef`] re-attaches
    ///   uniques, foreign keys and label constraints to the recovered table
    ///   (it keeps the existing rows and indexes), and
    ///   `create_view`/`create_declassifying_view` re-register views. Until
    ///   that happens, recovered tables are **read-only**: writes fail with
    ///   [`IfdbError::ConstraintsPending`] rather than silently running
    ///   without constraint or label-constraint enforcement.
    ///   [`Database::open_with_tables`] folds the re-run into the open.
    /// * **The DIFC authority state** — principals and tags are not
    ///   persisted, but recovered tuples still carry their numeric tag ids.
    ///   Recreate principals and tags in the same order with the same
    ///   [`DatabaseConfig::with_seed`] seed and the ids line up; without a
    ///   fixed seed, relabeling is impossible and recovered labeled data is
    ///   unreachable.
    ///
    /// Fails unless `config.storage` is [`StorageKind::OnDisk`].
    pub fn open(config: DatabaseConfig) -> IfdbResult<Self> {
        let StorageKind::OnDisk { dir, buffer_pages } = &config.storage else {
            return Err(IfdbError::InvalidStatement(
                "Database::open requires on-disk storage".into(),
            ));
        };
        let engine = StorageEngine::open(dir, *buffer_pages, config.durability)?;
        let db = Self::from_engine(engine, config.clone());
        db.resync_catalog()?;
        Ok(db)
    }

    /// Rebuilds the relational catalog from the storage engine's live
    /// schema, exactly as [`Database::open`] does after recovery: every
    /// engine table gets a catalog entry, with the primary-key index
    /// recognized by the `{table}_pkey` naming convention. Tables whose
    /// catalog entry already matches (same id and schema) are left alone —
    /// including any constraint metadata a DDL re-run attached — so the call
    /// is cheap and non-destructive when nothing changed.
    ///
    /// Besides recovery, this is how a log-shipping replica keeps its
    /// catalog in step with replicated DDL: the apply loop calls it whenever
    /// a streamed batch created tables or indexes (and after a stream
    /// reset, when table ids may have changed wholesale).
    pub fn resync_catalog(&self) -> IfdbResult<()> {
        let mut names = self.inner.engine.table_names();
        names.sort();
        for name in names {
            let table = self.inner.engine.table_by_name(&name)?;
            let specs = self.inner.engine.index_specs(table.id())?;
            {
                let catalog = self.inner.catalog.read();
                if let Ok(existing) = catalog.table(&name) {
                    if existing.id == table.id()
                        && existing.schema == *table.schema()
                        && existing.indexes.len() + usize::from(existing.pk_index.is_some())
                            == specs.len()
                    {
                        continue;
                    }
                }
            }
            let col_name = |offsets: &[usize]| -> Vec<String> {
                offsets
                    .iter()
                    .map(|o| table.schema().columns[*o].name.clone())
                    .collect()
            };
            let pk_name = format!("{name}_pkey");
            let pk = specs.iter().find(|(n, _)| *n == pk_name);
            let info = TableInfo {
                id: table.id(),
                schema: table.schema().clone(),
                primary_key: pk.map(|(_, cols)| col_name(cols)).unwrap_or_default(),
                uniques: Vec::new(),
                foreign_keys: Vec::new(),
                label_constraints: Vec::new(),
                pk_index: pk.map(|(n, _)| n.clone()),
                indexes: specs
                    .iter()
                    .filter(|(n, _)| *n != pk_name)
                    .map(|(n, cols)| IndexSpec {
                        name: n.clone(),
                        columns: col_name(cols),
                    })
                    .collect(),
                constraints_pending: true,
            };
            self.inner.catalog.write().add_table(info);
        }
        // Drop catalog entries whose engine table vanished (replica reset).
        let stale: Vec<String> = {
            let catalog = self.inner.catalog.read();
            catalog
                .table_names()
                .into_iter()
                .filter(|n| self.inner.engine.table_by_name(n).is_err())
                .collect()
        };
        if !stale.is_empty() {
            let mut catalog = self.inner.catalog.write();
            for name in stale {
                catalog.remove_table(&name);
            }
        }
        Ok(())
    }

    /// Opens (recovers) an on-disk database and immediately re-runs the
    /// given first-boot table definitions ([`Database::create_table`] per
    /// def), so the catalog is never observable with missing constraint
    /// metadata: recovered tables named by a def come back with their
    /// uniques, foreign keys and label constraints attached and writable;
    /// tables *not* named by any def stay read-only until their DDL is
    /// re-run.
    pub fn open_with_tables(
        config: DatabaseConfig,
        tables: impl IntoIterator<Item = TableDef>,
    ) -> IfdbResult<Self> {
        let db = Self::open(config)?;
        for def in tables {
            db.create_table(def)?;
        }
        Ok(db)
    }

    fn from_engine(engine: StorageEngine, config: DatabaseConfig) -> Self {
        let auth = match config.authority_seed {
            Some(seed) => AuthorityState::with_seed(seed),
            None => AuthorityState::new(),
        };
        Database {
            inner: Arc::new(DbInner {
                engine,
                auth: RwLock::new(auth),
                catalog: RwLock::new(Catalog::new()),
                audit: AuditLog::new(),
                difc_enabled: config.difc_enabled,
                serializable: config.serializable,
                constraints: config.constraints,
                audit_chain: config.audit_chain,
                read_only: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Wraps an existing storage engine as a **read-only replica** database:
    /// sessions opened from this handle refuse writes with
    /// [`IfdbError::ReadOnlyReplica`], replica-local transaction ids are
    /// moved into the reserved high range
    /// ([`ifdb_storage::REPLICA_LOCAL_TXN_BASE`]) so they can never collide
    /// with ids arriving on the replication stream, and data is expected to
    /// arrive exclusively through
    /// [`StorageEngine::apply_replicated`](ifdb_storage::engine::StorageEngine::apply_replicated).
    ///
    /// The DIFC authority state is *not* replicated (it is code, not logged
    /// data — the same contract as [`Database::open`]): pass the primary's
    /// `authority_seed` in `config` and re-create principals and tags in the
    /// same order so the numeric tag ids embedded in replicated tuples line
    /// up, or label-faithful replica reads are impossible.
    pub fn replica_over(engine: StorageEngine, config: DatabaseConfig) -> Self {
        engine
            .txns()
            .reserve_local_ids(ifdb_storage::REPLICA_LOCAL_TXN_BASE);
        // The replica's own log is never read (its state is a cache of the
        // primary's log), so local read transactions must not accumulate
        // Begin/Commit records in it forever.
        engine.wal().set_discard(true);
        let db = Self::from_engine(engine, config);
        db.inner
            .read_only
            .store(true, std::sync::atomic::Ordering::SeqCst);
        db
    }

    /// Returns `true` when this handle serves a read-only replica.
    pub fn is_read_only(&self) -> bool {
        self.inner
            .read_only
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Promotes a replica database to primary of `generation`: the engine's
    /// log leaves discard mode, adopts the generation and re-anchors with a
    /// checkpoint image (in-doubt 2PC transactions carried along — see
    /// [`StorageEngine::promote_to_primary`](ifdb_storage::engine::StorageEngine::promote_to_primary)),
    /// and the read-only gate is lifted so sessions opened from this handle
    /// accept writes. Fails with
    /// [`StorageError::CheckpointBusy`](ifdb_storage::StorageError::CheckpointBusy)
    /// while replica-local read transactions are still active; callers
    /// retry. On a database that is already a primary the call is a plain
    /// generation bump plus checkpoint (idempotent promotion).
    pub fn promote_to_primary(&self, generation: u64) -> IfdbResult<usize> {
        let count = self.inner.engine.promote_to_primary(generation)?;
        self.inner
            .read_only
            .store(false, std::sync::atomic::Ordering::SeqCst);
        Ok(count)
    }

    /// Checkpoints the storage engine: compacts the write-ahead log into a
    /// consistent snapshot image so that a later [`Database::open`] replays
    /// O(live data) records. Requires a quiescent engine (no open
    /// transactions); see
    /// [`StorageEngine::checkpoint`](ifdb_storage::engine::StorageEngine::checkpoint).
    pub fn checkpoint(&self) -> IfdbResult<usize> {
        Ok(self.inner.engine.checkpoint()?)
    }

    /// Checkpoints as soon as the engine allows it: immediately when no
    /// transaction is active, otherwise the request is deferred — new
    /// transactions briefly quiesce and the transaction that drains the
    /// active set performs the checkpoint — so auto-checkpointing makes
    /// progress even under the sustained concurrent load of a network
    /// server, where [`Database::checkpoint`] would return
    /// [`StorageError::CheckpointBusy`](ifdb_storage::StorageError::CheckpointBusy)
    /// essentially always. Returns `true` if the checkpoint ran within this
    /// call.
    pub fn checkpoint_soon(&self) -> IfdbResult<bool> {
        Ok(self.inner.engine.checkpoint_soon()?)
    }

    /// Applies a two-phase-commit coordinator's verdict to the transaction
    /// prepared under `gid` (via [`Session::prepare_commit`], or recovered
    /// in-doubt from the log). Returns `true` if a prepared transaction was
    /// resolved; idempotent, so a retrying coordinator gets a clean ack for
    /// an already-decided gid.
    ///
    /// [`Session::prepare_commit`]: crate::session::Session::prepare_commit
    pub fn decide_prepared(&self, gid: u64, commit: bool) -> IfdbResult<bool> {
        Ok(self.inner.engine.decide(gid, commit)?)
    }

    /// Global ids of transactions prepared and awaiting a coordinator
    /// decision (in-doubt), in ascending order. After a crash these are the
    /// transactions the coordinator must resolve on reconnect.
    pub fn in_doubt(&self) -> Vec<u64> {
        self.inner.engine.in_doubt()
    }

    /// What this node knows about global transaction `gid`:
    /// `Some(committed?)` once a decision was applied here, `None` when the
    /// gid is unknown or still in-doubt here. Coordinator recovery commits
    /// an in-doubt gid iff some participant answers `Some(true)`, and
    /// otherwise presumes abort.
    pub fn prepared_outcome(&self, gid: u64) -> Option<bool> {
        self.inner.engine.outcome(gid)
    }

    /// Shorthand for an in-memory IFDB instance with a fixed seed.
    pub fn in_memory() -> Self {
        Self::new(DatabaseConfig::in_memory().with_seed(0x1FDB))
    }

    /// Returns `true` if DIFC enforcement is enabled.
    pub fn difc_enabled(&self) -> bool {
        self.inner.difc_enabled
    }

    /// The underlying storage engine (exposed for statistics and benches).
    pub fn engine(&self) -> &StorageEngine {
        &self.inner.engine
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.inner.audit
    }

    /// Records a security-relevant event: always in the in-memory
    /// [`AuditLog`], and — for the chain-worthy kinds the issue of
    /// multi-tenant accountability cares about (declassify, delegate/revoke,
    /// label raises, commit-label refusals, budget kills) — also as a link
    /// of the storage engine's tamper-evident audit chain, carried in the
    /// WAL so it is ordered with the transactions around it, durable,
    /// replicated to standbys and replayable against committed history.
    ///
    /// High-frequency per-scan events (declassifying-view applications) and
    /// blocked releases stay in-memory only. On a read-only replica nothing
    /// is chained locally: the authoritative chain arrives on the
    /// replication stream.
    pub fn record_audit(&self, event: AuditEvent) {
        let chain_worthy = matches!(
            event,
            AuditEvent::Declassify { .. }
                | AuditEvent::Delegate { .. }
                | AuditEvent::Revoke { .. }
                | AuditEvent::LabelRaise { .. }
                | AuditEvent::CommitRefused { .. }
                | AuditEvent::BudgetKill { .. }
        );
        if chain_worthy && self.inner.audit_chain && !self.is_read_only() {
            // The append is ordered in the log before we acknowledge the
            // event; a failure (disk) is surfaced to the in-memory log via
            // the event still being recorded below, but cannot be returned
            // to the (infallible) audit callers — the storage engine's next
            // commit will surface the same I/O failure loudly.
            let _ = self.inner.engine.append_audit(event.encode());
        }
        self.inner.audit.record(event);
    }

    /// Decodes the engine's audit chain back into events — the replayable
    /// view of every chained event this database (or the primary it
    /// replicates) ever recorded. Links whose payload fails to decode are
    /// skipped; [`verify_audit_chain`](Self::verify_audit_chain) is the
    /// integrity check.
    pub fn replay_audit(&self) -> Vec<AuditEvent> {
        self.inner
            .engine
            .audit_records()
            .iter()
            .filter_map(|r| AuditEvent::decode(&r.bytes))
            .collect()
    }

    /// Verifies the engine's audit chain link by link (sequence continuity,
    /// predecessor-hash commitment, hash recomputation).
    pub fn verify_audit_chain(&self) -> Result<(), ifdb_storage::AuditChainBreak> {
        self.inner.engine.verify_audit_chain()
    }

    // ------------------------------------------------------------------
    // Principals and tags
    // ------------------------------------------------------------------

    /// Creates a principal.
    pub fn create_principal(&self, name: &str, kind: PrincipalKind) -> PrincipalId {
        self.inner.auth.write().create_principal(name, kind)
    }

    /// The distinguished anonymous principal.
    pub fn anonymous(&self) -> PrincipalId {
        self.inner.auth.read().anonymous()
    }

    /// Creates an ordinary tag owned by `owner`.
    pub fn create_tag(
        &self,
        owner: PrincipalId,
        name: &str,
        compounds: &[TagId],
    ) -> IfdbResult<TagId> {
        Ok(self.inner.auth.write().create_tag(owner, name, compounds)?)
    }

    /// Creates a compound tag owned by `owner`.
    pub fn create_compound_tag(
        &self,
        owner: PrincipalId,
        name: &str,
        parents: &[TagId],
    ) -> IfdbResult<TagId> {
        Ok(self
            .inner
            .auth
            .write()
            .create_compound_tag(owner, name, parents)?)
    }

    /// Returns `true` if `principal` has authority for `tag` in the current
    /// authority state.
    pub fn has_authority(&self, principal: PrincipalId, tag: TagId) -> bool {
        self.inner.auth.read().has_authority(principal, tag)
    }

    // ------------------------------------------------------------------
    // Schema (the administrator's job)
    // ------------------------------------------------------------------

    /// Creates a table from a declarative definition, along with a
    /// primary-key index when a primary key is declared.
    ///
    /// Re-running the same definition against a table recovered by
    /// [`Database::open`] is the supported way to restore constraint
    /// metadata (uniques, foreign keys, label constraints), which is code
    /// rather than logged data: when the named table already exists with an
    /// identical column list, the existing table and its rows are kept,
    /// missing indexes are created, and the constraint metadata from `def`
    /// is (re)attached. A same-named table with a *different* column list
    /// is an error.
    pub fn create_table(&self, def: TableDef) -> IfdbResult<()> {
        let schema = TableSchema::new(&def.name, def.columns.clone());
        // Validate constraint columns exist before touching storage.
        for pk in &def.primary_key {
            schema.column_index(pk)?;
        }
        for u in &def.uniques {
            for c in &u.columns {
                schema.column_index(c)?;
            }
        }
        for fk in &def.foreign_keys {
            for c in &fk.columns {
                schema.column_index(c)?;
            }
        }
        for idx in &def.indexes {
            for c in &idx.columns {
                schema.column_index(c)?;
            }
        }
        // The catalog write lock is held across the existence check, the
        // engine-side DDL and the TableInfo install, so concurrent DDL on
        // the same name cannot interleave.
        let read_only = self.is_read_only();
        let mut catalog = self.inner.catalog.write();
        let id = match catalog.table(&def.name) {
            Ok(existing) => {
                if existing.schema != schema {
                    return Err(IfdbError::InvalidStatement(format!(
                        "table {} already exists with a different schema",
                        def.name
                    )));
                }
                existing.id
            }
            Err(_) if read_only => {
                // On a replica, storage-level DDL arrives via the
                // replication stream; re-running a definition here only
                // attaches catalog metadata to a table that already
                // streamed in.
                return Err(IfdbError::ReadOnlyReplica);
            }
            Err(_) => self.inner.engine.create_table(schema.clone())?,
        };
        let present = self.inner.engine.index_names(id)?;
        let pk_index = if def.primary_key.is_empty() {
            None
        } else {
            let index_name = format!("{}_pkey", def.name);
            if !present.contains(&index_name) && !read_only {
                let cols: Vec<&str> = def.primary_key.iter().map(String::as_str).collect();
                self.inner.engine.create_index(id, &index_name, &cols)?;
            }
            Some(index_name)
        };
        for idx in &def.indexes {
            if !present.contains(&idx.name) && !read_only {
                let cols: Vec<&str> = idx.columns.iter().map(String::as_str).collect();
                self.inner.engine.create_index(id, &idx.name, &cols)?;
            }
        }
        let info = TableInfo {
            id,
            schema,
            primary_key: def.primary_key,
            uniques: def.uniques,
            foreign_keys: def.foreign_keys,
            label_constraints: def.label_constraints,
            pk_index,
            indexes: def.indexes,
            // The definition carries the constraint metadata, so a table
            // recovered by `open` becomes writable again here.
            constraints_pending: false,
        };
        catalog.add_table(info);
        Ok(())
    }

    /// Creates a secondary ordered index over `columns` of an existing
    /// table, back-filled from the current heap contents and registered with
    /// the planner, which will use it for equality, prefix and range access
    /// paths.
    pub fn create_secondary_index(
        &self,
        table: &str,
        name: &str,
        columns: &[&str],
    ) -> IfdbResult<()> {
        if self.is_read_only() {
            return Err(IfdbError::ReadOnlyReplica);
        }
        // The catalog write lock is held across the engine-side creation and
        // the TableInfo swap, so concurrent index DDL on the same table
        // cannot lose a registration; the engine rejects duplicate names.
        let mut catalog = self.inner.catalog.write();
        let info = catalog.table(table)?;
        for c in columns {
            info.schema.column_index(c)?;
        }
        self.inner.engine.create_index(info.id, name, columns)?;
        let mut updated = (*info).clone();
        updated.indexes.push(crate::catalog::IndexSpec {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        });
        catalog.add_table(updated);
        Ok(())
    }

    /// Creates an ordinary (non-declassifying) view.
    pub fn create_view(&self, name: &str, source: ViewSource) -> IfdbResult<()> {
        self.inner.catalog.write().add_view(ViewDef {
            name: name.to_string(),
            source,
            declassifies: Label::empty(),
            authority: None,
        });
        Ok(())
    }

    /// Creates a *declassifying view* (`CREATE VIEW ... WITH DECLASSIFYING`):
    /// the view removes `declassifies` from the labels of the tuples it
    /// exposes. The creator must hold authority for every declassified tag;
    /// that authority is bound into the view definition (Section 4.3).
    pub fn create_declassifying_view(
        &self,
        creator: PrincipalId,
        name: &str,
        source: ViewSource,
        declassifies: Label,
    ) -> IfdbResult<()> {
        {
            let auth = self.inner.auth.read();
            for tag in declassifies.iter() {
                if !auth.has_authority(creator, tag) {
                    return Err(IfdbError::Difc(ifdb_difc::DifcError::NoAuthority {
                        principal: creator,
                        tag,
                    }));
                }
            }
        }
        self.inner.catalog.write().add_view(ViewDef {
            name: name.to_string(),
            source,
            declassifies,
            authority: Some(creator),
        });
        Ok(())
    }

    /// Registers a trigger. For a trigger that is a stored authority closure
    /// (`authority: Some(p)`), the creator must be the bound principal or
    /// hold every tag the closure principal holds; in this reproduction the
    /// check is that a delegation path exists is established separately via
    /// [`Session::delegate`], mirroring how closure principals are set up in
    /// the paper's applications.
    pub fn create_trigger(&self, trigger: TriggerDef) -> IfdbResult<()> {
        if !self.inner.catalog.read().has_table(&trigger.table) {
            return Err(IfdbError::UnknownTable(trigger.table.clone()));
        }
        self.inner.catalog.write().add_trigger(trigger);
        Ok(())
    }

    /// Registers a stored procedure (or stored authority closure).
    pub fn create_procedure(&self, proc: StoredProcedure) -> IfdbResult<()> {
        self.inner.catalog.write().add_procedure(proc);
        Ok(())
    }

    /// Number of catalog objects that carry authority (declassifying views,
    /// authority-closure triggers and procedures). Used by the trusted-base
    /// report.
    pub fn trusted_component_count(&self) -> usize {
        self.inner.catalog.read().trusted_component_count()
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Opens a session acting for `principal`.
    pub fn session(&self, principal: PrincipalId) -> Session {
        Session::new(self.clone(), principal)
    }

    /// Opens a session for the anonymous principal (unauthenticated
    /// requests).
    pub fn anonymous_session(&self) -> Session {
        let anon = self.anonymous();
        self.session(anon)
    }

    /// Runs vacuum: physically reclaims versions no snapshot can see.
    pub fn vacuum(&self) -> IfdbResult<usize> {
        Ok(self.inner.engine.vacuum()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb_storage::DataType;

    #[test]
    fn create_table_validates_constraint_columns() {
        let db = Database::in_memory();
        let bad = TableDef::new("t")
            .column("a", DataType::Int)
            .primary_key(&["nonexistent"]);
        assert!(db.create_table(bad).is_err());
        let good = TableDef::new("t")
            .column("a", DataType::Int)
            .primary_key(&["a"]);
        assert!(db.create_table(good).is_ok());
    }

    #[test]
    fn declassifying_view_requires_creator_authority() {
        let db = Database::in_memory();
        let alice = db.create_principal("alice", PrincipalKind::User);
        let mallory = db.create_principal("mallory", PrincipalKind::User);
        let tag = db.create_tag(alice, "alice_contact", &[]).unwrap();
        db.create_table(
            TableDef::new("ContactInfo")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .primary_key(&["id"]),
        )
        .unwrap();
        let src = ViewSource::Select(crate::query::Select::star("ContactInfo"));
        assert!(db
            .create_declassifying_view(mallory, "Leak", src.clone(), Label::singleton(tag))
            .is_err());
        assert!(db
            .create_declassifying_view(alice, "PCMembers", src, Label::singleton(tag))
            .is_ok());
        assert_eq!(db.trusted_component_count(), 1);
    }

    #[test]
    fn trigger_requires_existing_table() {
        let db = Database::in_memory();
        let t = TriggerDef {
            name: "t".into(),
            table: "Missing".into(),
            events: vec![crate::catalog::TriggerEvent::Insert],
            timing: crate::catalog::TriggerTiming::Immediate,
            authority: None,
            body: Arc::new(|_, _| Ok(())),
        };
        assert!(db.create_trigger(t).is_err());
    }

    #[test]
    fn baseline_database_reports_difc_disabled() {
        let db = Database::new(DatabaseConfig::baseline());
        assert!(!db.difc_enabled());
        assert!(Database::in_memory().difc_enabled());
    }

    #[test]
    fn recovered_tables_are_read_only_until_ddl_rerun() {
        use crate::query::{Delete, Insert, Select};
        use ifdb_storage::{Datum, DurabilityConfig};

        let dir = std::env::temp_dir().join(format!("ifdb-db-readonly-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = DatabaseConfig::on_disk(dir.clone(), 32)
            .with_seed(0x1FDB)
            .with_durability(DurabilityConfig::SYNC_EACH);
        let notes = TableDef::new("notes")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key(&["id"]);
        let kids = TableDef::new("kids")
            .column("id", DataType::Int)
            .column("note_id", DataType::Int)
            .primary_key(&["id"])
            .foreign_key("kids_note_fkey", &["note_id"], "notes", &["id"]);
        {
            let db = Database::new(config.clone());
            db.create_table(notes.clone()).unwrap();
            db.create_table(kids.clone()).unwrap();
            let mut s = db.anonymous_session();
            s.insert(&Insert::new("notes", vec![Datum::Int(1), Datum::from("a")]))
                .unwrap();
        }
        {
            let db = Database::open(config.clone()).unwrap();
            let mut s = db.anonymous_session();
            // Reads work, but writes are refused until the first-boot DDL
            // re-attaches the constraint metadata.
            assert_eq!(s.select(&Select::star("notes")).unwrap().len(), 1);
            let err = s
                .insert(&Insert::new("notes", vec![Datum::Int(2), Datum::from("b")]))
                .unwrap_err();
            assert!(matches!(err, IfdbError::ConstraintsPending { .. }));
            db.create_table(notes.clone()).unwrap();
            s.insert(&Insert::new("notes", vec![Datum::Int(2), Datum::from("b")]))
                .unwrap();
            // The re-attached primary key is enforced again.
            let dup = s.insert(&Insert::new(
                "notes",
                vec![Datum::Int(2), Datum::from("dup")],
            ));
            assert!(matches!(
                dup.unwrap_err(),
                IfdbError::UniqueViolation { .. }
            ));
            // Deletes stay refused while *any* table is pending: "kids"
            // could reference "notes" without its foreign key registered.
            let del = s
                .delete(&Delete::new("notes", crate::query::Predicate::True))
                .unwrap_err();
            assert!(
                matches!(del, IfdbError::ConstraintsPending { ref table } if table == "kids"),
                "unexpected error: {del}"
            );
            db.create_table(kids.clone()).unwrap();
            assert_eq!(
                s.delete(&Delete::new("notes", crate::query::Predicate::True))
                    .unwrap(),
                2
            );
        }
        // open_with_tables folds the DDL re-run into the open.
        let db = Database::open_with_tables(config, [notes, kids]).unwrap();
        let mut s = db.anonymous_session();
        assert!(s.select(&Select::star("notes")).unwrap().is_empty());
        s.insert(&Insert::new("notes", vec![Datum::Int(3), Datum::from("c")]))
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_recovers_tables_catalog_and_rows() {
        use crate::query::{Insert, Select};
        use ifdb_storage::{Datum, DurabilityConfig};

        let dir = std::env::temp_dir().join(format!("ifdb-db-open-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = DatabaseConfig::on_disk(dir.clone(), 32)
            .with_seed(0x1FDB)
            .with_durability(DurabilityConfig::GROUP_COMMIT);
        {
            let db = Database::new(config.clone());
            let alice = db.create_principal("alice", PrincipalKind::User);
            let tag = db.create_tag(alice, "alice_data", &[]).unwrap();
            db.create_table(
                TableDef::new("notes")
                    .column("id", DataType::Int)
                    .column("body", DataType::Text)
                    .primary_key(&["id"]),
            )
            .unwrap();
            db.create_secondary_index("notes", "notes_body", &["body"])
                .unwrap();
            let mut s = db.session(alice);
            s.add_secrecy(tag).unwrap();
            for i in 0..5 {
                s.insert(&Insert::new(
                    "notes",
                    vec![Datum::Int(i), Datum::Text(format!("note{i}"))],
                ))
                .unwrap();
            }
            db.checkpoint().unwrap();
            // Dropped without shutdown: group commit already made each
            // implicit transaction durable.
        }
        let db = Database::open(config).unwrap();
        // Catalog: table, pk and secondary index all reconstructed.
        let catalog = db.inner.catalog.read();
        let info = catalog.table("notes").unwrap();
        assert_eq!(info.primary_key, vec!["id".to_string()]);
        assert_eq!(info.pk_index.as_deref(), Some("notes_pkey"));
        assert_eq!(info.indexes.len(), 1);
        assert_eq!(info.indexes[0].columns, vec!["body".to_string()]);
        drop(catalog);
        // Rows recovered with labels intact: an uncontaminated session sees
        // nothing, a session re-raised to the (re-created) tag sees all.
        let alice = db.create_principal("alice", PrincipalKind::User);
        let tag = db.create_tag(alice, "alice_data", &[]).unwrap();
        let mut public = db.anonymous_session();
        assert!(public.select(&Select::star("notes")).unwrap().is_empty());
        let mut s = db.session(alice);
        s.add_secrecy(tag).unwrap();
        assert_eq!(s.select(&Select::star("notes")).unwrap().len(), 5);
        assert!(db.engine().stats().recovery_replayed_records > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
