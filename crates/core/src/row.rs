//! Query results: rows and result sets.

use std::sync::Arc;

use ifdb_difc::Label;
use ifdb_storage::Datum;

/// One row of a query result. The row carries the tuple's label so that
/// applications (and the platform's output gate) can reason about what they
/// read; under Query by Label every returned label is already a subset of the
/// process label.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Column names, shared across the result set.
    pub columns: Arc<Vec<String>>,
    /// The tuple's label.
    pub label: Label,
    /// The field values, in column order.
    pub values: Vec<Datum>,
}

impl Row {
    /// The value of the named column.
    pub fn get(&self, column: &str) -> Option<&Datum> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.values.get(idx)
    }

    /// The value of the named column as an integer.
    pub fn get_int(&self, column: &str) -> Option<i64> {
        self.get(column).and_then(Datum::as_int)
    }

    /// The value of the named column as text.
    pub fn get_text(&self, column: &str) -> Option<&str> {
        self.get(column).and_then(Datum::as_text)
    }

    /// The value of the named column as a float.
    pub fn get_float(&self, column: &str) -> Option<f64> {
        self.get(column).and_then(Datum::as_float)
    }
}

/// A complete query result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// The rows, in result order.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Builds a result set from rows.
    pub fn new(rows: Vec<Row>) -> Self {
        ResultSet { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The first row, if any.
    pub fn first(&self) -> Option<&Row> {
        self.rows.first()
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// The union of the labels of every returned row: the contamination a
    /// caller acquires by looking at the whole result.
    pub fn combined_label(&self) -> Label {
        self.rows
            .iter()
            .fold(Label::empty(), |acc, r| acc.union(&r.label))
    }
}

impl IntoIterator for ResultSet {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb_difc::TagId;

    fn row(cols: &[&str], vals: Vec<Datum>, label: Label) -> Row {
        Row {
            columns: Arc::new(cols.iter().map(|c| c.to_string()).collect()),
            label,
            values: vals,
        }
    }

    #[test]
    fn column_access_by_name() {
        let r = row(
            &["id", "name", "score"],
            vec![Datum::Int(7), Datum::from("alice"), Datum::Float(1.5)],
            Label::empty(),
        );
        assert_eq!(r.get_int("id"), Some(7));
        assert_eq!(r.get_text("name"), Some("alice"));
        assert_eq!(r.get_float("score"), Some(1.5));
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn combined_label_unions_row_labels() {
        let rs = ResultSet::new(vec![
            row(&["x"], vec![Datum::Int(1)], Label::singleton(TagId(1))),
            row(&["x"], vec![Datum::Int(2)], Label::singleton(TagId(2))),
        ]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.combined_label(), Label::from_tags([TagId(1), TagId(2)]));
        assert!(!rs.is_empty());
        assert_eq!(rs.first().unwrap().get_int("x"), Some(1));
    }
}
