//! The programmatic query language of the IFDB reproduction.
//!
//! The paper exposes IFDB through SQL; this crate exposes the same operations
//! through typed statement structures (a small SQL front end that parses into
//! these structures lives in the `ifdb-sql` crate). The statements carry the
//! IFDB-specific extensions directly: the `DECLASSIFYING` clause on inserts
//! (Section 5.2.2) and exact-label selection (Sections 4.2 and 5.2.1).

use ifdb_difc::{Label, TagId};
use ifdb_storage::Datum;

/// A boolean predicate over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// Column equals value.
    Eq(String, Datum),
    /// Column does not equal value.
    Ne(String, Datum),
    /// Column is less than value.
    Lt(String, Datum),
    /// Column is less than or equal to value.
    Le(String, Datum),
    /// Column is greater than value.
    Gt(String, Datum),
    /// Column is greater than or equal to value.
    Ge(String, Datum),
    /// Column is NULL.
    IsNull(String),
    /// Column is not NULL.
    IsNotNull(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
    /// The tuple's `_label` system column contains the tag.
    LabelContains(TagId),
    /// The tuple's `_label` system column is exactly this label. Used to hide
    /// polyinstantiated "mistake" tuples (Section 5.2.1).
    LabelEquals(Label),
}

impl Predicate {
    /// Convenience: `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience: `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: `NOT self`.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// If the predicate constrains `column` to a single value by equality
    /// (possibly inside conjunctions), return that value. Used by the
    /// planner to pick index lookups over scans.
    pub fn equality_on(&self, column: &str) -> Option<&Datum> {
        match self {
            Predicate::Eq(c, v) if c == column => Some(v),
            Predicate::And(a, b) => a.equality_on(column).or_else(|| b.equality_on(column)),
            _ => None,
        }
    }

    /// The lower and upper bounds this predicate places on `column` through
    /// top-level conjunctions. Strict bounds (`<`, `>`) are reported with
    /// their boundary value: the planner uses them as *inclusive* index
    /// bounds, and the residual predicate re-checks strictness, so widening
    /// is sound.
    pub fn bounds_on(&self, column: &str) -> (Option<&Datum>, Option<&Datum>) {
        match self {
            Predicate::Eq(c, v) if c == column => (Some(v), Some(v)),
            Predicate::Gt(c, v) | Predicate::Ge(c, v) if c == column => (Some(v), None),
            Predicate::Lt(c, v) | Predicate::Le(c, v) if c == column => (None, Some(v)),
            Predicate::And(a, b) => {
                let (al, ah) = a.bounds_on(column);
                let (bl, bh) = b.bounds_on(column);
                (al.or(bl), ah.or(bh))
            }
            _ => (None, None),
        }
    }

    /// `self AND other`, eliding `True` operands.
    pub fn and_compact(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => a.and(b),
        }
    }

    /// Rewrites the predicate for a narrower source, mapping every column
    /// reference through `rename`. Top-level conjuncts that reference
    /// unmappable columns — or the tuple label, which can differ between the
    /// source and the statement level — are replaced by `True`.
    ///
    /// The result is *implied by* the original predicate (it can only widen
    /// the admitted rows, never narrow them), which makes it sound both as a
    /// scan-level pre-filter and as planner input. The full predicate is
    /// still evaluated at the statement level.
    pub fn push_down(&self, rename: &dyn Fn(&str) -> Option<String>) -> Predicate {
        match self {
            Predicate::And(a, b) => a.push_down(rename).and_compact(b.push_down(rename)),
            p => p.try_rename(rename).unwrap_or(Predicate::True),
        }
    }

    /// Maps every column reference through `rename`; `None` if any
    /// reference (or a label predicate) cannot be mapped.
    fn try_rename(&self, rename: &dyn Fn(&str) -> Option<String>) -> Option<Predicate> {
        Some(match self {
            Predicate::True => Predicate::True,
            Predicate::Eq(c, v) => Predicate::Eq(rename(c)?, v.clone()),
            Predicate::Ne(c, v) => Predicate::Ne(rename(c)?, v.clone()),
            Predicate::Lt(c, v) => Predicate::Lt(rename(c)?, v.clone()),
            Predicate::Le(c, v) => Predicate::Le(rename(c)?, v.clone()),
            Predicate::Gt(c, v) => Predicate::Gt(rename(c)?, v.clone()),
            Predicate::Ge(c, v) => Predicate::Ge(rename(c)?, v.clone()),
            Predicate::IsNull(c) => Predicate::IsNull(rename(c)?),
            Predicate::IsNotNull(c) => Predicate::IsNotNull(rename(c)?),
            Predicate::And(a, b) => a.try_rename(rename)?.and(b.try_rename(rename)?),
            Predicate::Or(a, b) => a.try_rename(rename)?.or(b.try_rename(rename)?),
            Predicate::Not(a) => a.try_rename(rename)?.negate(),
            Predicate::LabelContains(_) | Predicate::LabelEquals(_) => return None,
        })
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A SELECT statement over a single table or view.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Table or view name.
    pub from: String,
    /// Columns to project; `None` selects every column.
    pub columns: Option<Vec<String>>,
    /// WHERE clause.
    pub predicate: Predicate,
    /// ORDER BY column and direction.
    pub order_by: Option<(String, Order)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// When set, only tuples whose label is exactly this label are returned
    /// (the "exact label" request of Section 4.2).
    pub exact_label: Option<Label>,
}

impl Select {
    /// `SELECT * FROM table`.
    pub fn star(from: &str) -> Self {
        Select {
            from: from.to_string(),
            columns: None,
            predicate: Predicate::True,
            order_by: None,
            limit: None,
            exact_label: None,
        }
    }

    /// Adds a WHERE clause (AND-ed with any existing one).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = if self.predicate == Predicate::True {
            predicate
        } else {
            self.predicate.and(predicate)
        };
        self
    }

    /// Projects the given columns.
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.columns = Some(columns.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Adds an ORDER BY clause.
    pub fn order(mut self, column: &str, order: Order) -> Self {
        self.order_by = Some((column.to_string(), order));
        self
    }

    /// Adds a LIMIT clause.
    pub fn take(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Restricts results to tuples with exactly this label.
    pub fn with_exact_label(mut self, label: Label) -> Self {
        self.exact_label = Some(label);
        self
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join: unmatched rows are dropped.
    Inner,
    /// Left outer join: unmatched right sides appear as NULLs. This is how
    /// the ported HotCRP simulates field-level labels — fields more sensitive
    /// than the process label simply come back NULL (Section 6.3).
    LeftOuter,
}

/// A two-way equality join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Left table or view.
    pub left: String,
    /// Right table or view.
    pub right: String,
    /// Join columns: `left.0 = right.1`.
    pub on: (String, String),
    /// Join kind.
    pub kind: JoinKind,
    /// Predicate over the combined row (columns of the left table keep their
    /// names; colliding right-table columns are prefixed with
    /// `"<table>."`).
    pub predicate: Predicate,
}

impl Join {
    /// Builds an inner join.
    pub fn inner(left: &str, right: &str, on: (&str, &str)) -> Self {
        Join {
            left: left.to_string(),
            right: right.to_string(),
            on: (on.0.to_string(), on.1.to_string()),
            kind: JoinKind::Inner,
            predicate: Predicate::True,
        }
    }

    /// Builds a left outer join.
    pub fn left_outer(left: &str, right: &str, on: (&str, &str)) -> Self {
        Join {
            kind: JoinKind::LeftOuter,
            ..Join::inner(left, right, on)
        }
    }

    /// Adds a predicate over the joined row.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = if self.predicate == Predicate::True {
            predicate
        } else {
            self.predicate.clone().and(predicate)
        };
        self
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(column).
    Count,
    /// SUM(column).
    Sum,
    /// AVG(column).
    Avg,
    /// MIN(column).
    Min,
    /// MAX(column).
    Max,
}

/// An aggregate query: `SELECT group_by, f1(c1), ... FROM table WHERE ...
/// GROUP BY group_by`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Table or view name.
    pub from: String,
    /// WHERE clause applied before grouping.
    pub predicate: Predicate,
    /// Optional grouping column.
    pub group_by: Option<String>,
    /// Aggregates to compute: function and argument column (ignored for
    /// `Count`).
    pub aggregates: Vec<(AggFunc, String)>,
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Values in schema column order.
    pub values: Vec<Datum>,
    /// The `DECLASSIFYING (...)` clause: tags the process explicitly vouches
    /// for when the insert references tuples with different labels under a
    /// foreign-key constraint (Section 5.2.2).
    pub declassifying: Vec<TagId>,
}

impl Insert {
    /// Builds an insert without a `DECLASSIFYING` clause.
    pub fn new(table: &str, values: Vec<Datum>) -> Self {
        Insert {
            table: table.to_string(),
            values,
            declassifying: Vec::new(),
        }
    }

    /// Adds a `DECLASSIFYING` clause.
    pub fn declassifying(mut self, tags: &[TagId]) -> Self {
        self.declassifying = tags.to_vec();
        self
    }
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// WHERE clause selecting the rows to update.
    pub predicate: Predicate,
    /// Column assignments.
    pub set: Vec<(String, Datum)>,
}

impl Update {
    /// Builds an update.
    pub fn new(table: &str, predicate: Predicate, set: Vec<(&str, Datum)>) -> Self {
        Update {
            table: table.to_string(),
            predicate,
            set: set.into_iter().map(|(c, v)| (c.to_string(), v)).collect(),
        }
    }
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE clause selecting the rows to delete.
    pub predicate: Predicate,
}

impl Delete {
    /// Builds a delete.
    pub fn new(table: &str, predicate: Predicate) -> Self {
        Delete {
            table: table.to_string(),
            predicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_builder_composes() {
        let q = Select::star("Drives")
            .filter(Predicate::Eq("userid".into(), Datum::Int(7)))
            .filter(Predicate::Gt("distance".into(), Datum::Float(1.0)))
            .project(&["driveid", "distance"])
            .order("distance", Order::Desc)
            .take(10);
        assert_eq!(q.from, "Drives");
        assert_eq!(q.columns.as_ref().unwrap().len(), 2);
        assert!(matches!(q.predicate, Predicate::And(_, _)));
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn equality_extraction_for_planner() {
        let p =
            Predicate::Eq("id".into(), Datum::Int(3)).and(Predicate::Gt("x".into(), Datum::Int(0)));
        assert_eq!(p.equality_on("id"), Some(&Datum::Int(3)));
        assert_eq!(p.equality_on("x"), None);
        assert_eq!(Predicate::True.equality_on("id"), None);
    }

    #[test]
    fn bounds_extraction_for_planner() {
        let p = Predicate::Ge("x".into(), Datum::Int(3))
            .and(Predicate::Lt("x".into(), Datum::Int(9)))
            .and(Predicate::Eq("y".into(), Datum::Int(1)));
        assert_eq!(
            p.bounds_on("x"),
            (Some(&Datum::Int(3)), Some(&Datum::Int(9)))
        );
        assert_eq!(
            p.bounds_on("y"),
            (Some(&Datum::Int(1)), Some(&Datum::Int(1)))
        );
        assert_eq!(p.bounds_on("z"), (None, None));
        // Bounds inside OR are not usable.
        let o = Predicate::Ge("x".into(), Datum::Int(3)).or(Predicate::True);
        assert_eq!(o.bounds_on("x"), (None, None));
    }

    #[test]
    fn push_down_keeps_only_supported_conjuncts() {
        let p = Predicate::Eq("a".into(), Datum::Int(1))
            .and(Predicate::Gt("b".into(), Datum::Int(2)))
            .and(Predicate::LabelContains(TagId(5)));
        let avail = |c: &str| (c == "a").then(|| c.to_string());
        let pushed = p.push_down(&avail);
        assert_eq!(pushed, Predicate::Eq("a".into(), Datum::Int(1)));
        // A disjunction survives only if every referenced column maps.
        let o =
            Predicate::Eq("a".into(), Datum::Int(1)).or(Predicate::Eq("b".into(), Datum::Int(2)));
        assert_eq!(o.push_down(&avail), Predicate::True);
        let both = |c: &str| Some(format!("r.{c}"));
        assert_eq!(
            o.push_down(&both),
            Predicate::Eq("r.a".into(), Datum::Int(1))
                .or(Predicate::Eq("r.b".into(), Datum::Int(2)))
        );
        assert_eq!(
            Predicate::True.and_compact(Predicate::True),
            Predicate::True
        );
    }

    #[test]
    fn insert_declassifying_clause() {
        let i = Insert::new("Drives", vec![Datum::Int(1)]).declassifying(&[TagId(5), TagId(9)]);
        assert_eq!(i.declassifying.len(), 2);
    }

    #[test]
    fn join_builders() {
        let j = Join::left_outer("Payment", "Contact", ("userid", "userid"))
            .filter(Predicate::Eq("userid".into(), Datum::Int(1)));
        assert_eq!(j.kind, JoinKind::LeftOuter);
        assert!(matches!(j.predicate, Predicate::Eq(_, _)));
    }
}
