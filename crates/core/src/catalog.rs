//! The catalog: tables, constraints, views, triggers and stored procedures.
//!
//! Schema definition is the administrator's job; note that per Section 3.3
//! the administrator defines tables and constraints but receives no authority
//! to declassify anything — authority comes only from tag ownership and
//! delegation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ifdb_difc::{Label, PrincipalId};
use ifdb_storage::{ColumnDef, DataType, Datum, TableId, TableSchema};

use crate::error::{IfdbError, IfdbResult};
use crate::query::{Join, Select};
use crate::row::ResultSet;
use crate::session::Session;

/// A uniqueness constraint over one or more columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueConstraint {
    /// Constraint name.
    pub name: String,
    /// The constrained columns.
    pub columns: Vec<String>,
}

/// A foreign-key (referential) constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// Referencing columns (in this table).
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
}

/// Computes the label a tuple must carry from the tuple's values.
pub type LabelFromRowFn = Arc<dyn Fn(&[Datum]) -> Label + Send + Sync>;

/// A label constraint (Section 5.2.4): a rule about what label tuples of a
/// table must carry. Simple constraints double as anti-polyinstantiation
/// rules when combined with a uniqueness constraint.
#[derive(Clone)]
pub enum LabelConstraint {
    /// Every tuple's label must contain all of these tags.
    MustContain {
        /// Constraint name.
        name: String,
        /// Tags that must appear in every tuple label.
        label: Label,
    },
    /// Every tuple's label must be exactly the label computed from its
    /// values (e.g. "a record for Alice must have the label
    /// {alice_medical}").
    ExactFromRow {
        /// Constraint name.
        name: String,
        /// Computes the required label from the tuple's values.
        func: LabelFromRowFn,
    },
}

impl LabelConstraint {
    /// The constraint's name.
    pub fn name(&self) -> &str {
        match self {
            LabelConstraint::MustContain { name, .. } => name,
            LabelConstraint::ExactFromRow { name, .. } => name,
        }
    }

    /// Checks a tuple against the constraint.
    pub fn check(&self, table: &str, values: &[Datum], label: &Label) -> IfdbResult<()> {
        match self {
            LabelConstraint::MustContain {
                label: required, ..
            } => {
                if required.is_subset_of(label) {
                    Ok(())
                } else {
                    Err(IfdbError::LabelConstraintViolation {
                        table: table.to_string(),
                        detail: format!("label {label} must contain {required}"),
                    })
                }
            }
            LabelConstraint::ExactFromRow { func, .. } => {
                let required = func(values);
                if &required == label {
                    Ok(())
                } else {
                    Err(IfdbError::LabelConstraintViolation {
                        table: table.to_string(),
                        detail: format!("label {label} must be exactly {required}"),
                    })
                }
            }
        }
    }
}

impl fmt::Debug for LabelConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelConstraint::MustContain { name, label } => f
                .debug_struct("MustContain")
                .field("name", name)
                .field("label", label)
                .finish(),
            LabelConstraint::ExactFromRow { name, .. } => f
                .debug_struct("ExactFromRow")
                .field("name", name)
                .finish_non_exhaustive(),
        }
    }
}

/// The event a trigger fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerEvent {
    /// After a row is inserted.
    Insert,
    /// After a row is updated.
    Update,
    /// After a row is deleted.
    Delete,
}

/// When the trigger body runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerTiming {
    /// Immediately, as part of the triggering statement.
    Immediate,
    /// At transaction commit. Deferred triggers still run with the *label of
    /// the query* that queued them, not the commit label (Section 5.2.3).
    Deferred,
}

/// The data passed to a trigger body.
#[derive(Debug, Clone)]
pub struct TriggerInvocation {
    /// The table the statement targeted.
    pub table: String,
    /// The event.
    pub event: TriggerEvent,
    /// The new row (for inserts and updates).
    pub new: Option<Vec<Datum>>,
    /// The old row (for updates and deletes).
    pub old: Option<Vec<Datum>>,
    /// The process label at the time of the triggering query.
    pub label: Label,
}

/// The body of a trigger: arbitrary code that may issue further statements
/// through the session it is handed.
pub type TriggerBody =
    Arc<dyn Fn(&mut Session, &TriggerInvocation) -> IfdbResult<()> + Send + Sync>;

/// A trigger definition.
#[derive(Clone)]
pub struct TriggerDef {
    /// Trigger name.
    pub name: String,
    /// Table it is attached to.
    pub table: String,
    /// Events it fires on.
    pub events: Vec<TriggerEvent>,
    /// When the body runs.
    pub timing: TriggerTiming,
    /// If set, the trigger is a *stored authority closure* (Section 4.3): the
    /// body runs with this principal's authority instead of the caller's.
    pub authority: Option<PrincipalId>,
    /// The body.
    pub body: TriggerBody,
}

impl fmt::Debug for TriggerDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TriggerDef")
            .field("name", &self.name)
            .field("table", &self.table)
            .field("events", &self.events)
            .field("timing", &self.timing)
            .field("authority", &self.authority)
            .finish_non_exhaustive()
    }
}

/// What a view selects from.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewSource {
    /// A single-table (or single-view) select.
    Select(Select),
    /// A two-way join.
    Join(Join),
}

/// A view definition. Ordinary views have an empty `declassifies` label;
/// *declassifying views* (Section 4.3) additionally remove the given tags
/// from the labels of the tuples they expose, exercising the authority of the
/// principal that was bound into the view at creation time.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// The underlying query.
    pub source: ViewSource,
    /// Tags this view declassifies.
    pub declassifies: Label,
    /// The principal whose authority was bound into the view (checked at
    /// creation).
    pub authority: Option<PrincipalId>,
}

impl ViewDef {
    /// Returns `true` if this is a declassifying view.
    pub fn is_declassifying(&self) -> bool {
        !self.declassifies.is_empty()
    }
}

/// The body of a stored procedure.
pub type ProcedureBody = Arc<dyn Fn(&mut Session, &[Datum]) -> IfdbResult<ResultSet> + Send + Sync>;

/// A stored procedure. With `authority: Some(p)` it is a *stored authority
/// closure* and runs as `p`; otherwise it runs with the caller's authority.
#[derive(Clone)]
pub struct StoredProcedure {
    /// Procedure name.
    pub name: String,
    /// Bound principal, if this is an authority closure.
    pub authority: Option<PrincipalId>,
    /// The body.
    pub body: ProcedureBody,
}

impl fmt::Debug for StoredProcedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoredProcedure")
            .field("name", &self.name)
            .field("authority", &self.authority)
            .finish_non_exhaustive()
    }
}

/// A secondary index registered on a table, visible to the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name (unique per table).
    pub name: String,
    /// Indexed columns, in key order.
    pub columns: Vec<String>,
}

/// Everything the catalog records about one table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Storage-engine table id.
    pub id: TableId,
    /// The schema.
    pub schema: TableSchema,
    /// Primary-key columns (always unique).
    pub primary_key: Vec<String>,
    /// Additional uniqueness constraints.
    pub uniques: Vec<UniqueConstraint>,
    /// Foreign keys from this table.
    pub foreign_keys: Vec<ForeignKey>,
    /// Label constraints.
    pub label_constraints: Vec<LabelConstraint>,
    /// Name of the primary-key index, if one was created.
    pub pk_index: Option<String>,
    /// Secondary indexes available to the planner.
    pub indexes: Vec<IndexSpec>,
    /// Set for tables reconstructed by `Database::open` whose constraint
    /// metadata (uniques, foreign keys, label constraints — code, not
    /// logged data) has not been re-attached yet. While set, writes to the
    /// table are refused; re-running the first-boot
    /// `Database::create_table` clears it.
    pub constraints_pending: bool,
}

impl TableInfo {
    /// Every index available on this table: the primary-key index first
    /// (point lookups on it are unique), then secondary indexes in creation
    /// order.
    pub fn index_specs(&self) -> Vec<(&str, &[String])> {
        let mut out = Vec::new();
        if let Some(pk) = &self.pk_index {
            out.push((pk.as_str(), self.primary_key.as_slice()));
        }
        for idx in &self.indexes {
            out.push((idx.name.as_str(), idx.columns.as_slice()));
        }
        out
    }

    /// The name of an index whose key is exactly `cols`, if one exists.
    pub fn index_on(&self, cols: &[String]) -> Option<&str> {
        self.index_specs()
            .into_iter()
            .find(|(_, c)| *c == cols)
            .map(|(n, _)| n)
    }

    /// The schema's column names, in order.
    pub fn column_names(&self) -> Vec<String> {
        self.schema.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// A declarative table definition handed to
/// [`crate::database::Database::create_table`].
#[derive(Debug, Clone, Default)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnDef>,
    /// Primary-key columns.
    pub primary_key: Vec<String>,
    /// Extra uniqueness constraints.
    pub uniques: Vec<UniqueConstraint>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// Label constraints.
    pub label_constraints: Vec<LabelConstraint>,
    /// Secondary indexes to create with the table.
    pub indexes: Vec<IndexSpec>,
}

impl TableDef {
    /// Starts a definition with the given name.
    pub fn new(name: &str) -> Self {
        TableDef {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a non-nullable column.
    pub fn column(mut self, name: &str, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: &str, ty: DataType) -> Self {
        self.columns.push(ColumnDef::nullable(name, ty));
        self
    }

    /// Sets the primary key.
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        self.primary_key = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Adds a secondary index over the given columns.
    pub fn secondary_index(mut self, name: &str, columns: &[&str]) -> Self {
        self.indexes.push(IndexSpec {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Adds a uniqueness constraint.
    pub fn unique(mut self, name: &str, columns: &[&str]) -> Self {
        self.uniques.push(UniqueConstraint {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Adds a foreign key.
    pub fn foreign_key(
        mut self,
        name: &str,
        columns: &[&str],
        ref_table: &str,
        ref_columns: &[&str],
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_columns.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Adds a must-contain label constraint.
    pub fn label_must_contain(mut self, name: &str, label: Label) -> Self {
        self.label_constraints.push(LabelConstraint::MustContain {
            name: name.to_string(),
            label,
        });
        self
    }

    /// Adds an exact label constraint computed from the row.
    pub fn label_exact_from_row(
        mut self,
        name: &str,
        func: impl Fn(&[Datum]) -> Label + Send + Sync + 'static,
    ) -> Self {
        self.label_constraints.push(LabelConstraint::ExactFromRow {
            name: name.to_string(),
            func: Arc::new(func),
        });
        self
    }
}

/// The catalog proper.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<TableInfo>>,
    views: HashMap<String, Arc<ViewDef>>,
    triggers: HashMap<String, Vec<Arc<TriggerDef>>>,
    procedures: HashMap<String, Arc<StoredProcedure>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table.
    pub fn add_table(&mut self, info: TableInfo) {
        self.tables.insert(info.schema.name.clone(), Arc::new(info));
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> IfdbResult<Arc<TableInfo>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| IfdbError::UnknownTable(name.to_string()))
    }

    /// Removes a table's catalog entry (used when a replica reset discarded
    /// the engine-level table; the entry will be re-added by the catalog
    /// resync once the table streams back in).
    pub fn remove_table(&mut self, name: &str) {
        self.tables.remove(name);
    }

    /// Returns `true` if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Every table name.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Name of some table still awaiting its post-recovery DDL re-run, if
    /// any. While such a table exists, [`Catalog::referencing`] is
    /// incomplete — the pending table's foreign keys are unknown, so it
    /// could reference any other table without appearing in the result.
    pub fn first_constraints_pending(&self) -> Option<String> {
        self.tables
            .values()
            .find(|t| t.constraints_pending)
            .map(|t| t.schema.name.clone())
    }

    /// Tables whose foreign keys reference `table`.
    pub fn referencing(&self, table: &str) -> Vec<(Arc<TableInfo>, ForeignKey)> {
        let mut out = Vec::new();
        for info in self.tables.values() {
            for fk in &info.foreign_keys {
                if fk.ref_table == table {
                    out.push((info.clone(), fk.clone()));
                }
            }
        }
        out
    }

    /// Registers a view.
    pub fn add_view(&mut self, view: ViewDef) {
        self.views.insert(view.name.clone(), Arc::new(view));
    }

    /// Looks up a view.
    pub fn view(&self, name: &str) -> IfdbResult<Arc<ViewDef>> {
        self.views
            .get(name)
            .cloned()
            .ok_or_else(|| IfdbError::UnknownView(name.to_string()))
    }

    /// Returns `true` if a view with this name exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Registers a trigger on its table.
    pub fn add_trigger(&mut self, trigger: TriggerDef) {
        self.triggers
            .entry(trigger.table.clone())
            .or_default()
            .push(Arc::new(trigger));
    }

    /// Triggers attached to `table` that fire on `event`.
    pub fn triggers_for(&self, table: &str, event: TriggerEvent) -> Vec<Arc<TriggerDef>> {
        self.triggers
            .get(table)
            .map(|v| {
                v.iter()
                    .filter(|t| t.events.contains(&event))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Registers a stored procedure.
    pub fn add_procedure(&mut self, proc: StoredProcedure) {
        self.procedures.insert(proc.name.clone(), Arc::new(proc));
    }

    /// Looks up a stored procedure.
    pub fn procedure(&self, name: &str) -> IfdbResult<Arc<StoredProcedure>> {
        self.procedures
            .get(name)
            .cloned()
            .ok_or_else(|| IfdbError::UnknownProcedure(name.to_string()))
    }

    /// Number of registered views that declassify, plus authority-closure
    /// triggers and procedures — the "code that runs with authority" counted
    /// by the trusted-base report (Section 6.3).
    pub fn trusted_component_count(&self) -> usize {
        let declassifying_views = self.views.values().filter(|v| v.is_declassifying()).count();
        let closure_triggers = self
            .triggers
            .values()
            .flatten()
            .filter(|t| t.authority.is_some())
            .count();
        let closure_procs = self
            .procedures
            .values()
            .filter(|p| p.authority.is_some())
            .count();
        declassifying_views + closure_triggers + closure_procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb_difc::TagId;

    #[test]
    fn table_def_builder() {
        let def = TableDef::new("Drives")
            .column("driveid", DataType::Int)
            .column("carid", DataType::Int)
            .nullable_column("distance", DataType::Float)
            .primary_key(&["driveid"])
            .unique("drives_unique_car_start", &["carid", "driveid"])
            .foreign_key("drives_carid_fkey", &["carid"], "Cars", &["carid"])
            .label_must_contain("drives_labeled", Label::singleton(TagId(1)));
        assert_eq!(def.columns.len(), 3);
        assert_eq!(def.primary_key, vec!["driveid"]);
        assert_eq!(def.uniques.len(), 1);
        assert_eq!(def.foreign_keys.len(), 1);
        assert_eq!(def.label_constraints.len(), 1);
    }

    #[test]
    fn label_constraints_check() {
        let must = LabelConstraint::MustContain {
            name: "c".into(),
            label: Label::singleton(TagId(7)),
        };
        assert!(must
            .check("t", &[], &Label::from_tags([TagId(7), TagId(8)]))
            .is_ok());
        assert!(must.check("t", &[], &Label::empty()).is_err());

        let exact = LabelConstraint::ExactFromRow {
            name: "e".into(),
            func: Arc::new(|row: &[Datum]| {
                // Tag id derived from the first column.
                Label::singleton(TagId(row[0].as_int().unwrap() as u64))
            }),
        };
        assert!(exact
            .check("t", &[Datum::Int(5)], &Label::singleton(TagId(5)))
            .is_ok());
        assert!(exact
            .check("t", &[Datum::Int(5)], &Label::singleton(TagId(6)))
            .is_err());
        assert_eq!(exact.name(), "e");
    }

    #[test]
    fn referencing_lookup() {
        let mut cat = Catalog::new();
        cat.add_table(TableInfo {
            id: TableId(1),
            schema: TableSchema::new("Cars", vec![ColumnDef::new("carid", DataType::Int)]),
            primary_key: vec!["carid".into()],
            uniques: vec![],
            foreign_keys: vec![],
            label_constraints: vec![],
            pk_index: None,
            indexes: vec![],
            constraints_pending: false,
        });
        cat.add_table(TableInfo {
            id: TableId(2),
            schema: TableSchema::new(
                "Drives",
                vec![
                    ColumnDef::new("driveid", DataType::Int),
                    ColumnDef::new("carid", DataType::Int),
                ],
            ),
            primary_key: vec!["driveid".into()],
            uniques: vec![],
            foreign_keys: vec![ForeignKey {
                name: "drives_carid_fkey".into(),
                columns: vec!["carid".into()],
                ref_table: "Cars".into(),
                ref_columns: vec!["carid".into()],
            }],
            label_constraints: vec![],
            pk_index: None,
            indexes: vec![],
            constraints_pending: false,
        });
        let refs = cat.referencing("Cars");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].1.name, "drives_carid_fkey");
        assert!(cat.referencing("Drives").is_empty());
        assert!(cat.has_table("Cars"));
        assert!(!cat.has_table("Nope"));
        assert!(cat.table("Nope").is_err());
    }

    #[test]
    fn trusted_component_count_counts_authority_bearing_objects() {
        let mut cat = Catalog::new();
        cat.add_view(ViewDef {
            name: "PCMembers".into(),
            source: ViewSource::Select(Select::star("ContactInfo")),
            declassifies: Label::singleton(TagId(3)),
            authority: Some(PrincipalId(1)),
        });
        cat.add_view(ViewDef {
            name: "PlainView".into(),
            source: ViewSource::Select(Select::star("ContactInfo")),
            declassifies: Label::empty(),
            authority: None,
        });
        cat.add_trigger(TriggerDef {
            name: "driveupdate".into(),
            table: "Locations".into(),
            events: vec![TriggerEvent::Insert],
            timing: TriggerTiming::Immediate,
            authority: Some(PrincipalId(2)),
            body: Arc::new(|_, _| Ok(())),
        });
        cat.add_procedure(StoredProcedure {
            name: "traffic_stats".into(),
            authority: None,
            body: Arc::new(|_, _| Ok(ResultSet::default())),
        });
        assert_eq!(cat.trusted_component_count(), 2);
        assert_eq!(cat.triggers_for("Locations", TriggerEvent::Insert).len(), 1);
        assert!(cat
            .triggers_for("Locations", TriggerEvent::Delete)
            .is_empty());
        assert!(cat.view("PCMembers").unwrap().is_declassifying());
        assert!(!cat.view("PlainView").unwrap().is_declassifying());
        assert!(cat.procedure("traffic_stats").is_ok());
        assert!(cat.procedure("missing").is_err());
    }
}
