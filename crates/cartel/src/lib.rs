//! CarTel: the mobile sensor network case study (Section 6.1).
//!
//! CarTel collects GPS measurements from users' cars and shows each user maps
//! and statistics about their drives and their friends' drives. This crate is
//! the ported, IFDB-backed version of the application described in the paper:
//!
//! * [`schema`] — the Users / Cars / Locations / LocationsLatest / Drives /
//!   Friends tables and their constraints.
//! * [`policy`] — tags (`<user>_drives`, `<user>_location`), the
//!   `all_drives` / `all_locations` compound tags, closure principals, and
//!   the delegations that define the confidentiality policy.
//! * [`gps`] — a synthetic GPS trace generator standing in for the paper's
//!   18 GB of real CarTel data.
//! * [`ingest`] — the sensor-ingest path: 200 inserts per transaction, two
//!   authority-closure triggers maintaining Drives and LocationsLatest.
//! * [`scripts`] — the web scripts of Figure 3 (`get_cars.php`, `cars.php`,
//!   `drives.php`, `drives_top.php`, `friends.php`, `edit_account.php`,
//!   `login.php`), registered on the platform's [`ifdb_platform::AppServer`].

pub mod gps;
pub mod ingest;
pub mod policy;
pub mod schema;
pub mod scripts;

use std::sync::Arc;
use std::time::Duration;

use ifdb::{Database, DatabaseConfig};
use ifdb_platform::{AppServer, Authenticator, ServerConfig};

pub use gps::{GpsMeasurement, TraceGenerator};
pub use ingest::SensorIngest;
pub use policy::{CartelPolicy, UserHandle};

/// Configuration for building a CarTel deployment.
#[derive(Debug, Clone)]
pub struct CartelConfig {
    /// Number of registered users.
    pub users: usize,
    /// Cars per user.
    pub cars_per_user: usize,
    /// GPS measurements to preload per car.
    pub measurements_per_car: usize,
    /// Whether DIFC is enabled (false reproduces the PostgreSQL+PHP
    /// baseline).
    pub difc: bool,
    /// Simulated per-request platform CPU cost (base).
    pub base_request_cost: Duration,
    /// Simulated additional per-request cost of the IF platform layer.
    pub ifc_request_cost: Duration,
    /// RNG seed for users, traces and the authority state.
    pub seed: u64,
}

impl Default for CartelConfig {
    fn default() -> Self {
        CartelConfig {
            users: 8,
            cars_per_user: 2,
            measurements_per_car: 50,
            difc: true,
            base_request_cost: Duration::ZERO,
            ifc_request_cost: Duration::ZERO,
            seed: 0xCA87E1,
        }
    }
}

/// A complete CarTel deployment: database, policy, ingest daemon, and web
/// application server.
pub struct CartelApp {
    /// The IFDB (or baseline) database.
    pub db: Database,
    /// The confidentiality policy: users, tags, closures, delegations.
    pub policy: Arc<CartelPolicy>,
    /// The sensor ingest daemon.
    pub ingest: SensorIngest,
    /// The web application server with all scripts registered.
    pub server: Arc<AppServer>,
}

impl CartelApp {
    /// Builds a deployment: creates the schema, the policy, the triggers, the
    /// web scripts, and preloads synthetic users, cars and GPS history.
    pub fn build(config: &CartelConfig) -> Self {
        let db = Database::new(
            DatabaseConfig::in_memory()
                .with_difc(config.difc)
                .with_seed(config.seed),
        );
        schema::create_schema(&db).expect("schema creation");
        let policy = Arc::new(CartelPolicy::bootstrap(&db, config.users, config.seed));
        ingest::register_triggers(&db, policy.clone()).expect("trigger registration");

        // Register cars and load GPS history through the real ingest path.
        let ingest = SensorIngest::new(db.clone(), policy.clone());
        let mut generator = TraceGenerator::new(config.seed);
        for user in policy.users() {
            for c in 0..config.cars_per_user {
                let carid = user.userid * 100 + c as i64;
                ingest
                    .register_car(user, carid, &format!("{}-car-{}", user.username, c))
                    .expect("car registration");
                if config.measurements_per_car > 0 {
                    let trace = generator.trace(carid, user.userid, config.measurements_per_car);
                    ingest.ingest(&trace).expect("trace ingest");
                }
            }
        }

        let authenticator = Arc::new(Authenticator::new());
        for user in policy.users() {
            authenticator.register(&user.username, &user.password, user.principal);
        }
        let server = Arc::new(AppServer::new(
            db.clone(),
            authenticator,
            ServerConfig {
                base_request_cost: config.base_request_cost,
                ifc_request_cost: config.ifc_request_cost,
                ifc_enabled: config.difc,
            },
        ));
        scripts::register_scripts(&server, policy.clone());

        CartelApp {
            db,
            policy,
            ingest,
            server,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifdb_platform::Request;

    fn small_app() -> CartelApp {
        CartelApp::build(&CartelConfig {
            users: 3,
            cars_per_user: 1,
            measurements_per_car: 10,
            ..Default::default()
        })
    }

    #[test]
    fn build_loads_users_cars_and_history() {
        let app = small_app();
        assert_eq!(app.policy.users().len(), 3);
        let stats = app.db.engine().stats();
        // 3 users * 1 car * 10 measurements inserted, plus cars/users rows
        // and trigger-maintained Drives/LocationsLatest rows.
        assert!(stats.tuples_inserted >= 30);
    }

    #[test]
    fn owner_sees_their_drives_via_web() {
        let app = small_app();
        let user = &app.policy.users()[0];
        let resp = app.server.handle(
            &Request::new("drives.php")
                .as_user(&user.username)
                .param("user", &user.username),
        );
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        assert!(!resp.body.is_empty(), "owner should see drive rows");
    }

    #[test]
    fn url_manipulation_cannot_reveal_non_friend_drives() {
        // The Section 6.1 "friend" bug: manipulating the URL to request
        // another user's drives. Under IFDB the script becomes contaminated
        // with a tag it cannot declassify and produces no output.
        let app = small_app();
        let alice = &app.policy.users()[0];
        let bob = &app.policy.users()[1];
        let resp = app.server.handle(
            &Request::new("drives.php")
                .as_user(&alice.username)
                .param("user", &bob.username),
        );
        assert!(resp.body.is_empty(), "no drive data may be revealed");
    }

    #[test]
    fn friends_can_see_each_others_drives_after_delegation() {
        let app = small_app();
        let alice = &app.policy.users()[0];
        let bob = &app.policy.users()[1];
        // Bob adds Alice as a friend, delegating his drives tag to her.
        let resp = app.server.handle(
            &Request::new("friends.php")
                .as_user(&bob.username)
                .param("add", &alice.username),
        );
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        // Now Alice may view Bob's drives.
        let resp = app.server.handle(
            &Request::new("drives.php")
                .as_user(&alice.username)
                .param("user", &bob.username),
        );
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        assert!(!resp.body.is_empty());
    }

    #[test]
    fn unauthenticated_scripts_produce_no_location_data() {
        let app = small_app();
        let user = &app.policy.users()[0];
        for script in ["cars.php", "get_cars.php", "drives.php"] {
            let resp = app
                .server
                .handle(&Request::new(script).param("user", &user.username));
            assert!(
                resp.body.is_empty(),
                "{script} must not leak to unauthenticated clients"
            );
        }
    }

    #[test]
    fn traffic_summary_is_declassified_for_everyone() {
        let app = small_app();
        let user = &app.policy.users()[0];
        let resp = app
            .server
            .handle(&Request::new("drives_top.php").as_user(&user.username));
        assert!(resp.is_ok(), "error: {:?}", resp.error);
        assert!(!resp.body.is_empty(), "aggregate statistics are public");
    }

    #[test]
    fn baseline_mode_runs_the_same_workload() {
        let app = CartelApp::build(&CartelConfig {
            users: 2,
            cars_per_user: 1,
            measurements_per_car: 5,
            difc: false,
            ..Default::default()
        });
        let user = &app.policy.users()[0];
        let resp = app.server.handle(
            &Request::new("drives.php")
                .as_user(&user.username)
                .param("user", &user.username),
        );
        assert!(resp.is_ok());
    }
}
