//! The CarTel database schema.

use ifdb::prelude::*;
use ifdb::{IfdbResult, TableDef};

/// Creates every CarTel table.
///
/// Labeling strategy (Section 6.1): raw `Locations` measurements carry
/// `{<user>_drives, <user>_location}`; the derived `Drives` summaries carry
/// `{<user>_drives}`; `LocationsLatest` carries both (it *is* current
/// location data); `Users`, `Cars` and `Friends` are public.
pub fn create_schema(db: &Database) -> IfdbResult<()> {
    db.create_table(
        TableDef::new("Users")
            .column("userid", DataType::Int)
            .column("username", DataType::Text)
            .column("email", DataType::Text)
            .primary_key(&["userid"])
            .unique("users_username_key", &["username"]),
    )?;
    db.create_table(
        TableDef::new("Cars")
            .column("carid", DataType::Int)
            .column("userid", DataType::Int)
            .column("name", DataType::Text)
            .primary_key(&["carid"])
            .foreign_key("cars_userid_fkey", &["userid"], "Users", &["userid"]),
    )?;
    db.create_table(
        TableDef::new("Locations")
            .column("locid", DataType::Int)
            .column("carid", DataType::Int)
            .column("lat", DataType::Float)
            .column("lon", DataType::Float)
            .column("speed", DataType::Float)
            .column("ts", DataType::Timestamp)
            .primary_key(&["locid"])
            .foreign_key("locations_carid_fkey", &["carid"], "Cars", &["carid"]),
    )?;
    db.create_table(
        TableDef::new("LocationsLatest")
            .column("carid", DataType::Int)
            .column("lat", DataType::Float)
            .column("lon", DataType::Float)
            .column("ts", DataType::Timestamp)
            .primary_key(&["carid"]),
    )?;
    db.create_table(
        TableDef::new("Drives")
            .column("driveid", DataType::Int)
            .column("carid", DataType::Int)
            .column("userid", DataType::Int)
            .column("points", DataType::Int)
            .column("distance", DataType::Float)
            .column("start_ts", DataType::Timestamp)
            .column("end_ts", DataType::Timestamp)
            .primary_key(&["driveid"]),
    )?;
    db.create_table(
        TableDef::new("Friends")
            .column("userid", DataType::Int)
            .column("friendid", DataType::Int)
            .primary_key(&["userid", "friendid"])
            .foreign_key("friends_userid_fkey", &["userid"], "Users", &["userid"])
            .foreign_key("friends_friendid_fkey", &["friendid"], "Users", &["userid"]),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_creates_all_tables() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let mut names = db.engine().table_names();
        names.sort();
        assert_eq!(
            names,
            vec![
                "Cars",
                "Drives",
                "Friends",
                "Locations",
                "LocationsLatest",
                "Users"
            ]
        );
    }

    #[test]
    fn schema_is_not_reentrant_but_engine_allows_lookup() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        assert!(db.engine().table_by_name("Drives").is_ok());
        assert!(db.engine().table_by_name("Nope").is_err());
    }
}
