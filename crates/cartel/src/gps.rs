//! Synthetic GPS traces.
//!
//! The paper's evaluation replays 177 million real location measurements; we
//! have no access to that data set, so this module generates random-walk
//! drives with plausible speeds and timestamps. The queries and triggers
//! exercised by the ingest path are identical; only the coordinates are
//! synthetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One GPS measurement from a car.
#[derive(Debug, Clone, PartialEq)]
pub struct GpsMeasurement {
    /// The reporting car.
    pub carid: i64,
    /// The car's owner (used by the ingest daemon to pick labels).
    pub userid: i64,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Speed in km/h.
    pub speed: f64,
    /// Timestamp in microseconds since the epoch.
    pub ts: i64,
}

/// Generates random-walk traces.
pub struct TraceGenerator {
    rng: StdRng,
    next_ts: i64,
}

impl TraceGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            rng: StdRng::seed_from_u64(seed),
            // An arbitrary but fixed epoch: 2011-01-01 00:00:00 UTC in
            // microseconds, the era of the paper's data set.
            next_ts: 1_293_840_000_000_000,
        }
    }

    /// Generates a trace of `points` measurements for one car.
    pub fn trace(&mut self, carid: i64, userid: i64, points: usize) -> Vec<GpsMeasurement> {
        let mut lat = 42.36 + self.rng.gen_range(-0.2..0.2);
        let mut lon = -71.06 + self.rng.gen_range(-0.2..0.2);
        let mut out = Vec::with_capacity(points);
        for _ in 0..points {
            lat += self.rng.gen_range(-0.001..0.001);
            lon += self.rng.gen_range(-0.001..0.001);
            let speed = self.rng.gen_range(0.0..110.0);
            self.next_ts += self.rng.gen_range(1_000_000i64..30_000_000);
            out.push(GpsMeasurement {
                carid,
                userid,
                lat,
                lon,
                speed,
                ts: self.next_ts,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let mut a = TraceGenerator::new(7);
        let mut b = TraceGenerator::new(7);
        assert_eq!(a.trace(1, 1, 5), b.trace(1, 1, 5));
        let mut c = TraceGenerator::new(8);
        assert_ne!(a.trace(1, 1, 5), c.trace(1, 1, 5));
    }

    #[test]
    fn timestamps_increase_and_fields_plausible() {
        let mut g = TraceGenerator::new(1);
        let t = g.trace(5, 2, 100);
        assert_eq!(t.len(), 100);
        for w in t.windows(2) {
            assert!(w[1].ts > w[0].ts);
        }
        for m in &t {
            assert_eq!(m.carid, 5);
            assert_eq!(m.userid, 2);
            assert!(m.speed >= 0.0 && m.speed < 120.0);
            assert!(m.lat > 40.0 && m.lat < 45.0);
        }
    }
}
