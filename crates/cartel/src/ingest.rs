//! The sensor ingest path (Section 8.2.2).
//!
//! For each GPS measurement a tuple is inserted into `Locations` and two
//! triggers fire: one maintains `LocationsLatest`, the other maintains the
//! `Drives` summary. CarTel issues 200 inserts per transaction. Both triggers
//! run as stored authority closures so that they can do their work without
//! leaving the inserting process contaminated; the ingest daemon itself is
//! the small piece of trusted code that labels incoming data correctly.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use ifdb::prelude::*;
use ifdb::{IfdbResult, TriggerDef, TriggerEvent, TriggerTiming};

use crate::gps::GpsMeasurement;
use crate::policy::{CartelPolicy, UserHandle};

/// Number of measurements inserted per transaction, as in the paper.
pub const INSERTS_PER_TXN: usize = 200;

/// A drive is split when consecutive points are farther apart than this many
/// microseconds (10 minutes).
const DRIVE_GAP_US: i64 = 10 * 60 * 1_000_000;

/// Registers the two ingest triggers on the `Locations` table.
pub fn register_triggers(db: &Database, policy: Arc<CartelPolicy>) -> IfdbResult<()> {
    // Trigger 1: maintain LocationsLatest (labeled like the raw measurement).
    let p1 = policy.clone();
    db.create_trigger(TriggerDef {
        name: "locations_latest".into(),
        table: "Locations".into(),
        events: vec![TriggerEvent::Insert],
        timing: TriggerTiming::Immediate,
        authority: Some(policy.driveupdate_principal),
        body: Arc::new(move |session, inv| {
            let new = inv.new.as_ref().expect("insert trigger has a new row");
            let carid = new[1].clone();
            let (lat, lon, ts) = (new[2].clone(), new[3].clone(), new[5].clone());
            let _ = &p1;
            let existing = session.select(
                &Select::star("LocationsLatest")
                    .filter(Predicate::Eq("carid".into(), carid.clone())),
            )?;
            if existing.is_empty() {
                session.insert(&Insert::new("LocationsLatest", vec![carid, lat, lon, ts]))?;
            } else {
                session.update(&Update::new(
                    "LocationsLatest",
                    Predicate::Eq("carid".into(), carid),
                    vec![("lat", lat), ("lon", lon), ("ts", ts)],
                ))?;
            }
            Ok(())
        }),
    })?;

    // Trigger 2: maintain the Drives summary. The closure has authority for
    // the location tags (via the all_locations compound) and declassifies
    // them before writing, so Drives rows carry only the drives tag — and it
    // cannot declassify the drives tag, so whatever it writes stays protected
    // (the property highlighted in Section 6.1).
    let p2 = policy.clone();
    db.create_trigger(TriggerDef {
        name: "driveupdate".into(),
        table: "Locations".into(),
        events: vec![TriggerEvent::Insert],
        timing: TriggerTiming::Immediate,
        authority: Some(policy.driveupdate_principal),
        body: Arc::new(move |session, inv| {
            let new = inv.new.as_ref().expect("insert trigger has a new row");
            let carid = new[1].as_int().unwrap_or(0);
            let speed = new[4].as_float().unwrap_or(0.0);
            let ts = new[5].as_timestamp().unwrap_or(0);
            let Some((_, location_tag)) = p2.tags_for_car(carid) else {
                return Ok(());
            };
            let Some(owner) = p2.owner_of_car(carid) else {
                return Ok(());
            };
            // Drop the location contamination so the Drives write carries
            // only the drives tag.
            if session.label().contains(location_tag) {
                session.declassify(location_tag)?;
            }
            let drives = session.select(
                &Select::star("Drives")
                    .filter(Predicate::Eq("carid".into(), Datum::Int(carid)))
                    .order("end_ts", Order::Desc),
            )?;
            let latest = drives.first();
            let start_new_drive = match latest {
                None => true,
                Some(row) => {
                    let end = row.get("end_ts").and_then(Datum::as_timestamp).unwrap_or(0);
                    ts - end > DRIVE_GAP_US
                }
            };
            if start_new_drive {
                let driveid = carid * 100_000 + drives.len() as i64 + 1;
                session.insert(&Insert::new(
                    "Drives",
                    vec![
                        Datum::Int(driveid),
                        Datum::Int(carid),
                        Datum::Int(owner),
                        Datum::Int(1),
                        Datum::Float(0.0),
                        Datum::Timestamp(ts),
                        Datum::Timestamp(ts),
                    ],
                ))?;
            } else {
                let row = latest.expect("non-empty");
                let driveid = row.get_int("driveid").unwrap_or(0);
                let points = row.get_int("points").unwrap_or(0) + 1;
                let end_prev = row
                    .get("end_ts")
                    .and_then(Datum::as_timestamp)
                    .unwrap_or(ts);
                let dt_hours = (ts - end_prev).max(0) as f64 / 3.6e9;
                let distance = row.get_float("distance").unwrap_or(0.0) + speed * dt_hours;
                session.update(&Update::new(
                    "Drives",
                    Predicate::Eq("driveid".into(), Datum::Int(driveid)),
                    vec![
                        ("points", Datum::Int(points)),
                        ("distance", Datum::Float(distance)),
                        ("end_ts", Datum::Timestamp(ts)),
                    ],
                ))?;
            }
            Ok(())
        }),
    })?;
    Ok(())
}

/// The ingest daemon: trusted code that labels incoming measurements and
/// replays them into the database.
pub struct SensorIngest {
    db: Database,
    policy: Arc<CartelPolicy>,
    next_locid: AtomicI64,
}

impl SensorIngest {
    /// Creates an ingest daemon.
    pub fn new(db: Database, policy: Arc<CartelPolicy>) -> Self {
        SensorIngest {
            db,
            policy,
            next_locid: AtomicI64::new(1),
        }
    }

    /// Registers a user's car (and the user row itself, if missing). Account
    /// and car registration data are public in this deployment.
    pub fn register_car(&self, user: &UserHandle, carid: i64, name: &str) -> IfdbResult<()> {
        let mut session = self.db.session(self.policy.ingest_principal);
        let existing = session.select(
            &Select::star("Users").filter(Predicate::Eq("userid".into(), Datum::Int(user.userid))),
        )?;
        if existing.is_empty() {
            session.insert(&Insert::new(
                "Users",
                vec![
                    Datum::Int(user.userid),
                    Datum::from(user.username.as_str()),
                    Datum::Text(format!("{}@cartel.example", user.username)),
                ],
            ))?;
        }
        session.insert(&Insert::new(
            "Cars",
            vec![
                Datum::Int(carid),
                Datum::Int(user.userid),
                Datum::from(name),
            ],
        ))?;
        self.policy.record_car(carid, user.userid);
        Ok(())
    }

    /// Replays measurements into the database, [`INSERTS_PER_TXN`] at a time,
    /// labeling each tuple `{<owner>_drives, <owner>_location}` and vouching
    /// for the foreign-key reference to the (public) Cars row with a
    /// `DECLASSIFYING` clause. Returns the number of measurements ingested.
    pub fn ingest(&self, measurements: &[GpsMeasurement]) -> IfdbResult<usize> {
        let mut session = self.db.session(self.policy.ingest_principal);
        let mut ingested = 0;
        for batch in measurements.chunks(INSERTS_PER_TXN) {
            session.begin()?;
            for m in batch {
                let Some(user) = self.policy.user_by_id(m.userid) else {
                    continue;
                };
                let target = Label::from_tags([user.drives_tag, user.location_tag]);
                self.set_label(&mut session, &target)?;
                let locid = self.next_locid.fetch_add(1, Ordering::Relaxed);
                session.insert(
                    &Insert::new(
                        "Locations",
                        vec![
                            Datum::Int(locid),
                            Datum::Int(m.carid),
                            Datum::Float(m.lat),
                            Datum::Float(m.lon),
                            Datum::Float(m.speed),
                            Datum::Timestamp(m.ts),
                        ],
                    )
                    .declassifying(&[user.drives_tag, user.location_tag]),
                )?;
                ingested += 1;
            }
            // The daemon holds authority for every tag it raised; it must
            // return to an empty label before the commit point (commit label
            // rule).
            self.set_label(&mut session, &Label::empty())?;
            session.commit()?;
        }
        Ok(ingested)
    }

    /// Moves the session label to exactly `target`, declassifying tags that
    /// must be removed (the daemon holds the necessary authority) and raising
    /// the ones that must be added.
    fn set_label(&self, session: &mut ifdb::Session, target: &Label) -> IfdbResult<()> {
        let current = session.label().clone();
        let to_remove = current.difference(target);
        if !to_remove.is_empty() {
            session.declassify_all(&to_remove)?;
        }
        let to_add = target.difference(&current);
        if !to_add.is_empty() {
            session.raise_label(&to_add)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gps::TraceGenerator;
    use crate::schema::create_schema;

    fn setup() -> (Database, Arc<CartelPolicy>, SensorIngest) {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let policy = Arc::new(CartelPolicy::bootstrap(&db, 2, 9));
        register_triggers(&db, policy.clone()).unwrap();
        let ingest = SensorIngest::new(db.clone(), policy.clone());
        (db, policy, ingest)
    }

    #[test]
    fn ingest_labels_locations_and_maintains_summaries() {
        let (db, policy, ingest) = setup();
        let user = policy.users()[0].clone();
        ingest.register_car(&user, 101, "car").unwrap();
        let mut gen = TraceGenerator::new(3);
        let trace = gen.trace(101, user.userid, 30);
        assert_eq!(ingest.ingest(&trace).unwrap(), 30);

        // The owner can read everything back.
        let mut s = db.session(user.principal);
        s.add_secrecy(user.drives_tag).unwrap();
        s.add_secrecy(user.location_tag).unwrap();
        let locations = s.select(&Select::star("Locations")).unwrap();
        assert_eq!(locations.len(), 30);
        assert_eq!(
            locations.first().unwrap().label,
            Label::from_tags([user.drives_tag, user.location_tag])
        );
        let latest = s.select(&Select::star("LocationsLatest")).unwrap();
        assert_eq!(latest.len(), 1);
        let drives = s.select(&Select::star("Drives")).unwrap();
        assert!(!drives.is_empty());
        // Drives carry only the drives tag.
        assert_eq!(
            drives.first().unwrap().label,
            Label::singleton(user.drives_tag)
        );

        // An outsider sees none of it.
        let mut anon = db.anonymous_session();
        assert!(anon.select(&Select::star("Locations")).unwrap().is_empty());
        assert!(anon.select(&Select::star("Drives")).unwrap().is_empty());
    }

    #[test]
    fn ingest_interleaves_users_without_label_bleed() {
        let (db, policy, ingest) = setup();
        let u0 = policy.users()[0].clone();
        let u1 = policy.users()[1].clone();
        ingest.register_car(&u0, 100, "a").unwrap();
        ingest.register_car(&u1, 200, "b").unwrap();
        let mut gen = TraceGenerator::new(4);
        let mut trace = gen.trace(100, u0.userid, 5);
        trace.extend(gen.trace(200, u1.userid, 5));
        ingest.ingest(&trace).unwrap();

        // Each user's session sees only their own measurements.
        let mut s0 = db.session(u0.principal);
        s0.add_secrecy(u0.drives_tag).unwrap();
        s0.add_secrecy(u0.location_tag).unwrap();
        let rows = s0.select(&Select::star("Locations")).unwrap();
        assert_eq!(rows.len(), 5);
        for r in rows.iter() {
            assert_eq!(r.get_int("carid"), Some(100));
        }
    }

    #[test]
    fn drives_split_on_time_gaps() {
        let (db, policy, ingest) = setup();
        let user = policy.users()[0].clone();
        ingest.register_car(&user, 300, "car").unwrap();
        // Two clusters of points separated by a huge gap → two drives.
        let mut gen = TraceGenerator::new(5);
        let mut trace = gen.trace(300, user.userid, 5);
        let mut second = gen.trace(300, user.userid, 5);
        let gap = DRIVE_GAP_US * 3;
        for m in &mut second {
            m.ts += gap;
        }
        trace.extend(second);
        ingest.ingest(&trace).unwrap();

        let mut s = db.session(user.principal);
        s.add_secrecy(user.drives_tag).unwrap();
        let drives = s.select(&Select::star("Drives")).unwrap();
        assert_eq!(drives.len(), 2, "the time gap should split the drive");
    }
}
