//! The CarTel confidentiality policy: principals, tags and delegations.
//!
//! Each user owns two tags: `<user>_drives` for historical drives and
//! `<user>_location` for current location (Section 6.1). The tags are members
//! of the `all_drives` and `all_locations` compound tags owned by the CarTel
//! service principal, which lets service-side closures (the drive-update
//! trigger, the traffic-statistics procedure, the ingest daemon) operate over
//! every user's data with a single delegation while individual users keep
//! control of their own tags.

use std::collections::HashMap;

use ifdb::prelude::*;
use ifdb::Database;
use parking_lot::RwLock;

/// Everything the application needs to know about one registered user.
#[derive(Debug, Clone)]
pub struct UserHandle {
    /// The user's row id in the Users table.
    pub userid: i64,
    /// The username (also the login name).
    pub username: String,
    /// The password registered with the authenticator.
    pub password: String,
    /// The principal the user's requests act as.
    pub principal: PrincipalId,
    /// Tag protecting the user's historical drives.
    pub drives_tag: TagId,
    /// Tag protecting the user's current location.
    pub location_tag: TagId,
}

/// The instantiated authority schema of a CarTel deployment.
pub struct CartelPolicy {
    users: Vec<UserHandle>,
    by_userid: HashMap<i64, usize>,
    by_username: HashMap<String, usize>,
    /// The CarTel service principal (owns the compound tags).
    pub service: PrincipalId,
    /// Principal bound into the drive-update trigger closure.
    pub driveupdate_principal: PrincipalId,
    /// Principal bound into the traffic-statistics closure.
    pub traffic_stats_principal: PrincipalId,
    /// Principal the ingest daemon acts as.
    pub ingest_principal: PrincipalId,
    /// Compound tag over every user's drives tag.
    pub all_drives: TagId,
    /// Compound tag over every user's location tag.
    pub all_locations: TagId,
    /// Maps a car to its owner, maintained as cars are registered. The
    /// mapping mirrors the public Cars table and exists so triggers can
    /// resolve tags without re-reading the catalog.
    car_owner: RwLock<HashMap<i64, i64>>,
}

impl std::fmt::Debug for CartelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CartelPolicy")
            .field("users", &self.users.len())
            .finish()
    }
}

impl CartelPolicy {
    /// Creates the principals, tags and delegations for `user_count` users.
    ///
    /// This is the ~50 lines of trusted setup code the paper describes: it
    /// labels nothing itself, but it defines who may declassify what.
    pub fn bootstrap(db: &Database, user_count: usize, _seed: u64) -> Self {
        let service = db.create_principal("cartel_service", PrincipalKind::Service);
        let driveupdate_principal = db.create_principal("driveupdate", PrincipalKind::Closure);
        let traffic_stats_principal = db.create_principal("traffic_stats", PrincipalKind::Closure);
        let ingest_principal = db.create_principal("cartel_ingest", PrincipalKind::Service);
        let all_drives = db
            .create_compound_tag(service, "all_drives", &[])
            .expect("compound tag");
        let all_locations = db
            .create_compound_tag(service, "all_locations", &[])
            .expect("compound tag");

        // The service delegates its compound-tag authority to the closures
        // and the ingest daemon. All delegation happens with an empty label.
        let mut service_session = db.session(service);
        service_session
            .delegate(driveupdate_principal, all_locations)
            .expect("delegate all_locations to driveupdate");
        service_session
            .delegate(traffic_stats_principal, all_drives)
            .expect("delegate all_drives to traffic_stats");
        service_session
            .delegate(traffic_stats_principal, all_locations)
            .expect("delegate all_locations to traffic_stats");
        service_session
            .delegate(ingest_principal, all_drives)
            .expect("delegate all_drives to ingest");
        service_session
            .delegate(ingest_principal, all_locations)
            .expect("delegate all_locations to ingest");

        let mut users = Vec::new();
        let mut by_userid = HashMap::new();
        let mut by_username = HashMap::new();
        for i in 0..user_count {
            let username = format!("user{i}");
            let principal = db.create_principal(&username, PrincipalKind::User);
            let drives_tag = db
                .create_tag(principal, &format!("{username}_drives"), &[all_drives])
                .expect("drives tag");
            let location_tag = db
                .create_tag(principal, &format!("{username}_location"), &[all_locations])
                .expect("location tag");
            let handle = UserHandle {
                userid: i as i64 + 1,
                username: username.clone(),
                password: format!("pw-{username}"),
                principal,
                drives_tag,
                location_tag,
            };
            by_userid.insert(handle.userid, users.len());
            by_username.insert(username, users.len());
            users.push(handle);
        }

        CartelPolicy {
            users,
            by_userid,
            by_username,
            service,
            driveupdate_principal,
            traffic_stats_principal,
            ingest_principal,
            all_drives,
            all_locations,
            car_owner: RwLock::new(HashMap::new()),
        }
    }

    /// The registered users.
    pub fn users(&self) -> &[UserHandle] {
        &self.users
    }

    /// Looks up a user by numeric id.
    pub fn user_by_id(&self, userid: i64) -> Option<&UserHandle> {
        self.by_userid.get(&userid).map(|i| &self.users[*i])
    }

    /// Looks up a user by username.
    pub fn user_by_name(&self, username: &str) -> Option<&UserHandle> {
        self.by_username.get(username).map(|i| &self.users[*i])
    }

    /// Records that `carid` belongs to `userid`.
    pub fn record_car(&self, carid: i64, userid: i64) {
        self.car_owner.write().insert(carid, userid);
    }

    /// The owner of a car, if known.
    pub fn owner_of_car(&self, carid: i64) -> Option<i64> {
        self.car_owner.read().get(&carid).copied()
    }

    /// The (drives, location) tags protecting data about `carid`.
    pub fn tags_for_car(&self, carid: i64) -> Option<(TagId, TagId)> {
        let owner = self.owner_of_car(carid)?;
        let user = self.user_by_id(owner)?;
        Some((user.drives_tag, user.location_tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_schema;

    #[test]
    fn bootstrap_creates_users_tags_and_delegations() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let policy = CartelPolicy::bootstrap(&db, 4, 1);
        assert_eq!(policy.users().len(), 4);
        let u = policy.user_by_name("user2").unwrap();
        assert_eq!(u.userid, 3);
        assert!(policy.user_by_name("nobody").is_none());

        // The closures received compound authority: driveupdate may
        // declassify any user's location tag but not their drives tag.
        assert!(db.has_authority(policy.driveupdate_principal, u.location_tag));
        assert!(!db.has_authority(policy.driveupdate_principal, u.drives_tag));
        // The ingest daemon holds both; the traffic-stats closure holds both.
        assert!(db.has_authority(policy.ingest_principal, u.drives_tag));
        assert!(db.has_authority(policy.ingest_principal, u.location_tag));
        assert!(db.has_authority(policy.traffic_stats_principal, u.drives_tag));
        // Users keep full authority over their own tags and none over others.
        assert!(db.has_authority(u.principal, u.drives_tag));
        let other = policy.user_by_name("user0").unwrap();
        assert!(!db.has_authority(u.principal, other.drives_tag));
    }

    #[test]
    fn car_ownership_mapping() {
        let db = Database::in_memory();
        create_schema(&db).unwrap();
        let policy = CartelPolicy::bootstrap(&db, 2, 1);
        policy.record_car(101, 1);
        assert_eq!(policy.owner_of_car(101), Some(1));
        assert!(policy.owner_of_car(999).is_none());
        let (d, l) = policy.tags_for_car(101).unwrap();
        let u = policy.user_by_id(1).unwrap();
        assert_eq!((d, l), (u.drives_tag, u.location_tag));
    }
}
