//! The CarTel web scripts (the request mix of Figure 3).
//!
//! Every script is untrusted application code: it receives a session already
//! bound to the authenticated principal (or the anonymous principal) and can
//! only emit output through the platform's gate. The scripts follow the
//! methodology of Section 6.4: raise the label to read, declassify with the
//! *user's own* authority to respond, and delegate trusted computations over
//! many users' data to stored authority closures.

use std::sync::Arc;

use ifdb::prelude::*;
use ifdb::{IfdbError, StoredProcedure};
use ifdb_platform::{AppServer, Request};

use crate::policy::{CartelPolicy, UserHandle};

fn requesting_user<'a>(
    policy: &'a CartelPolicy,
    session: &dyn ifdb::SessionApi,
    request: &Request,
) -> Option<&'a UserHandle> {
    // The trusted platform already mapped credentials to a principal; the
    // script identifies the user by matching that principal, never by
    // trusting a query parameter.
    let principal = session.principal();
    request
        .user
        .as_ref()
        .and_then(|u| policy.user_by_name(u))
        .filter(|u| u.principal == principal)
        .or_else(|| policy.users().iter().find(|u| u.principal == principal))
}

/// Registers every CarTel script on the server, plus the `traffic_stats`
/// stored authority closure used by `drives_top.php`.
pub fn register_scripts(server: &Arc<AppServer>, policy: Arc<CartelPolicy>) {
    let db = server.database().clone();

    // drives_top.php is backed by a stored authority closure that may read
    // every user's drives (via the all_drives compound) and declassifies the
    // aggregate it returns.
    let stats_policy = policy.clone();
    db.create_procedure(StoredProcedure {
        name: "traffic_stats".into(),
        authority: Some(policy.traffic_stats_principal),
        body: Arc::new(move |session, _args| {
            let all: Vec<TagId> = stats_policy
                .users()
                .iter()
                .flat_map(|u| [u.drives_tag, u.location_tag])
                .collect();
            let label = Label::from_tags(all.iter().copied());
            session.raise_label(&label)?;
            let result = session.select_aggregate(&Aggregate {
                from: "Drives".into(),
                predicate: Predicate::True,
                group_by: Some("carid".into()),
                aggregates: vec![
                    (AggFunc::Count, "driveid".into()),
                    (AggFunc::Sum, "distance".into()),
                ],
            })?;
            session.declassify_all(&label)?;
            Ok(result)
        }),
    })
    .expect("register traffic_stats");

    // login.php — the trusted platform performed authentication; the script
    // only confirms it.
    let p = policy.clone();
    server.register_script(
        "login.php",
        Arc::new(
            move |session, request, out| match requesting_user(&p, session, request) {
                Some(user) => out.emit(session, format!("Welcome, {}", user.username)),
                None => Err(IfdbError::InvalidStatement(
                    "authentication required".into(),
                )),
            },
        ),
    );

    // cars.php / get_cars.php — current locations of the user's cars.
    for name in ["cars.php", "get_cars.php"] {
        let p = policy.clone();
        server.register_script(
            name,
            Arc::new(move |session, request, out| {
                let Some(user) = requesting_user(&p, session, request) else {
                    return Err(IfdbError::InvalidStatement(
                        "authentication required".into(),
                    ));
                };
                let cars = session.select(
                    &Select::star("Cars")
                        .filter(Predicate::Eq("userid".into(), Datum::Int(user.userid))),
                )?;
                session.add_secrecy(user.drives_tag)?;
                session.add_secrecy(user.location_tag)?;
                let mut lines = Vec::new();
                for car in cars.iter() {
                    let carid = car.get_int("carid").unwrap_or(0);
                    let latest = session.select(
                        &Select::star("LocationsLatest")
                            .filter(Predicate::Eq("carid".into(), Datum::Int(carid))),
                    )?;
                    if let Some(row) = latest.first() {
                        lines.push(format!(
                            "car {carid} at ({:.4}, {:.4})",
                            row.get_float("lat").unwrap_or(0.0),
                            row.get_float("lon").unwrap_or(0.0)
                        ));
                    }
                }
                // The user owns both tags, so releasing their own current
                // location to them is an authorized declassification.
                session.declassify(user.location_tag)?;
                session.declassify(user.drives_tag)?;
                for line in lines {
                    out.emit(session, line)?;
                }
                Ok(())
            }),
        );
    }

    // drives.php — the user's drive log, or a friend's if they delegated.
    let p = policy.clone();
    server.register_script(
        "drives.php",
        Arc::new(move |session, request, out| {
            let Some(me) = requesting_user(&p, session, request) else {
                return Err(IfdbError::InvalidStatement(
                    "authentication required".into(),
                ));
            };
            let target = request
                .params
                .get("user")
                .and_then(|u| p.user_by_name(u))
                .unwrap_or(me);
            session.add_secrecy(target.drives_tag)?;
            let drives = session.select(
                &Select::star("Drives")
                    .filter(Predicate::Eq("userid".into(), Datum::Int(target.userid)))
                    .order("end_ts", Order::Desc),
            )?;
            let lines: Vec<String> = drives
                .iter()
                .map(|d| {
                    format!(
                        "drive {} points={} distance={:.2}km",
                        d.get_int("driveid").unwrap_or(0),
                        d.get_int("points").unwrap_or(0),
                        d.get_float("distance").unwrap_or(0.0)
                    )
                })
                .collect();
            // Releasing the drives requires authority for the *target's*
            // drives tag: the owner has it, friends get it by delegation, and
            // anyone else fails here — the URL-manipulation bug of
            // Section 6.1 becomes a silent empty page.
            session.declassify(target.drives_tag)?;
            for line in lines {
                out.emit(session, line)?;
            }
            Ok(())
        }),
    );

    // drives_top.php — common driving patterns across all users, computed by
    // the traffic_stats authority closure.
    server.register_script(
        "drives_top.php",
        Arc::new(move |session, _request, out| {
            let stats = session.call_procedure("traffic_stats", &[])?;
            let mut rows: Vec<(i64, i64, f64)> = stats
                .iter()
                .map(|r| {
                    (
                        r.get_int("carid").unwrap_or(0),
                        r.get_int("count").unwrap_or(0),
                        r.get_float("sum_distance").unwrap_or(0.0),
                    )
                })
                .collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1));
            for (carid, drives, km) in rows.into_iter().take(10) {
                out.emit(
                    session,
                    format!("car {carid}: {drives} drives, {km:.1} km total"),
                )?;
            }
            Ok(())
        }),
    );

    // friends.php — list friends, or add one (which delegates the drives tag
    // so the new friend can see past drives).
    let p = policy.clone();
    server.register_script(
        "friends.php",
        Arc::new(move |session, request, out| {
            let Some(me) = requesting_user(&p, session, request) else {
                return Err(IfdbError::InvalidStatement(
                    "authentication required".into(),
                ));
            };
            if let Some(friend_name) = request.params.get("add") {
                let Some(friend) = p.user_by_name(friend_name) else {
                    return Err(IfdbError::InvalidStatement("no such user".into()));
                };
                session.insert(&Insert::new(
                    "Friends",
                    vec![Datum::Int(me.userid), Datum::Int(friend.userid)],
                ))?;
                // The delegation is the policy decision: the friend may now
                // declassify (and therefore view) my past drives.
                session.delegate(friend.principal, me.drives_tag)?;
                out.emit(session, format!("{} added as friend", friend.username))?;
                return Ok(());
            }
            let friends = session.select(
                &Select::star("Friends")
                    .filter(Predicate::Eq("userid".into(), Datum::Int(me.userid))),
            )?;
            out.emit(session, format!("{} friends", friends.len()))?;
            for f in friends.iter() {
                if let Some(friend) = p.user_by_id(f.get_int("friendid").unwrap_or(0)) {
                    out.emit(session, friend.username.clone())?;
                }
            }
            Ok(())
        }),
    );

    // edit_account.php — update the user's (public) account row.
    let p = policy.clone();
    server.register_script(
        "edit_account.php",
        Arc::new(move |session, request, out| {
            let Some(me) = requesting_user(&p, session, request) else {
                return Err(IfdbError::InvalidStatement(
                    "authentication required".into(),
                ));
            };
            let email = request
                .params
                .get("email")
                .cloned()
                .unwrap_or_else(|| format!("{}@cartel.example", me.username));
            session.update(&Update::new(
                "Users",
                Predicate::Eq("userid".into(), Datum::Int(me.userid)),
                vec![("email", Datum::Text(email.clone()))],
            ))?;
            out.emit(session, format!("account updated: {email}"))?;
            Ok(())
        }),
    );
}

/// The HTTP request mix of Figure 3 (excluding login).
pub fn figure3_mix() -> Vec<(f64, String)> {
    vec![
        (0.50, "get_cars.php".to_string()),
        (0.30, "cars.php".to_string()),
        (0.08, "drives.php".to_string()),
        (0.08, "drives_top.php".to_string()),
        (0.03, "friends.php".to_string()),
        (0.01, "edit_account.php".to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_mix_sums_to_one() {
        let total: f64 = figure3_mix().iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(figure3_mix().len(), 6);
    }
}
