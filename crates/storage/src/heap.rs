//! Table heaps: collections of slotted pages holding tuple versions.
//!
//! A [`TableHeap`] owns the list of pages allocated to one table and goes
//! through the shared buffer pool for every page access, so the cost of
//! reading a tuple reflects whether its page is resident. Updates never
//! modify tuple data in place: they mark the old version superseded by
//! patching `xmax` and insert a new version, exactly as PostgreSQL's MVCC
//! does (Section 7.1 of the paper relies on this to implement Query by Label
//! "at the layer that reads and writes tuples in tables").

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::mvcc::TxnId;
use crate::page::{PageId, PAGE_SIZE};
use crate::store::PageStore;
use crate::tuple::{patch_xmax, TupleVersion};

/// Physical location of a tuple version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId {
    /// Page number within the table.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// The heap of one table.
pub struct TableHeap {
    table_id: u32,
    store: Arc<dyn PageStore>,
    buffer: Arc<BufferPool>,
    /// Pages allocated to this table, in allocation order.
    pages: Mutex<Vec<PageId>>,
    /// Hint: index into `pages` of the page most recently found to have room.
    insert_hint: Mutex<usize>,
}

impl std::fmt::Debug for TableHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHeap")
            .field("table_id", &self.table_id)
            .field("pages", &self.pages.lock().len())
            .finish()
    }
}

impl TableHeap {
    /// Creates an empty heap for `table_id` backed by `store` and cached by
    /// `buffer`.
    pub fn new(table_id: u32, store: Arc<dyn PageStore>, buffer: Arc<BufferPool>) -> Self {
        TableHeap {
            table_id,
            store,
            buffer,
            pages: Mutex::new(Vec::new()),
            insert_hint: Mutex::new(0),
        }
    }

    /// The table this heap belongs to.
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> usize {
        self.pages.lock().len()
    }

    /// Inserts a tuple version, returning its row id.
    pub fn insert(&self, version: &TupleVersion) -> StorageResult<RowId> {
        let bytes = version.encode();
        if bytes.len() > PAGE_SIZE / 2 {
            return Err(StorageError::TupleTooLarge { size: bytes.len() });
        }
        let mut pages = self.pages.lock();
        let mut hint = self.insert_hint.lock();

        // Try the hinted page, then the last page, then allocate.
        let candidates: Vec<usize> = {
            let mut c = Vec::new();
            if *hint < pages.len() {
                c.push(*hint);
            }
            if !pages.is_empty() {
                c.push(pages.len() - 1);
            }
            c
        };
        for idx in candidates {
            let pid = pages[idx];
            let inserted =
                self.buffer
                    .with_page_mut(self.table_id, pid, self.store.as_ref(), |p| {
                        if p.fits(bytes.len()) {
                            Some(p.insert(&bytes).expect("fits was checked"))
                        } else {
                            None
                        }
                    })?;
            if let Some(slot) = inserted {
                *hint = idx;
                return Ok(RowId { page: pid.0, slot });
            }
        }
        // Allocate a fresh page.
        let pid = self.store.allocate()?;
        pages.push(pid);
        *hint = pages.len() - 1;
        let slot = self
            .buffer
            .with_page_mut(self.table_id, pid, self.store.as_ref(), |p| {
                p.insert(&bytes)
            })??;
        Ok(RowId { page: pid.0, slot })
    }

    /// Fetches the tuple version at `row`.
    pub fn fetch(&self, row: RowId) -> StorageResult<TupleVersion> {
        let pid = PageId(row.page);
        self.buffer
            .with_page(self.table_id, pid, self.store.as_ref(), |p| {
                p.read(row.slot).and_then(TupleVersion::decode)
            })?
            .map_err(|e| match e {
                StorageError::UnknownRow { slot, .. } => StorageError::UnknownRow {
                    page: row.page,
                    slot,
                },
                other => other,
            })
    }

    /// Sets (or clears) the `xmax` of the version at `row` in place.
    pub fn set_xmax(&self, row: RowId, xmax: Option<TxnId>) -> StorageResult<()> {
        let pid = PageId(row.page);
        self.buffer
            .with_page_mut(self.table_id, pid, self.store.as_ref(), |p| {
                let slot = p.read_mut(row.slot)?;
                patch_xmax(slot, xmax)
            })?
    }

    /// Calls `f` for every live tuple version in the heap, in physical order.
    /// Returning `false` from `f` stops the scan early.
    pub fn scan(&self, mut f: impl FnMut(RowId, TupleVersion) -> bool) -> StorageResult<()> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        for pid in pages {
            let rows = self
                .buffer
                .with_page(self.table_id, pid, self.store.as_ref(), |p| {
                    let mut out = Vec::new();
                    for slot in p.live_slots() {
                        match p.read(slot).and_then(TupleVersion::decode) {
                            Ok(v) => out.push((slot, Ok(v))),
                            Err(e) => out.push((slot, Err(e))),
                        }
                    }
                    out
                })?;
            for (slot, v) in rows {
                let v = v?;
                if !f(RowId { page: pid.0, slot }, v) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Counts live (non-dead-slot) tuple versions.
    pub fn version_count(&self) -> StorageResult<usize> {
        let mut n = 0;
        self.scan(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Physically removes versions for which `should_remove` returns `true`
    /// (the garbage-collector task of Section 7.1, which is exempt from the
    /// information-flow rules). Returns the number of removed versions.
    pub fn vacuum(
        &self,
        mut should_remove: impl FnMut(&TupleVersion) -> bool,
    ) -> StorageResult<usize> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        let mut removed = 0;
        for pid in pages {
            removed += self
                .buffer
                .with_page_mut(self.table_id, pid, self.store.as_ref(), |p| {
                    let mut n = 0;
                    let slots: Vec<u16> = p.live_slots().collect();
                    for slot in slots {
                        if let Ok(v) = p.read(slot).and_then(TupleVersion::decode) {
                            if should_remove(&v) {
                                p.mark_dead(slot).expect("slot is live");
                                n += 1;
                            }
                        }
                    }
                    n
                })?;
        }
        Ok(removed)
    }

    /// Flushes every dirty page of this table to its store.
    pub fn flush(&self) -> StorageResult<()> {
        self.buffer.flush_table(self.table_id, self.store.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::TxnId;
    use crate::store::MemPageStore;
    use crate::tuple::TupleHeader;
    use crate::value::Datum;

    fn heap() -> TableHeap {
        TableHeap::new(1, Arc::new(MemPageStore::new()), BufferPool::new(64))
    }

    fn version(xmin: u64, text: &str, label: Vec<u64>) -> TupleVersion {
        TupleVersion::new(
            TupleHeader::new(TxnId(xmin), label),
            vec![Datum::Int(xmin as i64), Datum::Text(text.into())],
        )
    }

    #[test]
    fn insert_fetch_round_trip() {
        let h = heap();
        let v = version(1, "alice", vec![42]);
        let row = h.insert(&v).unwrap();
        assert_eq!(h.fetch(row).unwrap(), v);
    }

    #[test]
    fn spills_to_multiple_pages() {
        let h = heap();
        let big = "x".repeat(1000);
        for i in 0..50 {
            h.insert(&version(i, &big, vec![])).unwrap();
        }
        assert!(h.page_count() > 1, "50 KB of tuples needs several pages");
        assert_eq!(h.version_count().unwrap(), 50);
    }

    #[test]
    fn set_xmax_is_persistent() {
        let h = heap();
        let row = h.insert(&version(1, "victim", vec![])).unwrap();
        h.set_xmax(row, Some(TxnId(9))).unwrap();
        assert_eq!(h.fetch(row).unwrap().header.xmax, Some(TxnId(9)));
        h.set_xmax(row, None).unwrap();
        assert_eq!(h.fetch(row).unwrap().header.xmax, None);
    }

    #[test]
    fn scan_visits_all_and_stops_early() {
        let h = heap();
        for i in 0..10 {
            h.insert(&version(i, "row", vec![])).unwrap();
        }
        let mut seen = 0;
        h.scan(|_, _| {
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 10);

        let mut early = 0;
        h.scan(|_, _| {
            early += 1;
            early < 3
        })
        .unwrap();
        assert_eq!(early, 3);
    }

    #[test]
    fn vacuum_removes_matching_versions() {
        let h = heap();
        for i in 0..6 {
            h.insert(&version(i, "row", vec![])).unwrap();
        }
        let removed = h.vacuum(|v| v.header.xmin.0 % 2 == 0).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(h.version_count().unwrap(), 3);
    }

    #[test]
    fn fetch_of_unknown_row_errors() {
        let h = heap();
        let row = h.insert(&version(1, "only", vec![])).unwrap();
        assert!(h
            .fetch(RowId {
                page: row.page,
                slot: row.slot + 5
            })
            .is_err());
    }

    #[test]
    fn survives_buffer_pressure_with_file_store() {
        let dir = std::env::temp_dir().join(format!("ifdb-heap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(crate::store::FilePageStore::create(&dir.join("t.heap")).unwrap());
        // Tiny buffer pool: 2 pages, so scans must re-read from disk.
        let h = TableHeap::new(3, store, BufferPool::new(2));
        let big = "y".repeat(800);
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push(h.insert(&version(i, &big, vec![1, 2])).unwrap());
        }
        for (i, row) in rows.iter().enumerate() {
            let v = h.fetch(*row).unwrap();
            assert_eq!(v.header.xmin, TxnId(i as u64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
