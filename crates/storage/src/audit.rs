//! The tamper-evident audit chain.
//!
//! Security-relevant events (declassification, delegation, label raises,
//! commit-label refusals, budget kills — serialized by the layer above; the
//! payload is opaque here) are carried in the write-ahead log as
//! [`LogRecord::Audit`](crate::wal::LogRecord) links of a hash chain:
//! link `n` commits to link `n-1` through `hash = H(prev ‖ seq ‖ bytes)`.
//! Because the links ride the log they inherit its ordering, durability and
//! replication for free; because each link's hash covers its predecessor's,
//! a record dropped, reordered, altered or spliced after the fact breaks
//! [`AuditChain::verify`] — the property the paper's Section 6.4 methodology
//! asks of the code that runs with authority: its behaviour must be
//! *observable*, and here, unforgeably so.

use crate::wal::LogRecord;

/// One link of the chain, as recovered from (or destined for) the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditChainRecord {
    /// Position in the chain, starting at 1.
    pub seq: u64,
    /// The previous link's hash (0 for the first link).
    pub prev: u64,
    /// This link's hash: `chain_hash(prev, seq, &bytes)`.
    pub hash: u64,
    /// The serialized audit event.
    pub bytes: Vec<u8>,
}

impl AuditChainRecord {
    /// The equivalent log record.
    pub fn to_log_record(&self) -> LogRecord {
        LogRecord::Audit {
            seq: self.seq,
            prev: self.prev,
            hash: self.hash,
            bytes: self.bytes.clone(),
        }
    }
}

/// FNV-1a (64-bit) over `prev ‖ seq ‖ bytes` — the chain link function.
/// The same family as the log's frame checksum; tamper-*evident* against
/// accidental or casual modification, not a cryptographic MAC.
pub fn chain_hash(prev: u64, seq: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in prev.to_le_bytes() {
        step(b);
    }
    for b in seq.to_le_bytes() {
        step(b);
    }
    for &b in bytes {
        step(b);
    }
    h
}

/// The in-memory view of the chain: every link appended (or recovered /
/// replicated) so far, plus the head the next link must commit to.
#[derive(Debug, Default)]
pub struct AuditChain {
    records: Vec<AuditChainRecord>,
}

/// Where [`AuditChain::verify`] found the chain broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditChainBreak {
    /// Index into the record list of the offending link.
    pub index: usize,
    /// Human-readable description of the violated invariant.
    pub reason: String,
}

impl AuditChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequence number of the last link (0 when empty).
    pub fn head_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }

    /// Hash of the last link (0 when empty) — what the next link's `prev`
    /// must be.
    pub fn head_hash(&self) -> u64 {
        self.records.last().map(|r| r.hash).unwrap_or(0)
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no link has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Forges the next link over `bytes` and appends it, returning a copy
    /// for the caller to log.
    pub fn append(&mut self, bytes: Vec<u8>) -> AuditChainRecord {
        let seq = self.head_seq() + 1;
        let prev = self.head_hash();
        let record = AuditChainRecord {
            seq,
            prev,
            hash: chain_hash(prev, seq, &bytes),
            bytes,
        };
        self.records.push(record.clone());
        record
    }

    /// Accepts a link produced elsewhere (log replay, the replication
    /// stream, a checkpoint image). Idempotent against the re-delivery the
    /// replication stream can produce: a link at or below the current head
    /// is ignored when it matches what the chain already holds, and is an
    /// error when it does not.
    pub fn accept(&mut self, record: AuditChainRecord) -> Result<(), AuditChainBreak> {
        let head = self.head_seq();
        if record.seq <= head {
            let existing = &self.records[(record.seq - 1) as usize];
            if *existing == record {
                return Ok(());
            }
            return Err(AuditChainBreak {
                index: (record.seq - 1) as usize,
                reason: format!("conflicting re-delivery of audit link {}", record.seq),
            });
        }
        if record.seq != head + 1 {
            return Err(AuditChainBreak {
                index: self.records.len(),
                reason: format!("audit link {} arrived after head {head}", record.seq),
            });
        }
        self.records.push(record);
        Ok(())
    }

    /// Discards every link (replica stream reset: the primary's image will
    /// re-deliver the authoritative chain).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Snapshot of the chain.
    pub fn records(&self) -> Vec<AuditChainRecord> {
        self.records.clone()
    }

    /// Walks the whole chain checking every link: sequence numbers are
    /// 1..=n with no gaps, each link's `prev` is its predecessor's hash, and
    /// each link's `hash` recomputes from its own contents.
    pub fn verify(&self) -> Result<(), AuditChainBreak> {
        verify_chain(&self.records)
    }
}

/// Chain verification over any record slice — used both by the live chain
/// and by tests replaying a log read straight from disk.
pub fn verify_chain(records: &[AuditChainRecord]) -> Result<(), AuditChainBreak> {
    let mut prev_hash = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.seq != i as u64 + 1 {
            return Err(AuditChainBreak {
                index: i,
                reason: format!("expected seq {}, found {}", i + 1, r.seq),
            });
        }
        if r.prev != prev_hash {
            return Err(AuditChainBreak {
                index: i,
                reason: format!(
                    "link {} commits to prev hash {:#x}, predecessor hashes to {prev_hash:#x}",
                    r.seq, r.prev
                ),
            });
        }
        let expect = chain_hash(r.prev, r.seq, &r.bytes);
        if r.hash != expect {
            return Err(AuditChainBreak {
                index: i,
                reason: format!(
                    "link {} hash {:#x} != recomputed {expect:#x}",
                    r.seq, r.hash
                ),
            });
        }
        prev_hash = r.hash;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_builds_a_verifiable_chain() {
        let mut chain = AuditChain::new();
        assert!(chain.is_empty());
        for i in 0..10u8 {
            chain.append(vec![i; 3]);
        }
        assert_eq!(chain.len(), 10);
        assert_eq!(chain.head_seq(), 10);
        chain.verify().unwrap();
    }

    #[test]
    fn tampering_breaks_verification() {
        let mut chain = AuditChain::new();
        chain.append(b"declassify".to_vec());
        chain.append(b"delegate".to_vec());
        chain.append(b"budget kill".to_vec());
        let mut records = chain.records();

        // Alter a payload: its own hash no longer recomputes.
        records[1].bytes = b"delegatX".to_vec();
        let broken = verify_chain(&records).unwrap_err();
        assert_eq!(broken.index, 1);

        // Drop a middle link: the gap is detected.
        let mut dropped = chain.records();
        dropped.remove(1);
        assert!(verify_chain(&dropped).is_err());

        // Re-forge a payload *and* its hash: the successor's prev betrays it.
        let mut forged = chain.records();
        forged[1].bytes = b"delegatX".to_vec();
        forged[1].hash = chain_hash(forged[1].prev, forged[1].seq, &forged[1].bytes);
        let betrayed = verify_chain(&forged).unwrap_err();
        assert_eq!(betrayed.index, 2);
    }

    #[test]
    fn accept_is_idempotent_and_ordered() {
        let mut source = AuditChain::new();
        let a = source.append(vec![1]);
        let b = source.append(vec![2]);

        let mut sink = AuditChain::new();
        sink.accept(a.clone()).unwrap();
        // Re-delivery of the same link is fine; a conflicting one is not.
        sink.accept(a.clone()).unwrap();
        let mut conflict = a.clone();
        conflict.bytes = vec![9];
        assert!(sink.accept(conflict).is_err());
        sink.accept(b).unwrap();
        assert_eq!(sink.head_seq(), 2);
        sink.verify().unwrap();

        // A gap is refused.
        let mut gappy = AuditChain::new();
        assert!(gappy.accept(a.clone()).is_ok());
        let mut far = a;
        far.seq = 5;
        assert!(gappy.accept(far).is_err());
    }
}
