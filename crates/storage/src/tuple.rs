//! Tuple versions: header (MVCC fields + label) plus field data.
//!
//! As in PostgreSQL, every update creates a new *version* of a tuple. The
//! header of each version records the creating transaction (`xmin`), the
//! deleting/superseding transaction (`xmax`, if any), and — the IFDB addition
//! — the tuple's immutable label, stored as an array of 64-bit tag ids with a
//! one-byte length (the paper stores the label length "in a byte in the tuple
//! header, which was previously unused for alignment reasons", and each tag
//! adds to the tuple size with corresponding I/O implications; Section 8.3).

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::mvcc::TxnId;
use crate::value::Datum;

/// The field values of a tuple (no header).
pub type TupleData = Vec<Datum>;

/// MVCC + label header of a tuple version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleHeader {
    /// Transaction that created this version.
    pub xmin: TxnId,
    /// Transaction that deleted or superseded this version, if any.
    pub xmax: Option<TxnId>,
    /// The tuple's label as raw tag ids (sorted). Immutable once written.
    pub label: Vec<u64>,
}

impl TupleHeader {
    /// Creates a header for a freshly inserted tuple.
    pub fn new(xmin: TxnId, label: Vec<u64>) -> Self {
        TupleHeader {
            xmin,
            xmax: None,
            label,
        }
    }

    /// Size of the encoded header in bytes: xmin (8) + xmax (8) + label
    /// length byte + 8 bytes per tag.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + 1 + 8 * self.label.len()
    }
}

/// A complete tuple version: header plus data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleVersion {
    /// The MVCC/label header.
    pub header: TupleHeader,
    /// The field values.
    pub data: TupleData,
}

impl TupleVersion {
    /// Creates a new version.
    pub fn new(header: TupleHeader, data: TupleData) -> Self {
        TupleVersion { header, data }
    }

    /// Encodes the version into bytes for storage in a page slot.
    ///
    /// Layout: `xmin u64 | xmax u64 (0 = none) | label_len u8 | tags... |
    /// field_count u16 | encoded fields...`
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.header.xmin.0.to_le_bytes());
        out.extend_from_slice(&self.header.xmax.map(|x| x.0).unwrap_or(0).to_le_bytes());
        debug_assert!(self.header.label.len() <= u8::MAX as usize);
        out.push(self.header.label.len() as u8);
        for t in &self.header.label {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out.extend_from_slice(&(self.data.len() as u16).to_le_bytes());
        for d in &self.data {
            d.encode(&mut out);
        }
        out
    }

    /// Decodes a version previously produced by [`TupleVersion::encode`].
    pub fn decode(buf: &[u8]) -> StorageResult<TupleVersion> {
        let corrupt = |d: &str| StorageError::Corruption {
            detail: d.to_string(),
        };
        if buf.len() < 17 {
            return Err(corrupt("tuple shorter than header"));
        }
        let xmin = TxnId(u64::from_le_bytes(buf[0..8].try_into().unwrap()));
        let raw_xmax = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let xmax = if raw_xmax == 0 {
            None
        } else {
            Some(TxnId(raw_xmax))
        };
        let label_len = buf[16] as usize;
        let mut pos = 17;
        if pos + label_len * 8 + 2 > buf.len() {
            return Err(corrupt("truncated label"));
        }
        let mut label = Vec::with_capacity(label_len);
        for _ in 0..label_len {
            label.push(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
            pos += 8;
        }
        let field_count = u16::from_le_bytes(buf[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        let mut data = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let (d, next) = Datum::decode(buf, pos)?;
            data.push(d);
            pos = next;
        }
        Ok(TupleVersion {
            header: TupleHeader { xmin, xmax, label },
            data,
        })
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.header.encoded_len() + 2 + self.data.iter().map(|d| 5 + d.encoded_len()).sum::<usize>()
    }
}

/// Overwrites the `xmax` field of an encoded tuple in place. Used by the heap
/// to mark a version deleted/superseded without rewriting the whole slot.
pub fn patch_xmax(slot: &mut [u8], xmax: Option<TxnId>) -> StorageResult<()> {
    if slot.len() < 16 {
        return Err(StorageError::Corruption {
            detail: "slot too small to patch xmax".into(),
        });
    }
    let raw = xmax.map(|x| x.0).unwrap_or(0);
    slot[8..16].copy_from_slice(&raw.to_le_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: Vec<u64>) -> TupleVersion {
        TupleVersion::new(
            TupleHeader::new(TxnId(7), label),
            vec![
                Datum::Int(1),
                Datum::Text("Bob".into()),
                Datum::Null,
                Datum::Float(2.5),
            ],
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        for label in [vec![], vec![3], vec![1, 2, 3, 4, 5]] {
            let v = sample(label);
            let bytes = v.encode();
            assert_eq!(bytes.len(), v.encoded_len());
            let decoded = TupleVersion::decode(&bytes).unwrap();
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn xmax_round_trip() {
        let mut v = sample(vec![9]);
        v.header.xmax = Some(TxnId(11));
        let decoded = TupleVersion::decode(&v.encode()).unwrap();
        assert_eq!(decoded.header.xmax, Some(TxnId(11)));
    }

    #[test]
    fn label_increases_size_by_8_bytes_per_tag() {
        let base = sample(vec![]).encoded_len();
        let one = sample(vec![1]).encoded_len();
        let five = sample(vec![1, 2, 3, 4, 5]).encoded_len();
        assert_eq!(one - base, 8);
        assert_eq!(five - base, 40);
    }

    #[test]
    fn patch_xmax_in_place() {
        let v = sample(vec![1, 2]);
        let mut bytes = v.encode();
        patch_xmax(&mut bytes, Some(TxnId(99))).unwrap();
        let decoded = TupleVersion::decode(&bytes).unwrap();
        assert_eq!(decoded.header.xmax, Some(TxnId(99)));
        assert_eq!(decoded.data, v.data);
        patch_xmax(&mut bytes, None).unwrap();
        assert_eq!(TupleVersion::decode(&bytes).unwrap().header.xmax, None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TupleVersion::decode(&[1, 2, 3]).is_err());
        let v = sample(vec![1]);
        let bytes = v.encode();
        assert!(TupleVersion::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
