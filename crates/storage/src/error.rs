//! Error types for the storage engine.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The named table does not exist.
    UnknownTable(String),
    /// The table id does not exist.
    UnknownTableId(u32),
    /// The named column does not exist in the table.
    UnknownColumn(String),
    /// A tuple did not match the table schema (wrong arity or type).
    SchemaMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A tuple is too large to fit in a page.
    TupleTooLarge {
        /// Size of the offending tuple in bytes.
        size: usize,
    },
    /// The referenced row does not exist.
    UnknownRow {
        /// Page number of the missing row.
        page: u32,
        /// Slot number of the missing row.
        slot: u16,
    },
    /// Two concurrent transactions tried to modify the same tuple
    /// (first-updater-wins under snapshot isolation).
    WriteConflict {
        /// The transaction that lost the conflict.
        txn: u64,
        /// The transaction holding the tuple.
        holder: u64,
    },
    /// The transaction id is not active (already committed/aborted or never
    /// started).
    InvalidTransaction(u64),
    /// A corrupted page or tuple encoding was encountered.
    Corruption {
        /// Description of the corruption.
        detail: String,
    },
    /// An underlying I/O error (file-backed page store or WAL).
    Io {
        /// Stringified `std::io::Error`.
        detail: String,
    },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// The named index does not exist.
    UnknownIndex(String),
    /// An index with this name already exists on the table.
    DuplicateIndex(String),
    /// A checkpoint was requested while transactions were still active; the
    /// caller may retry at a quiescent point.
    CheckpointBusy {
        /// Number of in-progress transactions that blocked the checkpoint.
        active: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            StorageError::UnknownTableId(id) => write!(f, "unknown table id {id}"),
            StorageError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
            StorageError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            StorageError::TupleTooLarge { size } => {
                write!(f, "tuple of {size} bytes does not fit in a page")
            }
            StorageError::UnknownRow { page, slot } => {
                write!(f, "no such row (page {page}, slot {slot})")
            }
            StorageError::WriteConflict { txn, holder } => {
                write!(f, "write conflict: txn {txn} lost to txn {holder}")
            }
            StorageError::InvalidTransaction(id) => write!(f, "invalid transaction {id}"),
            StorageError::Corruption { detail } => write!(f, "corruption: {detail}"),
            StorageError::Io { detail } => write!(f, "i/o error: {detail}"),
            StorageError::DuplicateTable(n) => write!(f, "table {n:?} already exists"),
            StorageError::UnknownIndex(n) => write!(f, "unknown index {n:?}"),
            StorageError::DuplicateIndex(n) => write!(f, "index {n:?} already exists"),
            StorageError::CheckpointBusy { active } => {
                write!(f, "checkpoint blocked by {active} active transaction(s)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::UnknownTable("t".into())
            .to_string()
            .contains("unknown table"));
        assert!(StorageError::WriteConflict { txn: 1, holder: 2 }
            .to_string()
            .contains("write conflict"));
    }

    #[test]
    fn io_error_converts() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io { .. }));
    }
}
