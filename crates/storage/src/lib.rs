//! Storage engine substrate for the IFDB reproduction.
//!
//! The paper builds IFDB by modifying PostgreSQL 8.4.10; this crate is the
//! from-scratch Rust stand-in for the parts of PostgreSQL that IFDB relies
//! on, implemented at the same architectural layer so that the label
//! mechanisms in the `ifdb` crate sit where the paper's patches sat:
//!
//! * Multi-version concurrency control with snapshot isolation
//!   ([`mvcc`]) — every update creates a new tuple version, and the layer
//!   that decides version visibility is also where tuple labels are filtered
//!   (Section 7.1 of the paper).
//! * Slotted heap pages ([`page`]) with per-tuple headers that carry the
//!   transaction ids *and* the label array, so larger labels genuinely
//!   increase tuple size, I/O and cache pressure (Section 8.3).
//! * A buffer pool ([`buffer`]) over pluggable page stores ([`store`]) —
//!   in-memory or file-backed — used to reproduce both the in-memory and the
//!   disk-bound configurations of Figure 6.
//! * Ordered and hash indexes ([`index`]), a write-ahead log ([`wal`]) with
//!   crash recovery, checkpointing and group commit, and the [`engine`]
//!   facade that ties tables, transactions and recovery together.
//!
//! # Durability
//!
//! Every mutation (DDL included) is logged before it is acknowledged;
//! [`StorageEngine::open`] rebuilds a crashed engine by replaying the log,
//! [`StorageEngine::checkpoint`](engine::StorageEngine::checkpoint)
//! compacts the log into a snapshot image so replay stays O(live data), and
//! [`DurabilityConfig`] picks between no-sync, sync-per-commit and
//! group-commit (many committers sharing one fsync) behaviour. See the
//! [`wal`] module docs for the protocol details.
//!
//! The crate knows nothing about DIFC: labels are carried as opaque `u64`
//! arrays in tuple headers. All enforcement lives in the `ifdb` crate.

pub mod audit;
pub mod buffer;
pub mod engine;
pub mod error;
pub mod heap;
pub mod index;
pub mod mvcc;
pub mod page;
pub mod replica;
pub mod schema;
pub mod stats;
pub mod store;
pub mod tuple;
pub mod value;
pub mod wal;

pub use audit::{chain_hash, verify_chain, AuditChain, AuditChainBreak, AuditChainRecord};
pub use buffer::{BufferPool, BufferStats};
pub use engine::{StorageEngine, StorageKind, TableId};
pub use error::{StorageError, StorageResult};
pub use heap::{RowId, TableHeap};
pub use index::{HashIndex, IndexKey, OrderedIndex};
pub use mvcc::{Snapshot, TransactionManager, TxnId, TxnStatus, REPLICA_LOCAL_TXN_BASE};
pub use page::{Page, PageId, PAGE_SIZE};
pub use replica::{AppliedBatch, ReplicaApplier};
pub use schema::{ColumnDef, TableSchema};
pub use stats::EngineStats;
pub use tuple::{TupleData, TupleHeader, TupleVersion};
pub use value::{DataType, Datum};
pub use wal::{DurabilityConfig, LogRecord, ReplicationBatch, Wal, WalRecovery};
