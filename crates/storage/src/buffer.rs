//! Buffer pool: caches pages between the executor and the page store.
//!
//! The pool is shared by all tables in a [`crate::engine::StorageEngine`] and
//! has a fixed capacity in pages. When the working set exceeds the capacity,
//! least-recently-used pages are evicted (written back if dirty). Because
//! larger labels make tuples larger and therefore spread the same rows over
//! more pages, the buffer pool is what turns the per-tag byte overhead of
//! Section 8.3 into the throughput effect seen in Figure 6.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StorageResult;
use crate::page::{Page, PageId};
use crate::store::PageStore;

/// Key of a page in the shared pool: table id plus page number.
pub type FrameKey = (u32, PageId);

struct Frame {
    page: Page,
    dirty: bool,
    last_use: u64,
}

/// Counters exposed by the buffer pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups served from the pool.
    pub hits: u64,
    /// Lookups that had to read from the page store.
    pub misses: u64,
    /// Dirty pages written back on eviction or flush.
    pub writebacks: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// A fixed-capacity, LRU buffer pool.
pub struct BufferPool {
    capacity: usize,
    frames: Mutex<HashMap<FrameKey, Frame>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.lock().len())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool that holds at most `capacity` pages.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(BufferPool {
            capacity: capacity.max(1),
            frames: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.lock().len()
    }

    /// Runs `f` with read access to the page, fetching it from `store` if it
    /// is not resident.
    pub fn with_page<R>(
        &self,
        table: u32,
        id: PageId,
        store: &dyn PageStore,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        let mut frames = self.frames.lock();
        self.ensure_resident(&mut frames, table, id, store)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let frame = frames.get_mut(&(table, id)).expect("frame just ensured");
        frame.last_use = tick;
        Ok(f(&frame.page))
    }

    /// Runs `f` with mutable access to the page, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        table: u32,
        id: PageId,
        store: &dyn PageStore,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut frames = self.frames.lock();
        self.ensure_resident(&mut frames, table, id, store)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let frame = frames.get_mut(&(table, id)).expect("frame just ensured");
        frame.last_use = tick;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    fn ensure_resident(
        &self,
        frames: &mut HashMap<FrameKey, Frame>,
        table: u32,
        id: PageId,
        store: &dyn PageStore,
    ) -> StorageResult<()> {
        if frames.contains_key(&(table, id)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Evict until there is room. Dirty pages are written back through the
        // same store that owns them — but eviction candidates may belong to a
        // different table/store, so writeback happens lazily at flush time
        // for foreign frames. To keep the model simple and correct, we only
        // evict clean frames here and fall back to evicting the LRU dirty
        // frame of the *same* store; dirty frames of other stores are flushed
        // by their owner via `flush_table`.
        while frames.len() >= self.capacity {
            // Pick the least recently used evictable frame. Dirty frames of
            // *other* tables are skipped, because their store is not
            // reachable from here; they are flushed by their owner via
            // `flush_table`. If only such frames remain, grow past capacity
            // temporarily.
            let victim = frames
                .iter()
                .filter(|(k, f)| !f.dirty || k.0 == table)
                .min_by_key(|(_, f)| f.last_use)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            let frame = frames.remove(&key).expect("victim exists");
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if frame.dirty {
                store.write_page(key.1, &frame.page)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        let page = store.read_page(id)?;
        frames.insert(
            (table, id),
            Frame {
                page,
                dirty: false,
                last_use: self.clock.fetch_add(1, Ordering::Relaxed),
            },
        );
        Ok(())
    }

    /// Writes back every dirty page belonging to `table`.
    pub fn flush_table(&self, table: u32, store: &dyn PageStore) -> StorageResult<()> {
        let mut frames = self.frames.lock();
        for (key, frame) in frames.iter_mut() {
            if key.0 == table && frame.dirty {
                store.write_page(key.1, &frame.page)?;
                frame.dirty = false;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Drops every frame belonging to `table` without writing it back (used
    /// when a table is destroyed).
    pub fn discard_table(&self, table: u32) {
        self.frames.lock().retain(|key, _| key.0 != table);
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemPageStore, PageStore};

    #[test]
    fn caches_pages_and_counts_hits() {
        let store = MemPageStore::new();
        let id = store.allocate().unwrap();
        let pool = BufferPool::new(4);
        pool.with_page(1, id, &store, |p| assert_eq!(p.slot_count(), 0))
            .unwrap();
        pool.with_page(1, id, &store, |_| ()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(store.reads(), 1, "second access must not touch the store");
    }

    #[test]
    fn evicts_lru_when_full() {
        let store = MemPageStore::new();
        let ids: Vec<_> = (0..6).map(|_| store.allocate().unwrap()).collect();
        let pool = BufferPool::new(3);
        for id in &ids {
            pool.with_page(1, *id, &store, |_| ()).unwrap();
        }
        assert!(pool.resident() <= 3);
        assert!(pool.stats().evictions >= 3);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let store = MemPageStore::new();
        let ids: Vec<_> = (0..4).map(|_| store.allocate().unwrap()).collect();
        let pool = BufferPool::new(2);
        pool.with_page_mut(1, ids[0], &store, |p| {
            p.insert(b"dirty").unwrap();
        })
        .unwrap();
        // Touch enough other pages to evict page 0.
        for id in &ids[1..] {
            pool.with_page(1, *id, &store, |_| ()).unwrap();
        }
        // Read page 0 again; the insert must have survived the eviction.
        pool.with_page(1, ids[0], &store, |p| {
            assert_eq!(p.read(0).unwrap(), b"dirty");
        })
        .unwrap();
        assert!(pool.stats().writebacks >= 1);
    }

    #[test]
    fn flush_table_persists_dirty_frames() {
        let store = MemPageStore::new();
        let id = store.allocate().unwrap();
        let pool = BufferPool::new(4);
        pool.with_page_mut(7, id, &store, |p| {
            p.insert(b"flushed").unwrap();
        })
        .unwrap();
        pool.flush_table(7, &store).unwrap();
        // Bypass the pool and read from the store directly.
        assert_eq!(store.read_page(id).unwrap().read(0).unwrap(), b"flushed");
    }

    #[test]
    fn discard_table_drops_frames() {
        let store = MemPageStore::new();
        let id = store.allocate().unwrap();
        let pool = BufferPool::new(4);
        pool.with_page(9, id, &store, |_| ()).unwrap();
        assert_eq!(pool.resident(), 1);
        pool.discard_table(9);
        assert_eq!(pool.resident(), 0);
    }
}
