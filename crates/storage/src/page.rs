//! Slotted heap pages.
//!
//! Tuples are stored in fixed-size pages with a slot directory at the front
//! and tuple data growing from the back, the classic heap-file layout. Page
//! size matches PostgreSQL's 8 KiB so that the label-size/IO trade-off of
//! Section 8.3 (each tag shrinks the number of tuples per page) carries over.

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Bytes of fixed page header: slot count (2) + free-space end pointer (2).
const HEADER_SIZE: usize = 4;
/// Bytes per slot directory entry: offset (2) + length (2).
const SLOT_ENTRY_SIZE: usize = 4;

/// Identifier of a page within a table's page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u32);

/// An 8 KiB slotted page.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        let mut bytes = vec![0u8; PAGE_SIZE].into_boxed_slice();
        // slot_count = 0, free_end = PAGE_SIZE
        bytes[0..2].copy_from_slice(&0u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { bytes }
    }

    /// Reconstructs a page from raw bytes (must be exactly [`PAGE_SIZE`]).
    pub fn from_bytes(bytes: Vec<u8>) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corruption {
                detail: format!("page must be {PAGE_SIZE} bytes, got {}", bytes.len()),
            });
        }
        Ok(Page {
            bytes: bytes.into_boxed_slice(),
        })
    }

    /// The raw bytes of the page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn slot_count_raw(&self) -> u16 {
        u16::from_le_bytes(self.bytes[0..2].try_into().unwrap())
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.bytes[2..4].try_into().unwrap())
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn set_free_end(&mut self, n: u16) {
        self.bytes[2..4].copy_from_slice(&n.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_ENTRY_SIZE;
        let off = u16::from_le_bytes(self.bytes[base..base + 2].try_into().unwrap());
        let len = u16::from_le_bytes(self.bytes[base + 2..base + 4].try_into().unwrap());
        (off, len)
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_ENTRY_SIZE;
        self.bytes[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.bytes[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of slots in use (including dead slots).
    pub fn slot_count(&self) -> u16 {
        self.slot_count_raw()
    }

    /// Free space remaining for one more tuple (accounting for its slot
    /// directory entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count_raw() as usize * SLOT_ENTRY_SIZE;
        let free_end = self.free_end() as usize;
        free_end
            .saturating_sub(dir_end)
            .saturating_sub(SLOT_ENTRY_SIZE)
    }

    /// Returns `true` if a tuple of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len
    }

    /// Appends a tuple, returning its slot number.
    pub fn insert(&mut self, tuple: &[u8]) -> StorageResult<u16> {
        if tuple.len() > PAGE_SIZE - HEADER_SIZE - SLOT_ENTRY_SIZE {
            return Err(StorageError::TupleTooLarge { size: tuple.len() });
        }
        if !self.fits(tuple.len()) {
            return Err(StorageError::TupleTooLarge { size: tuple.len() });
        }
        let slot = self.slot_count_raw();
        let new_end = self.free_end() as usize - tuple.len();
        self.bytes[new_end..new_end + tuple.len()].copy_from_slice(tuple);
        self.set_free_end(new_end as u16);
        self.set_slot_count(slot + 1);
        self.set_slot_entry(slot, new_end as u16, tuple.len() as u16);
        Ok(slot)
    }

    /// Reads the tuple stored in `slot`.
    pub fn read(&self, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.slot_count_raw() {
            return Err(StorageError::UnknownRow { page: 0, slot });
        }
        let (off, len) = self.slot_entry(slot);
        if len == 0 {
            return Err(StorageError::UnknownRow { page: 0, slot });
        }
        Ok(&self.bytes[off as usize..off as usize + len as usize])
    }

    /// Returns a mutable view of the tuple stored in `slot`, used to patch
    /// header fields (e.g. `xmax`) in place.
    pub fn read_mut(&mut self, slot: u16) -> StorageResult<&mut [u8]> {
        if slot >= self.slot_count_raw() {
            return Err(StorageError::UnknownRow { page: 0, slot });
        }
        let (off, len) = self.slot_entry(slot);
        if len == 0 {
            return Err(StorageError::UnknownRow { page: 0, slot });
        }
        Ok(&mut self.bytes[off as usize..off as usize + len as usize])
    }

    /// Marks a slot dead (its bytes remain until vacuum rewrites the page).
    pub fn mark_dead(&mut self, slot: u16) -> StorageResult<()> {
        if slot >= self.slot_count_raw() {
            return Err(StorageError::UnknownRow { page: 0, slot });
        }
        let (off, _) = self.slot_entry(slot);
        self.set_slot_entry(slot, off, 0);
        Ok(())
    }

    /// Returns `true` if the slot is dead (marked removed by vacuum).
    pub fn is_dead(&self, slot: u16) -> bool {
        if slot >= self.slot_count_raw() {
            return true;
        }
        self.slot_entry(slot).1 == 0
    }

    /// Iterates over live slot numbers.
    pub fn live_slots(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.slot_count_raw()).filter(|s| !self.is_dead(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.read(a).unwrap(), b"hello");
        assert_eq!(p.read(b).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let tuple = vec![7u8; 1000];
        let mut inserted = 0;
        while p.fits(tuple.len()) {
            p.insert(&tuple).unwrap();
            inserted += 1;
        }
        assert!(inserted >= 7, "should fit several 1000-byte tuples");
        assert!(p.insert(&tuple).is_err());
        // A smaller tuple may still fit.
        let leftover = p.free_space();
        if leftover > 0 {
            assert!(p.insert(&vec![1u8; leftover]).is_ok());
        }
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        assert!(matches!(
            p.insert(&vec![0u8; PAGE_SIZE]).unwrap_err(),
            StorageError::TupleTooLarge { .. }
        ));
    }

    #[test]
    fn mark_dead_hides_slot() {
        let mut p = Page::new();
        let a = p.insert(b"abc").unwrap();
        let b = p.insert(b"def").unwrap();
        p.mark_dead(a).unwrap();
        assert!(p.is_dead(a));
        assert!(p.read(a).is_err());
        assert_eq!(p.read(b).unwrap(), b"def");
        assert_eq!(p.live_slots().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn in_place_patching_persists() {
        let mut p = Page::new();
        let s = p.insert(&[1, 2, 3, 4]).unwrap();
        p.read_mut(s).unwrap()[0] = 9;
        assert_eq!(p.read(s).unwrap(), &[9, 2, 3, 4]);
    }

    #[test]
    fn byte_round_trip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let bytes = p.as_bytes().to_vec();
        let q = Page::from_bytes(bytes).unwrap();
        assert_eq!(q.read(0).unwrap(), b"persist me");
        assert!(Page::from_bytes(vec![0u8; 17]).is_err());
    }

    #[test]
    fn reads_of_missing_slots_fail() {
        let p = Page::new();
        assert!(p.read(0).is_err());
    }
}
